"""Ablation — attributing each request-size class to its mechanism.

DESIGN.md E10: the paper *infers* that 1 KB requests come from block I/O,
4 KB from paging, and ~16 KB from cache-bounded read-ahead.  Because our
substrate implements those mechanisms, we can switch each one off — a
one-line scenario override — and watch its class disappear: a causal
confirmation of the paper's attribution.
"""


from repro.core.sizes import size_histogram

from conftest import bench_scenario, run_experiment, run_scenario


def test_readahead_off_removes_cache_class(benchmark):
    """Without read-ahead, the >= 8 KB class disappears from wavelet."""
    scenario = bench_scenario(node__max_readahead_kb=1)
    result = benchmark.pedantic(run_scenario, args=(scenario, "wavelet"),
                                rounds=1, iterations=1)
    hist = size_histogram(result.trace)
    print()
    print("sizes without read-ahead:", hist)
    # Requests no longer grow past the application's own 8 KB syscall
    # chunks: the 16 KB cache-bounded class is gone.
    assert max(hist) <= 8.0
    # while the default configuration reaches the 16 KB bound
    default_hist = size_histogram(run_experiment("wavelet").trace)
    assert max(default_hist) == 16.0


def test_ample_memory_removes_page_class(benchmark):
    """With 64 MB nodes nothing swaps: 4 KB shrinks to demand-loads only."""
    scenario = bench_scenario(node__vm__ram_mb=64)
    result = benchmark.pedantic(run_scenario, args=(scenario, "wavelet"),
                                rounds=1, iterations=1)
    hist = size_histogram(result.trace)
    print()
    print("sizes with 64 MB RAM:", hist)
    default_hist = size_histogram(run_experiment("wavelet").trace)
    # paging requests collapse by an order of magnitude
    assert hist.get(4.0, 0) < 0.2 * default_hist.get(4.0, 0)
    # and the swap region sees no traffic at all
    layout = scenario.node_params().disk_layout
    swap = result.trace.sector_range(layout.swap_start,
                                     layout.swap_start + layout.swap_sectors)
    assert len(swap) == 0


def test_drive_cache_accelerates_replay(benchmark):
    """On-drive segment cache ablation by trace replay.

    Not a paper figure — a design-tuning extension: replaying the
    combined workload with and without the drive's look-ahead buffer
    quantifies what the era's on-disk caches bought.
    """
    from repro.disk import DriveCache
    from repro.synth.replay import replay_trace

    combined = run_experiment("combined")
    trace = combined.trace.node(0)

    def both():
        without = replay_trace(trace, scheduler="clook")
        with_cache = replay_trace(trace, scheduler="clook",
                                  drive_cache=DriveCache())
        return without, with_cache

    without, with_cache = benchmark.pedantic(both, rounds=1, iterations=1)
    print()
    print(f"  no cache : mean {without.mean_latency * 1e3:.2f} ms")
    print(f"  128KB cache: mean {with_cache.mean_latency * 1e3:.2f} ms")
    assert with_cache.mean_latency < without.mean_latency


def test_writeback_clustering_creates_small_multiples(benchmark):
    """Cluster limit 1 removes the 2 KB 'small multiples of 1 KB'."""
    scenario = bench_scenario(nnodes=1, node__writeback_cluster_blocks=1)

    def run_baseline(scenario):
        return run_scenario(scenario, "baseline", duration=600.0)

    result = benchmark.pedantic(run_baseline, args=(scenario,),
                                rounds=1, iterations=1)
    hist = size_histogram(result.trace)
    print()
    print("baseline sizes without clustering:", hist)
    assert hist.get(2.0, 0) == 0
    assert hist.get(1.0, 0) > 0
