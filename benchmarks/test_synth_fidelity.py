"""Extension — the paper's "next step": a fitted workload parameter set.

Fits the synthesis model on the combined trace, regenerates a trace of
the same duration, and verifies the regenerated workload preserves the
characterization results (rate, mix, size classes, spatial profile, hot
spots).  Then uses the parameter set for the design-tuning purpose the
paper names: a scheduler comparison by trace replay.
"""

import numpy as np

from repro.core import compute_metrics
from repro.core.locality import spatial_locality, temporal_locality
from repro.core.sizes import size_histogram
from repro.synth import fit_workload_model
from repro.synth.replay import compare_schedulers


def fit_and_generate(trace, duration):
    model = fit_workload_model(trace)
    synth = model.generate(duration, rng=np.random.default_rng(11))
    return model, synth


def test_synthetic_workload_fidelity(benchmark, combined_result):
    trace = combined_result.trace
    duration = combined_result.duration
    model, synth = benchmark.pedantic(fit_and_generate,
                                      args=(trace, duration),
                                      rounds=1, iterations=1)
    print()
    print("fitted parameter set:", model.summary())

    real = compute_metrics(trace, duration=duration)
    fake = compute_metrics(synth, duration=duration)
    print(f"rate: real {real.requests_per_second:.2f} vs "
          f"synthetic {fake.requests_per_second:.2f} req/s")

    # Rate, mix and size structure carry over.
    assert fake.requests_per_second == \
        __import__("pytest").approx(real.requests_per_second *
                                    len(trace.nodes()), rel=0.15)
    assert abs(fake.read_fraction - real.read_fraction) < 0.05
    real_hist = size_histogram(trace)
    fake_hist = size_histogram(synth)
    assert max(fake_hist, key=fake_hist.get) == \
        max(real_hist, key=real_hist.get)

    # Spatial profile: busiest band identical, concentration preserved.
    real_sp = spatial_locality(trace)
    fake_sp = spatial_locality(synth)
    assert real_sp.busiest_band()[0] == fake_sp.busiest_band()[0]
    assert abs(real_sp.top_20pct_share - fake_sp.top_20pct_share) < 0.1

    # Hot spots: the synthetic top-5 is a subset of the real top-20.
    real_hot = {s for s, _ in temporal_locality(trace).hot_spots(20)}
    fake_hot = [s for s, _ in temporal_locality(synth).hot_spots(5)]
    assert sum(s in real_hot for s in fake_hot) >= 4


def test_parameter_set_drives_design_tuning(benchmark, combined_result):
    """Replay the synthetic workload to rank queue disciplines."""
    model = fit_workload_model(combined_result.trace)
    synth = model.generate(100.0, rng=np.random.default_rng(5))
    reports = benchmark.pedantic(compare_schedulers, args=(synth,),
                                 kwargs={"time_scale": 0.1},
                                 rounds=1, iterations=1)
    print()
    for name, report in sorted(reports.items()):
        print(" ", report)
    # the elevator should never lose badly to FIFO on this workload
    assert reports["clook"].mean_latency < 1.5 * reports["fifo"].mean_latency
