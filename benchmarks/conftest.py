"""Shared experiment cache for the benchmark harness.

Experiments are memoized per session so the per-figure benchmarks of the
combined run measure the *analysis* cost, while fig 1-4 benchmarks time
the full simulation.  The cluster is scaled to BENCH_NODES nodes (the
paper used 16; the per-node behaviour the figures show is node-count
independent, and 2 nodes keeps the harness fast).  Set REPRO_BENCH_NODES
to run at full scale.

Parameter-varying benchmarks build their configurations through the
scenario layer: ``bench_scenario(**overrides)`` starts from the
benchmark base and applies dotted-path overrides, and
``run_scenario(scenario, name)`` executes one experiment on it.
"""

import os

import pytest

from repro.config import Scenario
from repro.core import ExperimentRunner

BENCH_NODES = int(os.environ.get("REPRO_BENCH_NODES", "2"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "1"))

_cache = {}


def bench_scenario(nnodes=BENCH_NODES, **overrides):
    """The benchmark-harness scenario, with dotted-path overrides.

    Underscores double as dots so overrides can be passed as keywords:
    ``bench_scenario(node__max_readahead_kb=4)``.
    """
    base = Scenario().with_overrides({"cluster.nnodes": nnodes,
                                      "seed": BENCH_SEED})
    if overrides:
        base = base.with_overrides(
            {key.replace("__", "."): value
             for key, value in overrides.items()})
    return base


def run_scenario(scenario, name, duration=None):
    """Run one experiment on an explicit scenario (no memoization)."""
    return ExperimentRunner(scenario=scenario).run(name, duration=duration)


def run_experiment(name):
    """Memoized experiment execution at the benchmark configuration."""
    if name not in _cache:
        _cache[name] = run_scenario(bench_scenario(), name)
    return _cache[name]


@pytest.fixture(scope="session")
def combined_result():
    return run_experiment("combined")


@pytest.fixture(scope="session")
def baseline_result():
    return run_experiment("baseline")
