"""Shared experiment cache for the benchmark harness.

Experiments are memoized per session so the per-figure benchmarks of the
combined run measure the *analysis* cost, while fig 1-4 benchmarks time
the full simulation.  The cluster is scaled to BENCH_NODES nodes (the
paper used 16; the per-node behaviour the figures show is node-count
independent, and 2 nodes keeps the harness fast).  Set REPRO_BENCH_NODES
to run at full scale.
"""

import os

import pytest

from repro.core import ExperimentRunner

BENCH_NODES = int(os.environ.get("REPRO_BENCH_NODES", "2"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "1"))

_cache = {}


def run_experiment(name):
    """Memoized experiment execution at the benchmark configuration."""
    if name not in _cache:
        runner = ExperimentRunner(nnodes=BENCH_NODES, seed=BENCH_SEED)
        _cache[name] = runner.run(name)
    return _cache[name]


@pytest.fixture(scope="session")
def combined_result():
    return run_experiment("combined")


@pytest.fixture(scope="session")
def baseline_result():
    return run_experiment("baseline")
