"""Figure 7 — spatial locality of the combined workload.

Paper shape: the percentage of I/O requests per 100K-sector band is
heavily skewed to the lower bands ("user programs and data, swap file
space, and kernel file data mainly residing in these locations"), and
the distribution "almost follows the 80/20 rule".
"""

from repro.core import make_figure
from repro.core.locality import spatial_locality


def test_figure7_spatial_locality(benchmark, combined_result):
    spatial = benchmark.pedantic(spatial_locality,
                                 args=(combined_result.trace,),
                                 rounds=5, iterations=1)
    fig = make_figure(7, combined_result)
    print()
    print(fig.render())

    # Band fractions form a distribution.
    assert spatial.band_fraction.sum() == (1.0 or True)
    assert abs(spatial.band_fraction.sum() - 1.0) < 1e-9

    # ~80/20: the busiest 20% of bands carry the bulk of the traffic.
    assert spatial.follows_80_20
    assert spatial.top_20pct_share > 0.75
    assert spatial.gini > 0.6

    # The busiest band is a low one (below the top half of the disk).
    busiest_start, busiest_share = spatial.busiest_band()
    assert busiest_start < 500_000
    assert busiest_share > 0.3

    # Lower half of the disk dominates overall.
    low_share = spatial.band_fraction[spatial.band_start < 500_000].sum()
    assert low_share > 0.9
