"""Extension — serial batch vs. combined multiprogramming.

Same three applications, same nodes; the only variable is concurrency.
The comparison isolates what multiprogramming itself does to the I/O
workload:

* the 32 KB request class exists only under concurrency (the scaled I/O
  buffering needs more than one resident application);
* cross-application memory pressure amplifies paging;
* wall time: the serial batch trades longer total runtime for a calmer
  I/O profile.
"""

from repro.core import ExperimentRunner
from repro.core.sizes import size_histogram

from conftest import BENCH_NODES, BENCH_SEED, run_experiment


def run_serial():
    runner = ExperimentRunner(nnodes=BENCH_NODES, seed=BENCH_SEED,
                              hard_limit=8000.0)
    return runner.run("serial")


def test_serial_vs_combined(benchmark):
    serial = benchmark.pedantic(run_serial, rounds=1, iterations=1)
    combined = run_experiment("combined")

    serial_hist = size_histogram(serial.trace)
    combined_hist = size_histogram(combined.trace)
    print()
    print(f"  serial  : {serial.metrics.duration:.0f} s, "
          f"max size {max(serial_hist):g} KB, "
          f"{serial.metrics.requests_per_node:.0f} req/disk")
    print(f"  combined: {combined.metrics.duration:.0f} s, "
          f"max size {max(combined_hist):g} KB, "
          f"{combined.metrics.requests_per_node:.0f} req/disk")

    # 32 KB requests need multiprogramming.
    assert max(serial_hist) <= 16.0
    assert max(combined_hist) == 32.0

    # Concurrency amplifies paging: more 4 KB traffic when sharing memory.
    assert combined_hist.get(4.0, 0) > serial_hist.get(4.0, 0)

    # The serial batch takes longer wall-clock (no overlap of compute
    # with other apps' I/O), within the same order of magnitude.
    assert serial.metrics.duration > combined.metrics.duration * 0.8
