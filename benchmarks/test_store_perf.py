"""Trace store performance: writer throughput, pushdown speedup, size.

Run with ``PYTHONPATH=src python -m pytest benchmarks/test_store_perf.py``.
The size comparison prints the bytes-per-record of every persistence
format the repo supports; the pushdown benchmark verifies the chunk
index actually pays for itself on narrow queries.
"""

import numpy as np
import pytest

from repro.core.trace import TraceDataset
from repro.driver import TRACE_DTYPE
from repro.store import TraceReader, TraceWriter, write_trace

N = 400_000
CHUNK = 16_384


@pytest.fixture(scope="module")
def records():
    rng = np.random.default_rng(7)
    arr = np.empty(N, dtype=TRACE_DTYPE)
    arr["time"] = np.sort(rng.exponential(1e-3, N).cumsum())
    base = rng.integers(0, 900_000, N // 50)
    arr["sector"] = np.repeat(base, 50) + np.tile(np.arange(50) * 8, N // 50)
    arr["write"] = rng.random(N) < 0.8
    arr["pending"] = rng.integers(0, 12, N)
    arr["size_kb"] = rng.choice([0.5, 1.0, 4.0, 32.0], N)
    arr["node"] = rng.integers(0, 16, N)
    return arr


@pytest.fixture(scope="module")
def store_file(records, tmp_path_factory):
    path = tmp_path_factory.mktemp("perf") / "trace.rpt"
    write_trace(path, records, chunk_records=CHUNK)
    return path


def test_writer_throughput(benchmark, records, tmp_path):
    """Streaming write rate in records/s (reported as rounds/sec * N)."""
    counter = iter(range(10_000))

    def write_once():
        path = tmp_path / f"w{next(counter)}.rpt"
        with TraceWriter(path, chunk_records=CHUNK) as writer:
            writer.append_array(records)
        return writer.records_written

    written = benchmark(write_once)
    assert written == N
    rate = N / benchmark.stats.stats.mean
    print(f"\nwriter throughput: {rate:,.0f} records/s")


def test_full_scan_read(benchmark, store_file, records):
    def scan():
        with TraceReader(store_file) as reader:
            return reader.read()

    out = benchmark(scan)
    assert np.array_equal(out, records)


def test_pushdown_speedup_vs_full_scan(benchmark, store_file, records):
    """A 10% time window must beat the full scan by skipping chunks."""
    t = records["time"]
    t0, t1 = float(t[int(N * 0.45)]), float(t[int(N * 0.55)])

    def windowed():
        with TraceReader(store_file) as reader:
            out = reader.read(t0=t0, t1=t1)
            return out, reader.chunks_read, reader.chunk_count

    out, touched, total = benchmark(windowed)
    assert np.array_equal(out, records[(t >= t0) & (t < t1)])
    # the index must have skipped the overwhelming majority of chunks
    assert touched <= total // 5
    print(f"\npushdown: {touched}/{total} chunks decompressed")


def test_file_size_vs_csv_and_npy(store_file, records, tmp_path):
    csv_path = tmp_path / "trace.csv"
    npy_path = tmp_path / "trace.npy"
    dataset = TraceDataset(records[:50_000])
    dataset.save(csv_path)
    TraceDataset(records).save(npy_path)
    store = store_file.stat().st_size
    csv_size = csv_path.stat().st_size * (N / 50_000)
    npy = npy_path.stat().st_size
    print(f"\nbytes/record  rpt: {store / N:5.2f}   "
          f"npy: {npy / N:5.2f}   csv: {csv_size / N:5.2f}")
    assert store * 5 <= csv_size
    assert store < npy