"""Throughput benchmarks of the real compute kernels.

Multi-round pytest-benchmark measurements of the three numerical codes
the workload models are derived from; useful for tracking regressions in
the kernels themselves.
"""

import numpy as np

from repro.apps.kernels import haar2d, tree_forces
from repro.apps.kernels.ppm_hydro import run_advection


def test_ppm_advection_throughput(benchmark):
    rng = np.random.default_rng(0)
    u0 = rng.random(2048)
    result = benchmark(run_advection, u0, 1.0, 1.0 / 2048, 0.8, 10)
    assert np.isfinite(result).all()
    assert result.sum() == __import__("pytest").approx(u0.sum(), rel=1e-10)


def test_haar_decomposition_throughput(benchmark):
    rng = np.random.default_rng(1)
    image = rng.integers(0, 256, size=(512, 512)).astype(float)
    coeffs = benchmark(haar2d, image, 5)
    assert coeffs.shape == (512, 512)
    assert np.sum(coeffs ** 2) == __import__("pytest").approx(
        np.sum(image ** 2))


def test_barnes_hut_forces_throughput(benchmark):
    rng = np.random.default_rng(2)
    pos = rng.normal(size=(512, 3))
    mass = np.full(512, 1.0 / 512)
    acc = benchmark(tree_forces, pos, mass, 0.7)
    assert acc.shape == (512, 3)
    assert np.isfinite(acc).all()
