"""Observability-layer overhead: instrumented vs plain wavelet runs.

Mirrors the CI smoke step (``tools/obs_overhead.py``): the obs layer
must be close to free.  The assertion bound here is looser than the CI
threshold because pytest-run machines are noisier than a dedicated
best-of-N comparison; the tool remains the authoritative gate.
"""

import sys
from pathlib import Path

from repro.core import ExperimentRunner
from repro.obs import flatten_snapshot

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))
from obs_overhead import measure  # noqa: E402

from conftest import BENCH_NODES, BENCH_SEED  # noqa: E402


def test_obs_overhead_within_bound():
    result = measure(nnodes=BENCH_NODES, seed=BENCH_SEED, repeats=3)
    print(f"\nplain {result['plain_s'] * 1000:.1f} ms, "
          f"instrumented {result['instrumented_s'] * 1000:.1f} ms, "
          f"ratio {result['ratio']:.3f}")
    # generous noise margin; tools/obs_overhead.py enforces 1.10 in CI
    assert result["ratio"] < 1.25


def test_instrumented_run_records_all_layers():
    """The snapshot covers simulator, disk, cache, and trace path."""
    runner = ExperimentRunner(nnodes=BENCH_NODES, seed=BENCH_SEED, obs=True)
    result = runner.run("wavelet")
    flat = flatten_snapshot(result.obs)
    prefixes = {name.split(".", 1)[0] for name in flat}
    assert {"sim", "disk", "cache", "driver", "trace", "run"} <= prefixes
    assert flat["sim.events_processed"] > 0
    assert flat["disk.service_seconds{hda0}.count"] > 0
    assert sum(v for k, v in flat.items()
               if k.startswith("cache.hits{")) > 0


def test_wall_time_per_sim_second_is_reported():
    runner = ExperimentRunner(nnodes=BENCH_NODES, seed=BENCH_SEED, obs=True)
    result = runner.run("nbody")
    flat = flatten_snapshot(result.obs)
    assert flat["run.wall_seconds"] > 0
    assert flat["run.sim_seconds"] > 0
    assert flat["run.sim_seconds_per_wall_second"] > 0
