"""Figure 3 — request size vs. time for the wavelet run.

Paper shape: frequent 4 KB requests (heavy paging) especially early
("build the working set"), a burst of sizes approaching 16 KB at ~50 s as
the image streams in, a compute lull with few page requests, heavier
activity again toward the end; 49% / 51% read/write mix.
"""


from repro.core import ExperimentRunner, make_figure
from repro.core.sizes import class_fractions, RequestClass

from conftest import BENCH_NODES, BENCH_SEED


def run_wavelet():
    runner = ExperimentRunner(nnodes=BENCH_NODES, seed=BENCH_SEED)
    return runner.run("wavelet")


def test_figure3_wavelet(benchmark):
    result = benchmark.pedantic(run_wavelet, rounds=1, iterations=1)
    fig = make_figure(3, result)
    print()
    print(fig.render())
    m = result.metrics
    trace = result.trace

    # Table-1 row: 49% reads / 51% writes.
    assert 40 <= m.read_pct <= 60

    # Heavy 4 KB paging dominates the picture.
    fractions = class_fractions(trace)
    assert fractions[RequestClass.PAGE] > 0.5

    # Large reads approach (and reach) the 16 KB cache bound, early in
    # the run (paper: ~50 s into ~300 s).
    big_reads = trace.reads()
    big = big_reads.records[big_reads.size_kb >= 8.0]
    assert len(big) > 0
    assert float(big_reads.size_kb.max()) == 16.0
    assert big["time"].min() < 0.4 * m.duration

    # Lull in the middle: the middle third is quieter than either end.
    third = m.duration / 3
    first = len(trace.between(0, third))
    middle = len(trace.between(third, 2 * third))
    last = len(trace.between(2 * third, m.duration))
    assert middle < first
    assert middle < last
