"""Figure 4 — request size vs. time for the N-body run.

Paper shape: consistent 1 KB block I/O, more 2 KB requests and a few more
4 KB page swaps than PPM, but far less total activity than wavelet;
13% reads / 87% writes.
"""

from repro.core import ExperimentRunner, make_figure
from repro.core.sizes import dominant_size, size_histogram

from conftest import BENCH_NODES, BENCH_SEED, run_experiment


def run_nbody():
    runner = ExperimentRunner(nnodes=BENCH_NODES, seed=BENCH_SEED)
    return runner.run("nbody")


def test_figure4_nbody(benchmark):
    result = benchmark.pedantic(run_nbody, rounds=1, iterations=1)
    fig = make_figure(4, result)
    print()
    print(fig.render())
    m = result.metrics
    hist = size_histogram(result.trace)

    # Table-1 row: 13% reads / 87% writes (band).
    assert 5 <= m.read_pct <= 25

    # 1 KB blocks dominate, with visible 2 KB write-back clusters.
    assert dominant_size(result.trace) == 1.0
    assert hist.get(2.0, 0) > 0

    # Paging ordering vs. the other applications: PPM < N-body < wavelet.
    ppm = run_experiment("ppm")
    wavelet = run_experiment("wavelet")
    paging = {name: size_histogram(r.trace).get(4.0, 0)
              for name, r in (("ppm", ppm), ("nbody", result),
                              ("wavelet", wavelet))}
    assert paging["ppm"] < paging["nbody"] < paging["wavelet"]

    # Much less total activity than the wavelet run.
    assert m.requests_per_node < 0.5 * wavelet.metrics.requests_per_node
