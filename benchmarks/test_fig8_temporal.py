"""Figure 8 — temporal locality of the combined workload.

Paper shape: access frequency per sector, averaged over the ~700 s run,
shows most I/O at lower sector numbers with hot spots — the most
frequently accessed sector near 45,000 and the next just under 100,000.
"""

from repro.core import make_figure
from repro.core.locality import reuse_fraction, temporal_locality


def test_figure8_temporal_locality(benchmark, combined_result):
    temporal = benchmark.pedantic(temporal_locality,
                                  args=(combined_result.trace,),
                                  rounds=5, iterations=1)
    fig = make_figure(8, combined_result)
    print()
    print(fig.render())

    hot = temporal.hot_spots(10)
    print("hot spots:", hot[:5])

    # Hot spots exist and sit at low sector numbers.
    assert len(hot) == 10
    hottest_sector, hottest_freq = hot[0]
    assert hottest_freq > 0.05              # revisited sectors, not noise
    assert all(sector < 500_000 for sector, _ in hot)

    # The paper's hottest spot is ~45,000 (the system log area); ours
    # lands in the same log band.
    log_band = [s for s, _ in hot if 40_000 <= s < 56_000]
    assert log_band, f"no hot spot in the log area; got {hot}"

    # Substantial temporal reuse overall.
    assert reuse_fraction(combined_result.trace) > 0.5

    # Mean inter-access gap of the hottest sector is well under the run
    # length (it is hit repeatedly, not once).
    idx = list(temporal.sectors).index(hottest_sector)
    assert temporal.mean_interaccess[idx] < combined_result.duration / 10
