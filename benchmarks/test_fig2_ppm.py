"""Figure 2 — request size vs. time for the PPM run.

Paper shape: low I/O dominated by 1 KB blocks; essentially no paging
through the run except a brief 4 KB burst near the end (~230 s); run
length ~250 s; 4% reads / 96% writes.
"""


from repro.core import ExperimentRunner, make_figure
from repro.core.sizes import class_fractions, dominant_size, RequestClass

from conftest import BENCH_NODES, BENCH_SEED


def run_ppm():
    runner = ExperimentRunner(nnodes=BENCH_NODES, seed=BENCH_SEED)
    return runner.run("ppm")


def test_figure2_ppm(benchmark):
    result = benchmark.pedantic(run_ppm, rounds=1, iterations=1)
    fig = make_figure(2, result)
    print()
    print(fig.render())
    m = result.metrics

    # Table-1 row: 4% reads (we accept a small band).
    assert m.read_pct <= 12

    # Low I/O intensity; 1 KB block class dominates.
    assert m.requests_per_second < 5.0
    assert dominant_size(result.trace) == 1.0
    fractions = class_fractions(result.trace)
    assert fractions[RequestClass.BLOCK] > 0.6
    assert fractions[RequestClass.CACHE] < 0.02

    # Run length near the paper's ~250 s figure span.
    assert 150 < m.duration < 350

    # The paging blip: 4 KB reads absent from the middle of the run,
    # present near the end.
    reads4 = result.trace.reads()
    reads4 = reads4.records[reads4.size_kb == 4.0]
    third = m.duration / 3
    mid = (reads4["time"] >= third) & (reads4["time"] < 2 * third)
    assert mid.sum() == 0
    assert (reads4["time"] >= 2 * third).sum() > 0
