"""Figure 1 — I/O requests (baseline): sector vs. time of the quiescent
system.

Paper shape: ~0.9 requests/s, essentially all writes, 1 KB dominant,
accesses concentrated on a few sectors (horizontal lines) at low AND high
sector numbers (logging + instrumentation output).
"""

import numpy as np

from repro.core import ExperimentRunner, make_figure
from repro.core.sizes import dominant_size

from conftest import BENCH_NODES, BENCH_SEED


def run_baseline():
    runner = ExperimentRunner(nnodes=BENCH_NODES, seed=BENCH_SEED,
                              baseline_duration=2000.0)
    return runner.run("baseline")


def test_figure1_baseline(benchmark):
    result = benchmark.pedantic(run_baseline, rounds=1, iterations=1)
    fig = make_figure(1, result)
    print()
    print(fig.render())
    m = result.metrics

    # Table-1 row: 0% reads / 100% writes at ~0.9 req/s, 1782 total.
    assert m.read_pct <= 3
    assert 0.5 < m.requests_per_second < 1.5
    assert 1000 < m.requests_per_node < 3000

    # Dominant request size is the 1 KB block.
    assert dominant_size(result.trace) == 1.0

    # Horizontal lines: few distinct sectors, heavily revisited.
    from repro.core.locality import reuse_fraction
    distinct = len(np.unique(result.trace.sector))
    assert distinct < 0.3 * len(result.trace)
    assert reuse_fraction(result.trace) > 0.5

    # Activity at both low and high sector numbers.
    sectors = result.trace.sector
    assert (sectors < 300_000).any()
    assert (sectors >= 1_000_000).any()
