"""Figure 5 — request size vs. time for the combined run.

Paper shape: 1 KB requests persist throughout with many more 4 KB
requests (greater load); a dramatic rise in request size around the
wavelet image read; sizes in the 16-32 KB range attributable to the
increased I/O buffering under multiprogramming; run ~700 s.
"""

from repro.core import make_figure
from repro.core.sizes import size_histogram

from conftest import run_experiment


def analyse(result):
    return make_figure(5, result), size_histogram(result.trace)


def test_figure5_combined_sizes(benchmark, combined_result):
    fig, hist = benchmark.pedantic(analyse, args=(combined_result,),
                                   rounds=3, iterations=1)
    print()
    print(fig.render())
    m = combined_result.metrics

    # 16-32 KB sizes appear only under the combined load.
    assert max(hist) == 32.0
    for single in ("ppm", "wavelet", "nbody"):
        single_hist = size_histogram(run_experiment(single).trace)
        assert max(single_hist) <= 16.0

    # 1 KB requests are maintained throughout; 4 KB occurrence is high.
    assert hist.get(1.0, 0) > 100
    assert hist.get(4.0, 0) > hist.get(1.0, 0)

    # Run length near the paper's ~700 s.
    assert 450 < m.duration < 1100

    # Combined demand exceeds any single application's.
    for single in ("ppm", "wavelet", "nbody"):
        assert m.requests_per_node > \
            run_experiment(single).metrics.requests_per_node
