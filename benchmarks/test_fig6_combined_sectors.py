"""Figure 6 — I/O requests (combined): sector vs. time scatter.

Paper shape: much higher request activity than baseline, primarily in
the lower sector numbers (programs, data, swap), with the request
clumping in time matching the bursts of Figure 5.
"""

import numpy as np

from repro.core import make_figure

from conftest import run_experiment


def test_figure6_combined_sectors(benchmark, combined_result):
    fig = benchmark.pedantic(make_figure, args=(6, combined_result),
                             rounds=3, iterations=1)
    print()
    print(fig.render())
    trace = combined_result.trace

    # Far more activity than the baseline (per unit time).
    baseline = run_experiment("baseline")
    combined_rate = combined_result.metrics.requests_per_second
    baseline_rate = baseline.metrics.requests_per_second
    assert combined_rate > 5 * baseline_rate

    # Activity concentrated at the lower sector numbers: programs, data,
    # and swap all live below ~400K on the 1M-sector disk.
    low = (trace.sector < 400_000).mean()
    assert low > 0.9

    # Bursts in time: the busiest decile of 10 s windows carries a
    # disproportionate share of requests (clumping).
    duration = combined_result.duration
    bins = np.histogram(trace.time, bins=max(int(duration // 10), 10))[0]
    bins = np.sort(bins)[::-1]
    top_decile = bins[:max(1, len(bins) // 10)].sum()
    assert top_decile > 0.2 * bins.sum()
