"""Analysis engine performance: bounded memory, fan-out, cache hits.

Run with ``PYTHONPATH=src python -m pytest benchmarks/test_analysis_perf.py``.
The acceptance bar from the engine redesign: analysing a 1M-record
catalog must not materialise whole traces (peak allocation bounded by
the chunk size, not the run size), multi-process fan-out must beat
serial wall-clock on a multi-run catalog, and re-analysis of an
unchanged run must be a pure cache hit.
"""

import os
import tracemalloc

import numpy as np
import pytest

from repro.analysis import AnalysisEngine
from repro.core.experiments import ExperimentResult
from repro.core.trace import TraceDataset
from repro.driver import TRACE_DTYPE
from repro.obs import MetricsRegistry
from repro.store import RunCatalog

#: total records across the catalog — the "1M-record" acceptance bar
N = 1_000_000
RUNS = 4
NODES = 4
CHUNK = 8_192


def synth_run(name, n, seed):
    rng = np.random.default_rng(seed)
    arr = np.empty(n, dtype=TRACE_DTYPE)
    arr["time"] = np.sort(rng.exponential(1e-3, n).cumsum())
    arr["sector"] = rng.integers(0, 1_024_128, n)
    arr["write"] = rng.random(n) < 0.8
    arr["pending"] = rng.integers(0, 12, n)
    arr["size_kb"] = rng.choice([0.5, 1.0, 4.0, 32.0], n)
    arr["node"] = rng.integers(0, NODES, n)
    duration = float(arr["time"][-1])
    return ExperimentResult(name=name, trace=TraceDataset(arr),
                            duration=duration, nnodes=NODES)


@pytest.fixture(scope="module")
def catalog(tmp_path_factory):
    root = tmp_path_factory.mktemp("analysis_perf")
    catalog = RunCatalog(root)
    per_run = N // RUNS
    for i in range(RUNS):
        catalog.save(synth_run(f"run{i}", per_run, seed=i),
                     chunk_records=CHUNK)
    return catalog


def test_streaming_memory_bounded(catalog):
    """Peak engine allocation must be far below one materialised run."""
    engine = AnalysisEngine(catalog, cache=False)
    tracemalloc.start()
    tracemalloc.reset_peak()
    out = engine.analyze("run0")
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    run_bytes = (N // RUNS) * TRACE_DTYPE.itemsize
    print(f"\npeak {peak / 1e6:.1f} MB vs {run_bytes / 1e6:.1f} MB "
          f"materialised")
    assert out["metrics"].total_requests == N // RUNS
    # chunk-streaming keeps peak allocation to a fraction of the trace
    assert peak < run_bytes / 2


def test_analyze_serial_wallclock(benchmark, catalog):
    engine = AnalysisEngine(catalog, workers=1, cache=False)
    out = benchmark(lambda: engine.analyze_all(pipelines=["metrics"]))
    assert sum(r["metrics"].total_requests for r in out.values()) == N


@pytest.mark.skipif((os.cpu_count() or 1) < 2,
                    reason="parallel speedup needs >= 2 CPUs")
def test_parallel_beats_serial(catalog):
    """4 workers over the catalog must beat the serial wall-clock."""
    from time import perf_counter
    serial = AnalysisEngine(catalog, workers=1, cache=False)
    parallel = AnalysisEngine(catalog, workers=4, cache=False)
    # warm the page cache so the comparison is about compute fan-out
    serial.analyze_all(pipelines=["metrics"])

    t0 = perf_counter()
    a = serial.analyze_all(pipelines=["metrics", "sizes", "spatial"])
    t_serial = perf_counter() - t0
    t0 = perf_counter()
    b = parallel.analyze_all(pipelines=["metrics", "sizes", "spatial"])
    t_parallel = perf_counter() - t0
    print(f"\nserial {t_serial:.2f}s vs 4 workers {t_parallel:.2f}s "
          f"({t_serial / t_parallel:.2f}x)")
    for run_id in a:
        assert a[run_id]["metrics"] == b[run_id]["metrics"]
        assert a[run_id]["sizes"].histogram == b[run_id]["sizes"].histogram
    assert t_parallel < t_serial


def test_cache_hit_is_cheap(benchmark, catalog, tmp_path_factory):
    """Re-analysis of an unchanged catalog must not decompress chunks."""
    registry = MetricsRegistry()
    engine = AnalysisEngine(catalog, obs=registry)
    engine.analyze_all()                      # populate the caches
    before = registry.counter("analysis.chunks_scanned").value

    out = benchmark(lambda: engine.analyze_all())
    assert registry.counter("analysis.chunks_scanned").value == before
    assert registry.counter("analysis.cache_hits").value > 0
    assert sum(r["metrics"].total_requests for r in out.values()) == N


def test_pushdown_narrows_scan(catalog):
    """A narrow time window must skip the majority of chunks."""
    registry = MetricsRegistry()
    engine = AnalysisEngine(catalog, cache=False, obs=registry)
    manifest = catalog.manifest("run0")
    cut = manifest["duration"] * 0.05
    engine.analyze("run0", ["sizes"], t1=cut)
    scanned = registry.counter("analysis.chunks_scanned").value
    skipped = registry.counter("analysis.chunks_skipped").value
    print(f"\npushdown: scanned {scanned:.0f}, skipped {skipped:.0f}")
    assert skipped > scanned * 3
