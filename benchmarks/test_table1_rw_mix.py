"""Table 1 — the read/write distribution across all five experiments.

Paper values (average per disk):

    baseline   0% /100%   0.9 req/s   1782 total
    PPM        4% / 96%
    wavelet   49% / 51%
    N-body    13% / 87%

Shape targets: ordering of read fractions (baseline < PPM < N-body <<
wavelet ~ 50%), baseline rate ~0.9/s, totals in-band.
"""

from repro.core import render_table1
from repro.core.table import PAPER_TABLE1, table1_rows

from conftest import run_experiment


def build_table():
    results = {name: run_experiment(name)
               for name in ("baseline", "ppm", "wavelet", "nbody",
                            "combined")}
    return results, table1_rows(results)


def test_table1(benchmark):
    results, rows = benchmark.pedantic(build_table, rounds=1, iterations=1)
    print()
    print(render_table1(results))
    by_name = {m.label: m for m in rows}

    # Read-fraction ordering matches the paper exactly.
    assert by_name["baseline"].read_fraction <= \
        by_name["ppm"].read_fraction < \
        by_name["nbody"].read_fraction < \
        by_name["wavelet"].read_fraction

    # Per-row bands around the paper's percentages.
    assert by_name["baseline"].read_pct <= 3            # paper: 0%
    assert by_name["ppm"].read_pct <= 12                # paper: 4%
    assert 40 <= by_name["wavelet"].read_pct <= 60      # paper: 49%
    assert 5 <= by_name["nbody"].read_pct <= 25         # paper: 13%

    # Baseline rate and totals (paper: 0.9 req/s, 1782 over 2000 s).
    assert 0.5 < by_name["baseline"].requests_per_second < 1.5
    assert 1000 < by_name["baseline"].requests_per_node < 3000

    # Writes dominate everywhere except wavelet.
    for name in ("baseline", "ppm", "nbody", "combined"):
        assert by_name[name].write_fraction > 0.4
    # every paper row is represented
    assert set(PAPER_TABLE1) <= set(by_name)
