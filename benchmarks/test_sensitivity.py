"""Sensitivity sweeps — design-space exploration on the kernel tunables.

The design-tuning use case of the paper's parameter set, run directly on
the mechanistic substrate: sweep one kernel knob at a time (as a
``repro.config`` grid over the benchmark scenario) and verify the
workload responds the way the mechanism predicts.

* read-ahead ceiling bounds the largest observed read;
* buffer-cache size trades hit ratio against disk reads;
* bdflush interval shapes write clumping (burstiness).
"""


from repro.config import expand_grid, parse_axis_spec
from repro.core.patterns import arrival_structure

from conftest import bench_scenario, run_scenario


def sweep_traces(axis_spec, experiment, duration=None):
    """Expand one grid axis over the 1-node bench scenario and run it,
    returning {axis value: ExperimentResult} (full traces, unlike
    ``run_sweep``'s summary metrics)."""
    axis = parse_axis_spec(axis_spec)
    points = expand_grid(bench_scenario(nnodes=1), [axis])
    return {value: run_scenario(point.scenario, experiment,
                                duration=duration)
            for (_, value), point in
            ((point.overrides[0], point) for point in points)}


def test_readahead_ceiling_bounds_read_sizes(benchmark):
    def sweep():
        results = sweep_traces("readahead_kb=4,8,16,32", "wavelet")
        return {int(ceiling): float(result.trace.reads().size_kb.max())
                for ceiling, result in results.items()}

    tops = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("  max read size by read-ahead ceiling:", tops)
    # one disk request covers at most the syscall span (8 KB chunks can
    # straddle block boundaries -> 9 blocks) plus one read-ahead window
    syscall_blocks = 9.0
    for ceiling, top in tops.items():
        assert top <= syscall_blocks + ceiling
    # raising the ceiling monotonically raises the top size
    ordered = [tops[c] for c in (4, 8, 16, 32)]
    assert ordered == sorted(ordered)
    assert tops[32] > tops[8]


def test_buffer_cache_size_trades_reads(benchmark):
    def sweep():
        results = sweep_traces("buffer_cache_kb=256,1024,4096", "wavelet")
        # block-class reads = misses that reached the disk
        return {int(kb): int((result.trace.reads().size_kb < 4.0).sum())
                for kb, result in results.items()}

    reads_by_cache = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("  sub-4KB disk reads by cache size:", reads_by_cache)
    assert reads_by_cache[4096] <= reads_by_cache[256]


def test_bdflush_interval_shapes_write_burstiness(benchmark):
    def sweep():
        out = {}
        for interval in (2.0, 30.0):
            scenario = bench_scenario(
                nnodes=1,
                node__bdflush_interval=interval,
                node__bdflush_age=interval)
            result = run_scenario(scenario, "baseline", duration=600.0)
            writes = result.trace.writes()
            # fixed observation window so the IDCs are comparable
            out[interval] = arrival_structure(writes, window=10.0).idc
        return out

    idc = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("  write IDC by flush interval:", idc)
    # longer accumulation -> burstier write-back
    assert idc[30.0] > idc[2.0]
