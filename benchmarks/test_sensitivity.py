"""Sensitivity sweeps — design-space exploration on the kernel tunables.

The design-tuning use case of the paper's parameter set, run directly on
the mechanistic substrate: sweep one kernel knob at a time and verify
the workload responds the way the mechanism predicts.

* read-ahead ceiling bounds the largest observed read;
* buffer-cache size trades hit ratio against disk reads;
* bdflush interval shapes write clumping (burstiness).
"""


from repro.core import ExperimentRunner
from repro.core.patterns import arrival_structure
from repro.kernel import NodeParams

from conftest import BENCH_SEED


def wavelet_with(params):
    runner = ExperimentRunner(nnodes=1, seed=BENCH_SEED, node_params=params)
    return runner.run("wavelet")


def test_readahead_ceiling_bounds_read_sizes(benchmark):
    def sweep():
        out = {}
        for ceiling in (4, 8, 16, 32):
            result = wavelet_with(NodeParams(max_readahead_kb=ceiling))
            reads = result.trace.reads()
            out[ceiling] = float(reads.size_kb.max())
        return out

    tops = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("  max read size by read-ahead ceiling:", tops)
    # one disk request covers at most the syscall span (8 KB chunks can
    # straddle block boundaries -> 9 blocks) plus one read-ahead window
    syscall_blocks = 9.0
    for ceiling, top in tops.items():
        assert top <= syscall_blocks + ceiling
    # raising the ceiling monotonically raises the top size
    ordered = [tops[c] for c in (4, 8, 16, 32)]
    assert ordered == sorted(ordered)
    assert tops[32] > tops[8]


def test_buffer_cache_size_trades_reads(benchmark):
    def sweep():
        out = {}
        for cache_kb in (256, 1024, 4096):
            result = wavelet_with(NodeParams(buffer_cache_kb=cache_kb))
            # block-class reads = misses that reached the disk
            reads = result.trace.reads()
            block_reads = int((reads.size_kb < 4.0).sum())
            out[cache_kb] = block_reads
        return out

    reads_by_cache = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("  sub-4KB disk reads by cache size:", reads_by_cache)
    assert reads_by_cache[4096] <= reads_by_cache[256]


def test_bdflush_interval_shapes_write_burstiness(benchmark):
    def sweep():
        out = {}
        for interval in (2.0, 30.0):
            params = NodeParams(bdflush_interval=interval,
                                bdflush_age=interval)
            runner = ExperimentRunner(nnodes=1, seed=BENCH_SEED,
                                      node_params=params,
                                      baseline_duration=600.0)
            result = runner.run("baseline")
            writes = result.trace.writes()
            # fixed observation window so the IDCs are comparable
            out[interval] = arrival_structure(writes, window=10.0).idc
        return out

    idc = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("  write IDC by flush interval:", idc)
    # longer accumulation -> burstier write-back
    assert idc[30.0] > idc[2.0]
