"""Cluster-size scaling: per-disk characteristics are node-count
invariant.

The paper reports per-disk averages from 16 nodes; the models run one
task per node with neighbor communication.  This benchmark sweeps the
cluster size and verifies the per-disk picture the figures show does not
depend on how many nodes participate (while total volume scales
linearly), and reports how simulation cost grows.
"""

import time

from repro.core import ExperimentRunner

from conftest import BENCH_SEED


def sweep(node_counts=(1, 2, 4)):
    rows = []
    for nnodes in node_counts:
        t0 = time.time()
        runner = ExperimentRunner(nnodes=nnodes, seed=BENCH_SEED)
        result = runner.run("wavelet")
        m = result.metrics
        rows.append({
            "nnodes": nnodes,
            "per_node": m.requests_per_node,
            "read_pct": m.read_pct,
            "total": m.total_requests,
            "wall": time.time() - t0,
        })
    return rows


def test_per_disk_invariance_across_cluster_sizes(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(f"  {'nodes':>5} {'req/disk':>9} {'reads%':>7} "
          f"{'total':>8} {'wall s':>7}")
    for row in rows:
        print(f"  {row['nnodes']:>5} {row['per_node']:>9.0f} "
              f"{row['read_pct']:>7} {row['total']:>8} "
              f"{row['wall']:>7.1f}")

    base = rows[0]
    for row in rows[1:]:
        # per-disk request count and mix stay put ...
        assert abs(row["per_node"] - base["per_node"]) \
            < 0.25 * base["per_node"]
        assert abs(row["read_pct"] - base["read_pct"]) <= 5
        # ... while the total scales with the cluster
        expected = base["total"] * row["nnodes"]
        assert abs(row["total"] - expected) < 0.25 * expected
