"""Standalone SVG rendering of scatter plots and bar charts.

Dependency-free publication-quality output: each function returns an SVG
document string (write it to a ``.svg`` file and open in any browser).
Used by ``FigureSeries.to_svg`` so every paper figure can be exported as
a graphic as well as CSV/ASCII.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

# layout constants (pixels)
_MARGIN_L, _MARGIN_R, _MARGIN_T, _MARGIN_B = 64, 16, 36, 46


def _esc(text: str) -> str:
    return (str(text).replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;"))


def _ticks(lo: float, hi: float, n: int = 5):
    if hi <= lo:
        hi = lo + 1.0
    raw = np.linspace(lo, hi, n)
    return raw


def _fmt(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 10_000 or abs(value) < 0.01:
        return f"{value:.2g}"
    return f"{value:g}" if value == round(value, 2) else f"{value:.2f}"


def _frame(width, height, x0, x1, y0, y1, xlabel, ylabel, title):
    """Axes, ticks, labels; returns (svg_parts, to_px mapping)."""
    plot_w = width - _MARGIN_L - _MARGIN_R
    plot_h = height - _MARGIN_T - _MARGIN_B

    def to_px(x, y):
        px = _MARGIN_L + (x - x0) / (x1 - x0 or 1.0) * plot_w
        py = _MARGIN_T + (1 - (y - y0) / (y1 - y0 or 1.0)) * plot_h
        return px, py

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'font-family="sans-serif" font-size="11">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<rect x="{_MARGIN_L}" y="{_MARGIN_T}" width="{plot_w}" '
        f'height="{plot_h}" fill="none" stroke="#333"/>',
    ]
    if title:
        parts.append(f'<text x="{width / 2}" y="20" text-anchor="middle" '
                     f'font-size="13" font-weight="bold">{_esc(title)}'
                     f'</text>')
    for xv in _ticks(x0, x1):
        px, _ = to_px(xv, y0)
        parts.append(f'<line x1="{px:.1f}" y1="{_MARGIN_T + plot_h}" '
                     f'x2="{px:.1f}" y2="{_MARGIN_T + plot_h + 4}" '
                     f'stroke="#333"/>')
        parts.append(f'<text x="{px:.1f}" y="{_MARGIN_T + plot_h + 16}" '
                     f'text-anchor="middle">{_esc(_fmt(xv))}</text>')
    for yv in _ticks(y0, y1):
        _, py = to_px(x0, yv)
        parts.append(f'<line x1="{_MARGIN_L - 4}" y1="{py:.1f}" '
                     f'x2="{_MARGIN_L}" y2="{py:.1f}" stroke="#333"/>')
        parts.append(f'<text x="{_MARGIN_L - 7}" y="{py + 3:.1f}" '
                     f'text-anchor="end">{_esc(_fmt(yv))}</text>')
    if xlabel:
        parts.append(f'<text x="{_MARGIN_L + plot_w / 2}" '
                     f'y="{height - 10}" text-anchor="middle">'
                     f'{_esc(xlabel)}</text>')
    if ylabel:
        cx, cy = 14, _MARGIN_T + plot_h / 2
        parts.append(f'<text x="{cx}" y="{cy}" text-anchor="middle" '
                     f'transform="rotate(-90 {cx} {cy})">{_esc(ylabel)}'
                     f'</text>')
    return parts, to_px


def svg_scatter(x: Sequence[float], y: Sequence[float], width: int = 640,
                height: int = 400, xlabel: str = "", ylabel: str = "",
                title: str = "", color: str = "#2266aa",
                radius: float = 1.6,
                max_points: Optional[int] = 20_000) -> str:
    """Scatter plot as an SVG document string.

    Very large traces are thinned deterministically to ``max_points``
    (every k-th point) to keep the file size sane.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError("x and y must have the same length")
    if max_points is not None and len(x) > max_points:
        step = int(np.ceil(len(x) / max_points))
        x, y = x[::step], y[::step]
    if len(x) == 0:
        x0 = y0 = 0.0
        x1 = y1 = 1.0
    else:
        x0, x1 = float(x.min()), float(x.max())
        y0, y1 = float(y.min()), float(y.max())
        if x1 == x0:
            x1 = x0 + 1.0
        if y1 == y0:
            y1 = y0 + 1.0
    parts, to_px = _frame(width, height, x0, x1, y0, y1,
                          xlabel, ylabel, title)
    dots = []
    for xv, yv in zip(x, y):
        px, py = to_px(xv, yv)
        dots.append(f'<circle cx="{px:.1f}" cy="{py:.1f}" r="{radius}"/>')
    parts.append(f'<g fill="{color}" fill-opacity="0.55">'
                 + "".join(dots) + "</g>")
    parts.append("</svg>")
    return "\n".join(parts)


def svg_bar_chart(labels: Sequence[str], values: Sequence[float],
                  width: int = 640, height: int = 400,
                  xlabel: str = "", ylabel: str = "", title: str = "",
                  color: str = "#2266aa") -> str:
    """Vertical bar chart as an SVG document string."""
    values = np.asarray(values, dtype=np.float64)
    if len(labels) != len(values):
        raise ValueError("labels and values must match")
    top = float(values.max()) if len(values) and values.max() > 0 else 1.0
    parts, to_px = _frame(width, height, 0.0, float(max(len(values), 1)),
                          0.0, top, xlabel, ylabel, title)
    plot_bottom = height - _MARGIN_B
    bars = []
    n = max(len(values), 1)
    slot = (width - _MARGIN_L - _MARGIN_R) / n
    for i, (label, value) in enumerate(zip(labels, values)):
        px0, py = to_px(i + 0.15, value)
        bar_w = slot * 0.7
        bars.append(f'<rect x="{px0:.1f}" y="{py:.1f}" '
                    f'width="{bar_w:.1f}" '
                    f'height="{max(plot_bottom - py, 0):.1f}"/>')
        cx = _MARGIN_L + (i + 0.5) * slot
        parts.append(f'<text x="{cx:.1f}" y="{plot_bottom + 28}" '
                     f'text-anchor="middle" font-size="10">'
                     f'{_esc(label)}</text>')
    parts.append(f'<g fill="{color}">' + "".join(bars) + "</g>")
    parts.append("</svg>")
    return "\n".join(parts)
