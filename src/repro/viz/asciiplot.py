"""ASCII scatter plots and bar charts."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np


def scatter(x: Sequence[float], y: Sequence[float], width: int = 72,
            height: int = 20, xlabel: str = "", ylabel: str = "",
            title: str = "", marker: str = "*") -> str:
    """Render (x, y) points as a text scatter plot.

    Density is shown by character weight: ``.`` for one point in a cell,
    the marker for a few, ``#`` for many.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError("x and y must have the same length")
    if width < 8 or height < 3:
        raise ValueError("plot too small")
    lines = []
    if title:
        lines.append(title.center(width + 10))
    if len(x) == 0:
        lines.append("(no data)")
        return "\n".join(lines)

    x0, x1 = float(x.min()), float(x.max())
    y0, y1 = float(y.min()), float(y.max())
    xspan = (x1 - x0) or 1.0
    yspan = (y1 - y0) or 1.0
    grid = np.zeros((height, width), dtype=np.int64)
    col = np.minimum(((x - x0) / xspan * (width - 1)).astype(int), width - 1)
    row = np.minimum(((y - y0) / yspan * (height - 1)).astype(int),
                     height - 1)
    np.add.at(grid, (height - 1 - row, col), 1)

    dense = max(2, int(grid.max() * 0.5))
    for r in range(height):
        yvalue = y1 - (r / (height - 1)) * yspan
        cells = []
        for c in range(width):
            n = grid[r, c]
            if n == 0:
                cells.append(" ")
            elif n == 1:
                cells.append(".")
            elif n < dense:
                cells.append(marker)
            else:
                cells.append("#")
        lines.append(f"{yvalue:9.3g} |{''.join(cells)}")
    lines.append(" " * 10 + "+" + "-" * width)
    left = f"{x0:.3g}"
    right = f"{x1:.3g}"
    pad = width - len(left) - len(right)
    lines.append(" " * 11 + left + " " * max(pad, 1) + right)
    if xlabel or ylabel:
        lines.append(f"   x: {xlabel}    y: {ylabel}".rstrip())
    return "\n".join(lines)


def bar_chart(labels: Sequence[str], values: Sequence[float],
              width: int = 50, title: str = "",
              fmt: str = "{:.3g}",
              max_value: Optional[float] = None) -> str:
    """Render labelled horizontal bars."""
    values = np.asarray(values, dtype=np.float64)
    if len(labels) != len(values):
        raise ValueError("labels and values must match")
    lines = []
    if title:
        lines.append(title)
    if len(values) == 0:
        lines.append("(no data)")
        return "\n".join(lines)
    top = max_value if max_value is not None else float(values.max())
    top = top or 1.0
    label_w = max(len(str(lab)) for lab in labels)
    for lab, val in zip(labels, values):
        nchars = int(round(val / top * width))
        bar = "#" * max(nchars, 0)
        lines.append(f"{str(lab):>{label_w}} |{bar} {fmt.format(val)}")
    return "\n".join(lines)
