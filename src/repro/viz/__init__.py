"""Terminal-friendly rendering of the study's figures.

No plotting dependency: scatters and bar charts render as text, and every
figure's data series exports to CSV for external plotting.
"""

from repro.viz.asciiplot import bar_chart, scatter
from repro.viz.svgplot import svg_bar_chart, svg_scatter

__all__ = ["bar_chart", "scatter", "svg_bar_chart", "svg_scatter"]
