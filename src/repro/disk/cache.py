"""On-drive segment cache with read look-ahead.

Mid-90s IDE drives carried a 64-256 KB buffer organised as a handful of
segments, each holding a contiguous run of recently-read sectors plus
look-ahead read "for free" as the platter kept spinning.  A read fully
contained in a segment is served electronically (no seek, no rotation).
Writes are write-through and invalidate any overlapping cached span.

The device consults this cache before charging mechanical time; the
drive-cache ablation benchmark shows what it buys for sequential 1 KB
streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.registry import Registry

#: plugin registry of drive-cache models; factories accept the
#: ``DriveCacheConfig`` geometry keywords they care about
DRIVE_CACHES = Registry("drive cache")


@dataclass
class _Segment:
    start: int           # first cached sector
    end: int             # one past the last cached sector
    last_used: int       # LRU stamp

    def contains(self, sector: int, nsectors: int) -> bool:
        return self.start <= sector and sector + nsectors <= self.end

    def overlaps(self, sector: int, nsectors: int) -> bool:
        return sector < self.end and self.start < sector + nsectors


@DRIVE_CACHES.register("segmented")
class DriveCache:
    """Segmented on-drive read cache."""

    def __init__(self, nsegments: int = 4, segment_sectors: int = 128,
                 lookahead_sectors: int = 64):
        if nsegments < 1:
            raise ValueError("need at least one segment")
        if segment_sectors < 1 or lookahead_sectors < 0:
            raise ValueError("bad segment/lookahead size")
        self.nsegments = nsegments
        self.segment_sectors = segment_sectors
        self.lookahead_sectors = lookahead_sectors
        self._segments: List[_Segment] = []
        self._clock = 0
        self.hits = 0
        self.misses = 0

    @property
    def capacity_sectors(self) -> int:
        return self.nsegments * self.segment_sectors

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def lookup(self, sector: int, nsectors: int) -> bool:
        """True if a read of this span is fully cached (and count it)."""
        self._clock += 1
        for segment in self._segments:
            if segment.contains(sector, nsectors):
                segment.last_used = self._clock
                self.hits += 1
                return True
        self.misses += 1
        return False

    def fill_after_read(self, sector: int, nsectors: int,
                        disk_sectors: Optional[int] = None) -> Tuple[int, int]:
        """Install the span just read, extended by the look-ahead.

        Returns the cached (start, end) span.  The span is clipped to one
        segment's capacity (largest reads simply stream through) and to
        the end of the disk.
        """
        self._clock += 1
        end = sector + nsectors + self.lookahead_sectors
        if disk_sectors is not None:
            end = min(end, disk_sectors)
        start = max(sector, end - self.segment_sectors)
        segment = self._victim()
        segment.start = start
        segment.end = end
        segment.last_used = self._clock
        return start, end

    def invalidate(self, sector: int, nsectors: int) -> int:
        """Drop segments overlapping a written span; returns count."""
        before = len(self._segments)
        self._segments = [s for s in self._segments
                          if not s.overlaps(sector, nsectors)]
        return before - len(self._segments)

    # -- checkpoint state surface ---------------------------------------
    def snapshot_state(self) -> dict:
        return {"segments": [(s.start, s.end, s.last_used)
                             for s in self._segments],
                "clock": self._clock,
                "hits": self.hits, "misses": self.misses}

    def restore_state(self, state: dict) -> None:
        self._segments = [_Segment(int(a), int(b), int(c))
                          for a, b, c in state["segments"]]
        self._clock = int(state["clock"])
        self.hits = int(state["hits"])
        self.misses = int(state["misses"])

    def _victim(self) -> _Segment:
        if len(self._segments) < self.nsegments:
            segment = _Segment(0, 0, self._clock)
            self._segments.append(segment)
            return segment
        return min(self._segments, key=lambda s: s.last_used)


@DRIVE_CACHES.register("none")
class NullDriveCache:
    """A drive with its buffer disabled: every read misses.

    Timing-equivalent to a cacheless device (no look-ahead is read, so
    no rotation is charged for one) while keeping the cache interface
    and hit/miss accounting alive — the ablation baseline the 0-segment
    sweeps select.  Accepts and ignores the segmented cache's geometry
    keywords so both kinds build from one config shape.
    """

    nsegments = 0
    segment_sectors = 0
    lookahead_sectors = 0

    def __init__(self, nsegments: int = 0, segment_sectors: int = 0,
                 lookahead_sectors: int = 0):
        self.hits = 0
        self.misses = 0

    @property
    def capacity_sectors(self) -> int:
        return 0

    @property
    def hit_ratio(self) -> float:
        return 0.0

    def lookup(self, sector: int, nsectors: int) -> bool:
        self.misses += 1
        return False

    def snapshot_state(self) -> dict:
        return {"hits": self.hits, "misses": self.misses}

    def restore_state(self, state: dict) -> None:
        self.hits = int(state["hits"])
        self.misses = int(state["misses"])

    def fill_after_read(self, sector: int, nsectors: int,
                        disk_sectors: Optional[int] = None) -> Tuple[int, int]:
        return sector, sector

    def invalidate(self, sector: int, nsectors: int) -> int:
        return 0
