"""Disk geometry: logical block addresses and cylinder/head/sector layout.

Seek distance (and therefore service time) depends on how far the actuator
moves in *cylinders*, so the geometry converts the flat sector numbers seen
in traces into cylinder positions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Bytes per physical disk sector (universal for the drives of the era).
SECTOR_BYTES = 512


@dataclass(frozen=True)
class DiskGeometry:
    """CHS geometry of a drive addressed by flat (LBA) sector numbers.

    Parameters
    ----------
    heads:
        Read/write heads = tracks per cylinder.
    sectors_per_track:
        Sectors on one track (no zoned recording; constant, as on the
        IDE drives of the period).
    cylinders:
        Number of cylinder positions.
    """

    cylinders: int = 1016
    heads: int = 16
    sectors_per_track: int = 63

    def __post_init__(self):
        if min(self.cylinders, self.heads, self.sectors_per_track) < 1:
            raise ValueError("geometry dimensions must be positive")

    @classmethod
    def from_capacity_mb(cls, capacity_mb: float, heads: int = 16,
                         sectors_per_track: int = 63) -> "DiskGeometry":
        """Smallest geometry with at least ``capacity_mb`` megabytes."""
        if capacity_mb <= 0:
            raise ValueError("capacity must be positive")
        sectors_needed = int(capacity_mb * 1024 * 1024 / SECTOR_BYTES)
        per_cylinder = heads * sectors_per_track
        cylinders = -(-sectors_needed // per_cylinder)  # ceil
        return cls(cylinders=cylinders, heads=heads,
                   sectors_per_track=sectors_per_track)

    @property
    def sectors_per_cylinder(self) -> int:
        return self.heads * self.sectors_per_track

    @property
    def total_sectors(self) -> int:
        return self.cylinders * self.sectors_per_cylinder

    @property
    def capacity_bytes(self) -> int:
        return self.total_sectors * SECTOR_BYTES

    def cylinder_of(self, sector: int) -> int:
        """Cylinder holding flat ``sector``."""
        self._check(sector)
        return sector // self.sectors_per_cylinder

    def chs(self, sector: int) -> tuple[int, int, int]:
        """(cylinder, head, sector-within-track) of a flat sector number."""
        self._check(sector)
        cylinder, rest = divmod(sector, self.sectors_per_cylinder)
        head, sect = divmod(rest, self.sectors_per_track)
        return cylinder, head, sect

    def lba(self, cylinder: int, head: int, sect: int) -> int:
        """Flat sector number of a (cylinder, head, sector) triple."""
        if not (0 <= cylinder < self.cylinders):
            raise ValueError(f"cylinder {cylinder} out of range")
        if not (0 <= head < self.heads):
            raise ValueError(f"head {head} out of range")
        if not (0 <= sect < self.sectors_per_track):
            raise ValueError(f"sector-in-track {sect} out of range")
        return (cylinder * self.heads + head) * self.sectors_per_track + sect

    def _check(self, sector: int) -> None:
        if not (0 <= sector < self.total_sectors):
            raise ValueError(
                f"sector {sector} outside disk (0..{self.total_sectors - 1})")

    def sectors_per_track_at(self, cylinder: int) -> int:
        """Track capacity at a cylinder (constant; ZBR overrides)."""
        if not (0 <= cylinder < self.cylinders):
            raise ValueError(f"cylinder {cylinder} out of range")
        return self.sectors_per_track

    def sectors_per_track_table(self) -> np.ndarray:
        """Per-cylinder track capacity as a float64 lookup table.

        One call replaces ``cylinders`` calls to
        :meth:`sectors_per_track_at` when a service model precomputes its
        zoned-transfer table; entries are elementwise identical to the
        scalar method (small integers convert to float64 exactly).
        """
        return np.array([self.sectors_per_track_at(c)
                         for c in range(self.cylinders)], dtype=np.float64)


@dataclass(frozen=True)
class ZBRGeometry(DiskGeometry):
    """Zoned-bit-recording geometry: outer tracks hold more sectors.

    Real drives of the era recorded more sectors on the longer outer
    tracks; the media transfer rate therefore falls toward the inner
    (higher-numbered, in our convention) cylinders.  The flat LBA <-> CHS
    mapping keeps the *average* sectors-per-track so total capacity and
    sector numbering stay compatible with the plain geometry; only the
    per-cylinder transfer rate differs.

    ``zbr_ratio`` is outer-track capacity over inner-track capacity
    (typically ~1.5-1.8 for mid-90s drives).
    """

    zbr_ratio: float = 1.6
    zones: int = 8

    def __post_init__(self):
        super().__post_init__()
        if self.zbr_ratio < 1.0:
            raise ValueError("zbr_ratio must be >= 1")
        if self.zones < 1:
            raise ValueError("need at least one zone")

    def sectors_per_track_at(self, cylinder: int) -> int:
        if not (0 <= cylinder < self.cylinders):
            raise ValueError(f"cylinder {cylinder} out of range")
        zone = min(self.zones - 1, cylinder * self.zones // self.cylinders)
        # linear interpolation of track capacity from outer (zone 0) to
        # inner (last zone), preserving the mean ~= sectors_per_track
        outer = self.sectors_per_track * 2 * self.zbr_ratio \
            / (1 + self.zbr_ratio)
        inner = outer / self.zbr_ratio
        if self.zones == 1:
            return max(1, int(round(self.sectors_per_track)))
        frac = zone / (self.zones - 1)
        return max(1, int(round(outer + (inner - outer) * frac)))
