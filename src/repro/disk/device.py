"""The disk device: a single-actuator server draining a scheduled queue."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.disk.request import IORequest
from repro.disk.scheduler import CLookScheduler, supports_batching
from repro.disk.service import DiskServiceModel
from repro.sim import BatchedDraws, Event, Simulator

#: requests claimed from the scheduler per server wakeup; bounds how much
#: claimed work a mid-run submission can force back through ``requeue``
DRAIN_LIMIT = 64
#: run length below which numpy precompute costs more than scalar math
_VECTOR_MIN = 4


class LatencyReservoir:
    """Bounded uniform sample of request latencies (Algorithm R).

    A device that lives for a long run sees millions of requests; the
    reservoir keeps a fixed-size uniform sample so percentile queries
    stay accurate (exact below ``capacity`` observations, statistically
    tight above) while memory stays constant.  The replacement stream is
    seeded deterministically so runs remain reproducible.
    """

    __slots__ = ("capacity", "count", "_values", "_rng")

    def __init__(self, capacity: int = 8192, seed: int = 0x10DE):
        if capacity < 1:
            raise ValueError("reservoir capacity must be >= 1")
        self.capacity = capacity
        #: total observations offered (not just those retained)
        self.count = 0
        self._values: list = []
        self._rng = random.Random(seed)

    def snapshot_state(self) -> dict:
        return {"count": self.count,
                "values": list(self._values),
                "rng": self._rng.getstate()}

    def restore_state(self, state: dict) -> None:
        self.count = int(state["count"])
        self._values = [float(v) for v in state["values"]]
        # setstate wants the exact nested-tuple shape getstate returned;
        # the checkpoint round-trip preserves tuples, lists stay lists
        self._rng.setstate(tuple(state["rng"]))

    def append(self, value: float) -> None:
        self.count += 1
        if len(self._values) < self.capacity:
            self._values.append(value)
            return
        j = self._rng.randrange(self.count)
        if j < self.capacity:
            self._values[j] = value

    def percentile(self, q: float) -> float:
        if not self._values:
            return 0.0
        return float(np.percentile(self._values, q))

    # list-like views, so existing callers can np.array() the sample
    def __len__(self) -> int:
        return len(self._values)

    def __getitem__(self, index):
        return self._values[index]

    def __iter__(self):
        return iter(self._values)


@dataclass
class DiskStats:
    """Lifetime counters of one disk device.

    Latencies are sampled into a bounded :class:`LatencyReservoir`
    (``_latencies``) rather than appended to an ever-growing list, so a
    device's memory footprint is constant no matter how long it runs;
    ``total_latency``/``mean_latency`` remain exact sums.
    """

    reads: int = 0
    writes: int = 0
    sectors_read: int = 0
    sectors_written: int = 0
    busy_time: float = 0.0
    total_latency: float = 0.0
    max_queue_depth: int = 0
    media_errors: int = 0
    _latencies: LatencyReservoir = field(default_factory=LatencyReservoir,
                                         repr=False)

    @property
    def requests(self) -> int:
        return self.reads + self.writes

    @property
    def mean_latency(self) -> float:
        return self.total_latency / self.requests if self.requests else 0.0

    def latency_percentile(self, q: float) -> float:
        return self._latencies.percentile(q)


class _DiskInstruments:
    """Per-device observability instruments (built only when enabled)."""

    __slots__ = ("queue_depth", "seek_cylinders", "service_time",
                 "requests", "sectors_per_cylinder",
                 "observe_queue_depth", "observe_seek", "observe_service")

    def __init__(self, registry, disk_name: str, discipline: str,
                 sectors_per_cylinder: int = 1):
        #: cached geometry constant: the server derives the target
        #: cylinder with one floor division per serviced request
        #: (requests are range-checked at submit, so no re-validation)
        self.sectors_per_cylinder = sectors_per_cylinder
        self.queue_depth = registry.histogram(
            "disk.queue_depth",
            "queue depth sampled at each submit").child(disk_name)
        self.seek_cylinders = registry.histogram(
            "disk.seek_cylinders",
            "actuator travel per serviced request").child(disk_name)
        self.service_time = registry.histogram(
            "disk.service_seconds",
            "mechanical service time per request").child(disk_name)
        self.requests = registry.counter(
            "disk.scheduled_requests",
            "requests serviced, by scheduler discipline").child(discipline)
        # pre-bound hot-path entry points (histogram ``observe`` is
        # already a bound ``list.append``): the instrumented server
        # variant calls these without per-request attribute chains
        self.observe_queue_depth = self.queue_depth.observe
        self.observe_seek = self.seek_cylinders.observe
        self.observe_service = self.service_time.observe


class Disk:
    """A disk drive as a simulation process.

    ``submit()`` enqueues an :class:`IORequest` and returns an event that
    fires when the device has finished transferring it.  The internal server
    process picks requests in scheduler order, advances the actuator, and
    charges seek + rotation + transfer time per the service model.

    ``obs`` takes a :class:`~repro.obs.registry.MetricsRegistry`; when
    enabled the device records queue-depth, seek-distance, and
    service-time histograms (children labeled by device name) and a
    per-scheduler-discipline request counter.
    """

    def __init__(self, sim: Simulator,
                 service: Optional[DiskServiceModel] = None,
                 scheduler=None,
                 rng: Optional[np.random.Generator] = None,
                 name: str = "hda",
                 cache=None,
                 media_error_rate: float = 0.0,
                 obs=None,
                 batch: bool = True):
        self.sim = sim
        self.service = service or DiskServiceModel()
        # geometry is fixed for the device's lifetime; submit() range-
        # checks every request against this
        self._total_sectors = self.service.geometry.total_sectors
        self.scheduler = scheduler if scheduler is not None else CLookScheduler()
        # the device is this stream's only consumer, so batching the
        # uniform draws (rotational latency + media-error check) keeps
        # the value sequence identical while amortising generator calls
        self.rng = BatchedDraws(
            rng if rng is not None else np.random.default_rng(0))
        self.name = name
        self._obs: Optional[_DiskInstruments] = None
        if obs is not None and getattr(obs, "enabled", False):
            self._obs = _DiskInstruments(
                obs, name, type(self.scheduler).__name__,
                sectors_per_cylinder=(
                    self.service.geometry.sectors_per_cylinder))
        #: optional on-drive segment cache (see repro.disk.cache)
        self.cache = cache
        if not (0.0 <= media_error_rate < 1.0):
            raise ValueError("media error rate must be in [0, 1)")
        #: per-request probability of a (soft) media error; the request
        #: takes full service time and completes with ``failed=True``
        self.media_error_rate = media_error_rate
        self.stats = DiskStats()
        self.head_cylinder = 0
        self._head_sector = 0
        self._in_service: Optional[IORequest] = None
        self._wakeup: Optional[Event] = None
        #: bumped on every submit; the batched server compares it against
        #: the value captured at drain time to detect that its claimed
        #: run went stale and must be handed back for re-ordering
        self._epoch = 0
        #: requests drained from the scheduler but not yet (in) service —
        #: still "waiting" as far as queue-depth accounting is concerned
        self._drained = 0
        # Construction-time specialization (the pattern of
        # ``Simulator._run_loop`` vs ``_run_loop_instr``): pick the server
        # variant once so the plain path pays zero instrumentation tests
        # per request.  Disciplines lacking the drain/requeue batch API
        # (third-party registry entries) get the scalar reference server.
        if batch and supports_batching(self.scheduler):
            server = (self._server_batched() if self._obs is None
                      else self._server_batched_obs())
        else:
            server = self._server()
        sim.process(server, name=f"disk:{name}")

    # -- public interface ------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Requests waiting or in service (the trace's *pending* count)."""
        return (len(self.scheduler) + self._drained
                + (1 if self._in_service is not None else 0))

    @property
    def total_sectors(self) -> int:
        return self._total_sectors

    def submit(self, request: IORequest) -> Event:
        """Queue ``request``; returns its completion event."""
        if request.last_sector >= self._total_sectors:
            raise ValueError(
                f"request [{request.sector}, {request.last_sector}] "
                f"beyond end of {self.name} ({self.total_sectors} sectors)")
        request.submit_time = self.sim.now
        request.done = self.sim.event()
        self.scheduler.add(request)
        self._epoch += 1
        # queue_depth, inlined (a property call per submit)
        depth = (len(self.scheduler) + self._drained
                 + (1 if self._in_service is not None else 0))
        if depth > self.stats.max_queue_depth:
            self.stats.max_queue_depth = depth
        if self._obs is not None:
            self._obs.observe_queue_depth(depth)
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()
        return request.done

    # -- checkpoint state surface ------------------------------------------
    def snapshot_state(self) -> dict:
        """Head position, counters, and RNG buffers of an *idle* device.

        Only a quiescent device (empty queue, nothing in service) can be
        captured: in-flight mechanical work is not data.  The settle
        protocol guarantees that; this guards it.
        """
        if len(self.scheduler) or self._drained or self._in_service:
            raise RuntimeError(
                f"disk {self.name} is not idle "
                f"(queue_depth={self.queue_depth})")
        s = self.stats
        return {
            "head_cylinder": self.head_cylinder,
            "head_sector": self._head_sector,
            "epoch": self._epoch,
            "rng": self.rng.snapshot_state(),
            "cache": (None if self.cache is None
                      else self.cache.snapshot_state()),
            "stats": {"reads": s.reads, "writes": s.writes,
                      "sectors_read": s.sectors_read,
                      "sectors_written": s.sectors_written,
                      "busy_time": s.busy_time,
                      "total_latency": s.total_latency,
                      "max_queue_depth": s.max_queue_depth,
                      "media_errors": s.media_errors,
                      "latencies": s._latencies.snapshot_state()},
        }

    def restore_state(self, state: dict) -> None:
        self.head_cylinder = int(state["head_cylinder"])
        self._head_sector = int(state["head_sector"])
        self._epoch = int(state["epoch"])
        self.rng.restore_state(state["rng"])
        if state["cache"] is not None:
            self.cache.restore_state(state["cache"])
        st = dict(state["stats"])
        lat = st.pop("latencies")
        self.stats = DiskStats(
            reads=int(st["reads"]), writes=int(st["writes"]),
            sectors_read=int(st["sectors_read"]),
            sectors_written=int(st["sectors_written"]),
            busy_time=float(st["busy_time"]),
            total_latency=float(st["total_latency"]),
            max_queue_depth=int(st["max_queue_depth"]),
            media_errors=int(st["media_errors"]))
        self.stats._latencies.restore_state(lat)

    # -- server process ----------------------------------------------------
    def _server(self):
        # Scalar reference server: one scheduler round-trip per request.
        # Kept verbatim as (a) the fallback for disciplines without the
        # drain/requeue batch API and (b) the behavioural definition the
        # batched variants are property-tested against (``batch=False``
        # forces it).
        sim = self.sim
        while True:
            request = self.scheduler.next(self._head_sector)
            if request is None:
                self._wakeup = sim.event()
                yield self._wakeup
                self._wakeup = None
                continue
            self._in_service = request
            obs = self._obs
            if obs is not None:
                target = request.sector // obs.sectors_per_cylinder
                obs.seek_cylinders.observe(abs(target - self.head_cylinder))
            duration = self._service_duration(request)
            if obs is not None:
                obs.service_time.observe(duration)
                obs.requests.value += 1
            yield sim.timeout(duration)
            self.head_cylinder = self.service.geometry.cylinder_of(
                request.last_sector)
            self._head_sector = request.last_sector
            request.complete_time = sim.now
            if (self.media_error_rate > 0.0
                    and float(self.rng.random()) < self.media_error_rate):
                request.failed = True
                self.stats.media_errors += 1
            self._account(request, duration)
            self._in_service = None
            request.done.succeed(request)

    def _server_batched(self):
        """Uninstrumented batched server: drain runs, vectorize, direct-fire.

        Per wakeup the server *claims* a run of requests via
        ``scheduler.drain`` and precomputes their seek/transfer terms in
        one numpy pass (``service_components``, head carry included).
        Rotational-latency and media-error draws stay scalar and lazy —
        they happen at each request's commit/completion point so the RNG
        stream consumes exactly as the scalar server's does even when a
        run is cut short.  A submission bumps ``_epoch``; the server
        compares epochs before committing each claimed request and hands
        any stale tail back through ``requeue`` so the discipline can
        re-order around the newcomer — the scalar server's semantics,
        which re-selects after every service.

        Completions are *direct-fired*: the previous request's done
        callbacks run from this frame at the instant the scalar path's
        queued done event would have fired (next commit, or the idle
        transition), skipping one event round-trip per request.  The
        ordering is unobservable because service durations are
        continuous random floats — nothing else is scheduled at that
        exact timestamp (engine-equivalence property tests guard this).
        """
        sim = self.sim
        scheduler = self.scheduler
        service = self.service
        spc = service.geometry.sectors_per_cylinder
        rotation = service.tables.rotation_time
        rng = self.rng
        stats = self.stats
        cache = self.cache
        lookahead = (cache is not None
                     and getattr(cache, "lookahead_sectors", 0) > 0)
        total_sectors = self.total_sectors
        merr = self.media_error_rate
        batch: list = ()
        base = transfer = None
        i = 0
        epoch = -1
        completed = None  # serviced request whose callbacks haven't run
        while True:
            if i >= len(batch) or epoch != self._epoch:
                if i < len(batch):
                    # the claimed run went stale: hand the tail back so
                    # the discipline re-orders around the new arrivals
                    scheduler.requeue(batch[i:])
                    self._drained -= len(batch) - i
                batch = ()
                i = 0
                if not len(scheduler):
                    wakeup = self._wakeup = sim.event()
                    if completed is not None:
                        request, completed = completed, None
                        self._fire_done(request)
                    yield wakeup
                    self._wakeup = None
                epoch = self._epoch
                batch = scheduler.drain(self._head_sector, DRAIN_LIMIT)
                self._drained += len(batch)
                if len(batch) >= _VECTOR_MIN:
                    base, transfer = service.service_components(
                        batch, self.head_cylinder)
                else:
                    base = None
            request = batch[i]
            self._drained -= 1
            self._in_service = request
            hit = False
            if cache is not None:
                if request.is_write:
                    cache.invalidate(request.sector, request.nsectors)
                elif cache.lookup(request.sector, request.nsectors):
                    hit = True
            if hit:
                duration = (service.controller_overhead
                            + service.transfer_time(request.nsectors))
            elif base is not None:
                duration = ((base[i] + float(rng.random()) * rotation)
                            + transfer[i])
            else:
                duration = service.service_time(request, self.head_cylinder,
                                                rng)
            if cache is not None and not hit and not request.is_write:
                cache.fill_after_read(request.sector, request.nsectors,
                                      disk_sectors=total_sectors)
                if lookahead:
                    duration += 0.5 * rotation
            i += 1
            timeout = sim.timeout(duration)
            if completed is not None:
                prior, completed = completed, None
                self._fire_done(prior)
            yield timeout
            last = request.last_sector
            # cylinder_of minus the bounds re-check (done at submit)
            self.head_cylinder = last // spc
            self._head_sector = last
            request.complete_time = sim.now
            if merr > 0.0 and float(rng.random()) < merr:
                request.failed = True
                stats.media_errors += 1
            self._account(request, duration)
            self._in_service = None
            completed = request

    def _server_batched_obs(self):
        """Instrumented batched server.

        Same drain/epoch/vectorize machinery as :meth:`_server_batched`,
        plus the per-request histogram observes through the instruments'
        pre-bound entry points.  Completions go through the normal
        ``done.succeed`` event (no direct fire): instrumented runs count
        processed events, and the queued event keeps those tallies — and
        the full event sequence — identical to the scalar server's.
        """
        sim = self.sim
        scheduler = self.scheduler
        service = self.service
        rotation = service.tables.rotation_time
        rng = self.rng
        stats = self.stats
        cache = self.cache
        lookahead = (cache is not None
                     and getattr(cache, "lookahead_sectors", 0) > 0)
        total_sectors = self.total_sectors
        merr = self.media_error_rate
        obs = self._obs
        spc = obs.sectors_per_cylinder
        observe_seek = obs.observe_seek
        observe_service = obs.observe_service
        requests_counter = obs.requests
        batch: list = ()
        base = transfer = None
        i = 0
        epoch = -1
        while True:
            if i >= len(batch) or epoch != self._epoch:
                if i < len(batch):
                    scheduler.requeue(batch[i:])
                    self._drained -= len(batch) - i
                batch = ()
                i = 0
                if not len(scheduler):
                    self._wakeup = sim.event()
                    yield self._wakeup
                    self._wakeup = None
                epoch = self._epoch
                batch = scheduler.drain(self._head_sector, DRAIN_LIMIT)
                self._drained += len(batch)
                if len(batch) >= _VECTOR_MIN:
                    base, transfer = service.service_components(
                        batch, self.head_cylinder)
                else:
                    base = None
            request = batch[i]
            self._drained -= 1
            self._in_service = request
            observe_seek(abs(request.sector // spc - self.head_cylinder))
            hit = False
            if cache is not None:
                if request.is_write:
                    cache.invalidate(request.sector, request.nsectors)
                elif cache.lookup(request.sector, request.nsectors):
                    hit = True
            if hit:
                duration = (service.controller_overhead
                            + service.transfer_time(request.nsectors))
            elif base is not None:
                duration = ((base[i] + float(rng.random()) * rotation)
                            + transfer[i])
            else:
                duration = service.service_time(request, self.head_cylinder,
                                                rng)
            if cache is not None and not hit and not request.is_write:
                cache.fill_after_read(request.sector, request.nsectors,
                                      disk_sectors=total_sectors)
                if lookahead:
                    duration += 0.5 * rotation
            observe_service(duration)
            requests_counter.value += 1
            i += 1
            yield sim.timeout(duration)
            last = request.last_sector
            self.head_cylinder = last // spc
            self._head_sector = last
            request.complete_time = sim.now
            if merr > 0.0 and float(rng.random()) < merr:
                request.failed = True
                stats.media_errors += 1
            self._account(request, duration)
            self._in_service = None
            request.done.succeed(request)

    def _fire_done(self, request: IORequest) -> None:
        """Run ``request``'s completion callbacks without a queue round-trip.

        Equivalent to ``done.succeed(request)`` followed by the engine
        popping and firing the event at the same timestamp — inlined
        here (mirroring :meth:`Event.succeed` + ``Event._fire``) because
        the batched server already stands at exactly the point in the
        event order where that pop would happen.
        """
        done = request.done
        done._ok = True
        done._value = request
        callbacks = done.callbacks
        done.callbacks = None
        for callback in callbacks:
            callback(done)
        done.processed = True

    def _service_duration(self, request: IORequest) -> float:
        """Mechanical service time, or electronic time on a drive-cache hit.

        Reads fully contained in the on-drive cache skip seek and
        rotation; misses fill a segment with look-ahead.  Writes are
        write-through and invalidate overlapping segments.
        """
        if self.cache is None:
            return self.service.service_time(request, self.head_cylinder,
                                             self.rng)
        if request.is_write:
            self.cache.invalidate(request.sector, request.nsectors)
            return self.service.service_time(request, self.head_cylinder,
                                             self.rng)
        if self.cache.lookup(request.sector, request.nsectors):
            return (self.service.controller_overhead
                    + self.service.transfer_time(request.nsectors))
        duration = self.service.service_time(request, self.head_cylinder,
                                             self.rng)
        self.cache.fill_after_read(request.sector, request.nsectors,
                                   disk_sectors=self.total_sectors)
        # the look-ahead rides the same rotation; charge half a revolution
        # (drives that read nothing ahead — e.g. NullDriveCache — don't pay)
        if getattr(self.cache, "lookahead_sectors", 0) > 0:
            duration += 0.5 * self.service.rotation_time
        return duration

    def _account(self, request: IORequest, duration: float) -> None:
        stats = self.stats
        if request.is_write:
            stats.writes += 1
            stats.sectors_written += request.nsectors
        else:
            stats.reads += 1
            stats.sectors_read += request.nsectors
        stats.busy_time += duration
        # request.latency, minus the property frames (complete_time is
        # always stamped just before accounting)
        latency = request.complete_time - request.submit_time
        stats.total_latency += latency
        stats._latencies.append(latency)
