"""The disk device: a single-actuator server draining a scheduled queue."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.disk.request import IORequest
from repro.disk.scheduler import CLookScheduler
from repro.disk.service import DiskServiceModel
from repro.sim import Event, Simulator


@dataclass
class DiskStats:
    """Lifetime counters of one disk device."""

    reads: int = 0
    writes: int = 0
    sectors_read: int = 0
    sectors_written: int = 0
    busy_time: float = 0.0
    total_latency: float = 0.0
    max_queue_depth: int = 0
    media_errors: int = 0
    _latencies: list = field(default_factory=list, repr=False)

    @property
    def requests(self) -> int:
        return self.reads + self.writes

    @property
    def mean_latency(self) -> float:
        return self.total_latency / self.requests if self.requests else 0.0

    def latency_percentile(self, q: float) -> float:
        if not self._latencies:
            return 0.0
        return float(np.percentile(self._latencies, q))


class _DiskInstruments:
    """Per-device observability instruments (built only when enabled)."""

    __slots__ = ("queue_depth", "seek_cylinders", "service_time",
                 "requests", "sectors_per_cylinder")

    def __init__(self, registry, disk_name: str, discipline: str,
                 sectors_per_cylinder: int = 1):
        #: cached geometry constant: the server derives the target
        #: cylinder with one floor division per serviced request
        #: (requests are range-checked at submit, so no re-validation)
        self.sectors_per_cylinder = sectors_per_cylinder
        self.queue_depth = registry.histogram(
            "disk.queue_depth",
            "queue depth sampled at each submit").child(disk_name)
        self.seek_cylinders = registry.histogram(
            "disk.seek_cylinders",
            "actuator travel per serviced request").child(disk_name)
        self.service_time = registry.histogram(
            "disk.service_seconds",
            "mechanical service time per request").child(disk_name)
        self.requests = registry.counter(
            "disk.scheduled_requests",
            "requests serviced, by scheduler discipline").child(discipline)


class Disk:
    """A disk drive as a simulation process.

    ``submit()`` enqueues an :class:`IORequest` and returns an event that
    fires when the device has finished transferring it.  The internal server
    process picks requests in scheduler order, advances the actuator, and
    charges seek + rotation + transfer time per the service model.

    ``obs`` takes a :class:`~repro.obs.registry.MetricsRegistry`; when
    enabled the device records queue-depth, seek-distance, and
    service-time histograms (children labeled by device name) and a
    per-scheduler-discipline request counter.
    """

    def __init__(self, sim: Simulator,
                 service: Optional[DiskServiceModel] = None,
                 scheduler=None,
                 rng: Optional[np.random.Generator] = None,
                 name: str = "hda",
                 cache=None,
                 media_error_rate: float = 0.0,
                 obs=None):
        self.sim = sim
        self.service = service or DiskServiceModel()
        self.scheduler = scheduler if scheduler is not None else CLookScheduler()
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.name = name
        self._obs: Optional[_DiskInstruments] = None
        if obs is not None and getattr(obs, "enabled", False):
            self._obs = _DiskInstruments(
                obs, name, type(self.scheduler).__name__,
                sectors_per_cylinder=(
                    self.service.geometry.sectors_per_cylinder))
        #: optional on-drive segment cache (see repro.disk.cache)
        self.cache = cache
        if not (0.0 <= media_error_rate < 1.0):
            raise ValueError("media error rate must be in [0, 1)")
        #: per-request probability of a (soft) media error; the request
        #: takes full service time and completes with ``failed=True``
        self.media_error_rate = media_error_rate
        self.stats = DiskStats()
        self.head_cylinder = 0
        self._head_sector = 0
        self._in_service: Optional[IORequest] = None
        self._wakeup: Optional[Event] = None
        sim.process(self._server(), name=f"disk:{name}")

    # -- public interface ------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Requests waiting or in service (the trace's *pending* count)."""
        return len(self.scheduler) + (1 if self._in_service is not None else 0)

    @property
    def total_sectors(self) -> int:
        return self.service.geometry.total_sectors

    def submit(self, request: IORequest) -> Event:
        """Queue ``request``; returns its completion event."""
        if request.last_sector >= self.total_sectors:
            raise ValueError(
                f"request [{request.sector}, {request.last_sector}] "
                f"beyond end of {self.name} ({self.total_sectors} sectors)")
        request.submit_time = self.sim.now
        request.done = self.sim.event()
        self.scheduler.add(request)
        depth = self.queue_depth
        if depth > self.stats.max_queue_depth:
            self.stats.max_queue_depth = depth
        if self._obs is not None:
            self._obs.queue_depth.observe(depth)
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()
        return request.done

    # -- server process ----------------------------------------------------
    def _server(self):
        sim = self.sim
        while True:
            request = self.scheduler.next(self._head_sector)
            if request is None:
                self._wakeup = sim.event()
                yield self._wakeup
                self._wakeup = None
                continue
            self._in_service = request
            obs = self._obs
            if obs is not None:
                target = request.sector // obs.sectors_per_cylinder
                obs.seek_cylinders.observe(abs(target - self.head_cylinder))
            duration = self._service_duration(request)
            if obs is not None:
                obs.service_time.observe(duration)
                obs.requests.value += 1
            yield sim.timeout(duration)
            self.head_cylinder = self.service.geometry.cylinder_of(
                request.last_sector)
            self._head_sector = request.last_sector
            request.complete_time = sim.now
            if (self.media_error_rate > 0.0
                    and float(self.rng.random()) < self.media_error_rate):
                request.failed = True
                self.stats.media_errors += 1
            self._account(request, duration)
            self._in_service = None
            request.done.succeed(request)

    def _service_duration(self, request: IORequest) -> float:
        """Mechanical service time, or electronic time on a drive-cache hit.

        Reads fully contained in the on-drive cache skip seek and
        rotation; misses fill a segment with look-ahead.  Writes are
        write-through and invalidate overlapping segments.
        """
        if self.cache is None:
            return self.service.service_time(request, self.head_cylinder,
                                             self.rng)
        if request.is_write:
            self.cache.invalidate(request.sector, request.nsectors)
            return self.service.service_time(request, self.head_cylinder,
                                             self.rng)
        if self.cache.lookup(request.sector, request.nsectors):
            return (self.service.controller_overhead
                    + self.service.transfer_time(request.nsectors))
        duration = self.service.service_time(request, self.head_cylinder,
                                             self.rng)
        self.cache.fill_after_read(request.sector, request.nsectors,
                                   disk_sectors=self.total_sectors)
        # the look-ahead rides the same rotation; charge half a revolution
        duration += 0.5 * self.service.rotation_time
        return duration

    def _account(self, request: IORequest, duration: float) -> None:
        stats = self.stats
        if request.is_write:
            stats.writes += 1
            stats.sectors_written += request.nsectors
        else:
            stats.reads += 1
            stats.sectors_read += request.nsectors
        stats.busy_time += duration
        stats.total_latency += request.latency
        stats._latencies.append(request.latency)
