"""The disk device: a single-actuator server draining a scheduled queue."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.disk.request import IORequest
from repro.disk.scheduler import CLookScheduler
from repro.disk.service import DiskServiceModel
from repro.sim import BatchedDraws, Event, Simulator


class LatencyReservoir:
    """Bounded uniform sample of request latencies (Algorithm R).

    A device that lives for a long run sees millions of requests; the
    reservoir keeps a fixed-size uniform sample so percentile queries
    stay accurate (exact below ``capacity`` observations, statistically
    tight above) while memory stays constant.  The replacement stream is
    seeded deterministically so runs remain reproducible.
    """

    __slots__ = ("capacity", "count", "_values", "_rng")

    def __init__(self, capacity: int = 8192, seed: int = 0x10DE):
        if capacity < 1:
            raise ValueError("reservoir capacity must be >= 1")
        self.capacity = capacity
        #: total observations offered (not just those retained)
        self.count = 0
        self._values: list = []
        self._rng = random.Random(seed)

    def append(self, value: float) -> None:
        self.count += 1
        if len(self._values) < self.capacity:
            self._values.append(value)
            return
        j = self._rng.randrange(self.count)
        if j < self.capacity:
            self._values[j] = value

    def percentile(self, q: float) -> float:
        if not self._values:
            return 0.0
        return float(np.percentile(self._values, q))

    # list-like views, so existing callers can np.array() the sample
    def __len__(self) -> int:
        return len(self._values)

    def __getitem__(self, index):
        return self._values[index]

    def __iter__(self):
        return iter(self._values)


@dataclass
class DiskStats:
    """Lifetime counters of one disk device.

    Latencies are sampled into a bounded :class:`LatencyReservoir`
    (``_latencies``) rather than appended to an ever-growing list, so a
    device's memory footprint is constant no matter how long it runs;
    ``total_latency``/``mean_latency`` remain exact sums.
    """

    reads: int = 0
    writes: int = 0
    sectors_read: int = 0
    sectors_written: int = 0
    busy_time: float = 0.0
    total_latency: float = 0.0
    max_queue_depth: int = 0
    media_errors: int = 0
    _latencies: LatencyReservoir = field(default_factory=LatencyReservoir,
                                         repr=False)

    @property
    def requests(self) -> int:
        return self.reads + self.writes

    @property
    def mean_latency(self) -> float:
        return self.total_latency / self.requests if self.requests else 0.0

    def latency_percentile(self, q: float) -> float:
        return self._latencies.percentile(q)


class _DiskInstruments:
    """Per-device observability instruments (built only when enabled)."""

    __slots__ = ("queue_depth", "seek_cylinders", "service_time",
                 "requests", "sectors_per_cylinder")

    def __init__(self, registry, disk_name: str, discipline: str,
                 sectors_per_cylinder: int = 1):
        #: cached geometry constant: the server derives the target
        #: cylinder with one floor division per serviced request
        #: (requests are range-checked at submit, so no re-validation)
        self.sectors_per_cylinder = sectors_per_cylinder
        self.queue_depth = registry.histogram(
            "disk.queue_depth",
            "queue depth sampled at each submit").child(disk_name)
        self.seek_cylinders = registry.histogram(
            "disk.seek_cylinders",
            "actuator travel per serviced request").child(disk_name)
        self.service_time = registry.histogram(
            "disk.service_seconds",
            "mechanical service time per request").child(disk_name)
        self.requests = registry.counter(
            "disk.scheduled_requests",
            "requests serviced, by scheduler discipline").child(discipline)


class Disk:
    """A disk drive as a simulation process.

    ``submit()`` enqueues an :class:`IORequest` and returns an event that
    fires when the device has finished transferring it.  The internal server
    process picks requests in scheduler order, advances the actuator, and
    charges seek + rotation + transfer time per the service model.

    ``obs`` takes a :class:`~repro.obs.registry.MetricsRegistry`; when
    enabled the device records queue-depth, seek-distance, and
    service-time histograms (children labeled by device name) and a
    per-scheduler-discipline request counter.
    """

    def __init__(self, sim: Simulator,
                 service: Optional[DiskServiceModel] = None,
                 scheduler=None,
                 rng: Optional[np.random.Generator] = None,
                 name: str = "hda",
                 cache=None,
                 media_error_rate: float = 0.0,
                 obs=None):
        self.sim = sim
        self.service = service or DiskServiceModel()
        self.scheduler = scheduler if scheduler is not None else CLookScheduler()
        # the device is this stream's only consumer, so batching the
        # uniform draws (rotational latency + media-error check) keeps
        # the value sequence identical while amortising generator calls
        self.rng = BatchedDraws(
            rng if rng is not None else np.random.default_rng(0))
        self.name = name
        self._obs: Optional[_DiskInstruments] = None
        if obs is not None and getattr(obs, "enabled", False):
            self._obs = _DiskInstruments(
                obs, name, type(self.scheduler).__name__,
                sectors_per_cylinder=(
                    self.service.geometry.sectors_per_cylinder))
        #: optional on-drive segment cache (see repro.disk.cache)
        self.cache = cache
        if not (0.0 <= media_error_rate < 1.0):
            raise ValueError("media error rate must be in [0, 1)")
        #: per-request probability of a (soft) media error; the request
        #: takes full service time and completes with ``failed=True``
        self.media_error_rate = media_error_rate
        self.stats = DiskStats()
        self.head_cylinder = 0
        self._head_sector = 0
        self._in_service: Optional[IORequest] = None
        self._wakeup: Optional[Event] = None
        sim.process(self._server(), name=f"disk:{name}")

    # -- public interface ------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Requests waiting or in service (the trace's *pending* count)."""
        return len(self.scheduler) + (1 if self._in_service is not None else 0)

    @property
    def total_sectors(self) -> int:
        return self.service.geometry.total_sectors

    def submit(self, request: IORequest) -> Event:
        """Queue ``request``; returns its completion event."""
        if request.last_sector >= self.total_sectors:
            raise ValueError(
                f"request [{request.sector}, {request.last_sector}] "
                f"beyond end of {self.name} ({self.total_sectors} sectors)")
        request.submit_time = self.sim.now
        request.done = self.sim.event()
        self.scheduler.add(request)
        depth = self.queue_depth
        if depth > self.stats.max_queue_depth:
            self.stats.max_queue_depth = depth
        if self._obs is not None:
            self._obs.queue_depth.observe(depth)
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()
        return request.done

    # -- server process ----------------------------------------------------
    def _server(self):
        sim = self.sim
        while True:
            request = self.scheduler.next(self._head_sector)
            if request is None:
                self._wakeup = sim.event()
                yield self._wakeup
                self._wakeup = None
                continue
            self._in_service = request
            obs = self._obs
            if obs is not None:
                target = request.sector // obs.sectors_per_cylinder
                obs.seek_cylinders.observe(abs(target - self.head_cylinder))
            duration = self._service_duration(request)
            if obs is not None:
                obs.service_time.observe(duration)
                obs.requests.value += 1
            yield sim.timeout(duration)
            self.head_cylinder = self.service.geometry.cylinder_of(
                request.last_sector)
            self._head_sector = request.last_sector
            request.complete_time = sim.now
            if (self.media_error_rate > 0.0
                    and float(self.rng.random()) < self.media_error_rate):
                request.failed = True
                self.stats.media_errors += 1
            self._account(request, duration)
            self._in_service = None
            request.done.succeed(request)

    def _service_duration(self, request: IORequest) -> float:
        """Mechanical service time, or electronic time on a drive-cache hit.

        Reads fully contained in the on-drive cache skip seek and
        rotation; misses fill a segment with look-ahead.  Writes are
        write-through and invalidate overlapping segments.
        """
        if self.cache is None:
            return self.service.service_time(request, self.head_cylinder,
                                             self.rng)
        if request.is_write:
            self.cache.invalidate(request.sector, request.nsectors)
            return self.service.service_time(request, self.head_cylinder,
                                             self.rng)
        if self.cache.lookup(request.sector, request.nsectors):
            return (self.service.controller_overhead
                    + self.service.transfer_time(request.nsectors))
        duration = self.service.service_time(request, self.head_cylinder,
                                             self.rng)
        self.cache.fill_after_read(request.sector, request.nsectors,
                                   disk_sectors=self.total_sectors)
        # the look-ahead rides the same rotation; charge half a revolution
        # (drives that read nothing ahead — e.g. NullDriveCache — don't pay)
        if getattr(self.cache, "lookahead_sectors", 0) > 0:
            duration += 0.5 * self.service.rotation_time
        return duration

    def _account(self, request: IORequest, duration: float) -> None:
        stats = self.stats
        if request.is_write:
            stats.writes += 1
            stats.sectors_written += request.nsectors
        else:
            stats.reads += 1
            stats.sectors_read += request.nsectors
        stats.busy_time += duration
        stats.total_latency += request.latency
        stats._latencies.append(request.latency)
