"""Mechanical service-time model for a mid-1990s IDE drive.

Service time = seek + rotational latency + media transfer + fixed controller
overhead.  The seek curve is the standard piecewise model: a short-seek
square-root region blending into a linear long-seek region, calibrated so
that the average random seek matches the nominal figure (~14 ms for the
drives in the Beowulf nodes).

The per-request arithmetic is table-driven: a :class:`_ServiceTables`
pair of numpy lookup tables (seek time by cylinder distance, media data
rate by cylinder) is built lazily once per model and cached on the frozen
dataclass, so the hot :meth:`DiskServiceModel.service_time` path is two
array indexes and three adds instead of a sqrt, a branch, and a zone
interpolation per request.  Table entries are built with the same
operation order as the scalar formulas, so results are bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.disk.geometry import DiskGeometry
from repro.disk.request import IORequest


class _ServiceTables:
    """Precomputed per-model lookup tables (built once, ~16 KB each).

    ``seek[d]`` is the seek time for a ``d``-cylinder move (``seek[0] ==
    0.0``); ``rate[c]`` is the media byte rate at cylinder ``c`` (varies
    per cylinder under zoned-bit recording, constant otherwise).
    """

    __slots__ = ("seek", "rate", "seek_scalar", "rate_scalar",
                 "rotation_time", "sectors_per_cylinder")

    def __init__(self, model: "DiskServiceModel"):
        geo = model.geometry
        rot = model.rotation_time
        # same association as the scalar formula: settle + coeff*sqrt(d)
        # + coeff*d, elementwise — keeps lookups bit-identical to it
        d = np.arange(geo.cylinders, dtype=np.float64)
        seek = (model.seek_settle
                + model.seek_sqrt_coeff * np.sqrt(d)
                + model.seek_linear_coeff * d)
        seek[0] = 0.0
        self.seek = seek
        self.rate = geo.sectors_per_track_table() * 512 / rot
        # plain-list mirrors for the scalar path: indexing a Python list
        # yields a Python float, keeping the per-request arithmetic off
        # numpy's scalar ufunc dispatch (same IEEE doubles either way)
        self.seek_scalar = seek.tolist()
        self.rate_scalar = self.rate.tolist()
        self.rotation_time = rot
        self.sectors_per_cylinder = geo.sectors_per_cylinder


@dataclass(frozen=True)
class DiskServiceModel:
    """Timing parameters (seconds) of the drive mechanics.

    Defaults approximate a 500 MB consumer IDE drive ca. 1994-95:
    4500 RPM spindle, ~14 ms average seek, ~1 ms controller overhead.
    """

    geometry: DiskGeometry = DiskGeometry()
    rpm: float = 4500.0
    #: head settle time even for a 1-cylinder seek
    seek_settle: float = 0.003
    #: coefficient of the sqrt(distance) short-seek term
    seek_sqrt_coeff: float = 0.0005
    #: coefficient of the linear long-seek term
    seek_linear_coeff: float = 0.00002
    #: fixed per-request controller/command overhead
    controller_overhead: float = 0.001

    @property
    def rotation_time(self) -> float:
        """Seconds per revolution."""
        return 60.0 / self.rpm

    @property
    def tables(self) -> _ServiceTables:
        """The model's lookup tables, built on first use and cached.

        The cache rides the instance via ``object.__setattr__`` (the
        dataclass is frozen); it is invisible to ``==``/``hash``/``repr``,
        which consider declared fields only.
        """
        tables = getattr(self, "_tables", None)
        if tables is None:
            tables = _ServiceTables(self)
            object.__setattr__(self, "_tables", tables)
        return tables

    @property
    def track_transfer_rate(self) -> float:
        """Bytes per second off the media."""
        track_bytes = self.geometry.sectors_per_track * 512
        return track_bytes / self.rotation_time

    def seek_time(self, from_cyl: int, to_cyl: int) -> float:
        """Seek duration between two cylinders (0 when already there)."""
        distance = abs(to_cyl - from_cyl)
        tables = self.tables
        if distance < len(tables.seek):
            return tables.seek[distance]
        # beyond the platter span (callers passing synthetic distances):
        # same curve, computed directly
        return (self.seek_settle
                + self.seek_sqrt_coeff * np.sqrt(distance)
                + self.seek_linear_coeff * distance)

    def rotational_latency(self, rng: np.random.Generator) -> float:
        """Uniform 0..1 revolution wait for the target sector."""
        return float(rng.random()) * self.rotation_time

    def transfer_time(self, nsectors: int) -> float:
        """Media transfer duration for ``nsectors`` contiguous sectors."""
        if nsectors < 1:
            raise ValueError("nsectors must be >= 1")
        return nsectors * 512 / self.track_transfer_rate

    def transfer_time_at(self, nsectors: int, cylinder: int) -> float:
        """Transfer duration at a specific cylinder.

        With zoned-bit-recording geometry outer cylinders move more
        sectors per revolution, so data rate varies with position; plain
        geometry reduces to :meth:`transfer_time`.
        """
        if nsectors < 1:
            raise ValueError("nsectors must be >= 1")
        if not (0 <= cylinder < self.geometry.cylinders):
            raise ValueError(f"cylinder {cylinder} out of range")
        return nsectors * 512 / self.tables.rate[cylinder]

    def service_time(self, request: IORequest, head_cylinder: int,
                     rng) -> float:
        """Total time for the device to service ``request``.

        ``head_cylinder`` is where the actuator currently sits; callers
        track it across requests so that elevator scheduling actually
        shortens seeks.  The hot path: two table lookups, one uniform
        draw, no sqrt/branches (requests are range-checked at submit).
        ``rng`` is anything with a scalar ``random()`` —
        a :class:`numpy.random.Generator` or a batching wrapper like
        :class:`repro.sim.rng.BatchedDraws`.
        """
        tables = self.tables
        target = request.sector // tables.sectors_per_cylinder
        # summed in the fixed order controller + seek + rotation +
        # transfer; reordering would change the float rounding
        return (self.controller_overhead
                + tables.seek_scalar[abs(target - head_cylinder)]
                + float(rng.random()) * tables.rotation_time
                + request.nsectors * 512 / tables.rate_scalar[target])

    def service_components(self, requests, head_cylinder: int):
        """Vectorized seek/transfer components for a run of requests.

        Returns ``(base, transfer)`` numpy arrays where ``base[i]`` is
        controller overhead plus seek time and ``transfer[i]`` the media
        transfer time of ``requests[i]``.  The head position *carries*
        through the run: request ``i`` seeks from where request ``i-1``
        ends (``head_cylinder`` seeds the first), the same invariant the
        device maintains when servicing one request at a time.  Each
        element uses the identical table lookups and operation order as
        :meth:`service_time`, so ``(base[i] + rotation) + transfer[i]``
        reproduces the scalar result bit-for-bit.
        """
        tables = self.tables
        n = len(requests)
        if n == 0:
            empty = np.empty(0, dtype=np.float64)
            return empty, empty
        spc = tables.sectors_per_cylinder
        sectors = np.fromiter((r.sector for r in requests),
                              dtype=np.int64, count=n)
        nsectors = np.fromiter((r.nsectors for r in requests),
                               dtype=np.int64, count=n)
        targets = sectors // spc
        heads = np.empty(n, dtype=np.int64)
        heads[0] = head_cylinder
        if n > 1:
            # cylinder holding each predecessor's last sector
            heads[1:] = (sectors[:-1] + nsectors[:-1] - 1) // spc
        base = self.controller_overhead + tables.seek[np.abs(targets - heads)]
        transfer = nsectors * 512 / tables.rate[targets]
        return base, transfer

    def service_durations(self, requests, head_cylinder: int, rng):
        """Service times for requests serviced back-to-back, in one call.

        The batched counterpart of :meth:`service_time`: seek and
        transfer terms come from :meth:`service_components` in one
        vectorized pass; the rotational-latency draws stay scalar and
        *in service order* so the RNG stream consumes exactly as the
        per-request path would (the draws are the only stateful part).
        Returns a float64 array, bit-identical element-wise to ``n``
        sequential ``service_time`` calls with head carry.
        """
        base, transfer = self.service_components(requests, head_cylinder)
        rotation = self.tables.rotation_time
        for i in range(len(base)):
            base[i] = (base[i] + float(rng.random()) * rotation) + transfer[i]
        return base

    def average_random_seek(self) -> float:
        """Expected seek over uniformly random cylinder pairs (sanity aid).

        For X, Y uniform on [0, C): E|X-Y| = C/3 feeds the linear term,
        but the sqrt term needs E[sqrt|X-Y|] = (8/15)*sqrt(C) — applying
        sqrt to the *mean* distance would overstate it by ~8% (Jensen's
        inequality: sqrt is concave, so E[sqrt(D)] < sqrt(E[D])).
        """
        c = self.geometry.cylinders
        return (self.seek_settle
                + self.seek_sqrt_coeff * (8.0 / 15.0) * np.sqrt(c)
                + self.seek_linear_coeff * (c / 3.0))
