"""Mechanical service-time model for a mid-1990s IDE drive.

Service time = seek + rotational latency + media transfer + fixed controller
overhead.  The seek curve is the standard piecewise model: a short-seek
square-root region blending into a linear long-seek region, calibrated so
that the average random seek matches the nominal figure (~14 ms for the
drives in the Beowulf nodes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.disk.geometry import DiskGeometry
from repro.disk.request import IORequest


@dataclass(frozen=True)
class DiskServiceModel:
    """Timing parameters (seconds) of the drive mechanics.

    Defaults approximate a 500 MB consumer IDE drive ca. 1994-95:
    4500 RPM spindle, ~14 ms average seek, ~1 ms controller overhead.
    """

    geometry: DiskGeometry = DiskGeometry()
    rpm: float = 4500.0
    #: head settle time even for a 1-cylinder seek
    seek_settle: float = 0.003
    #: coefficient of the sqrt(distance) short-seek term
    seek_sqrt_coeff: float = 0.0005
    #: coefficient of the linear long-seek term
    seek_linear_coeff: float = 0.00002
    #: fixed per-request controller/command overhead
    controller_overhead: float = 0.001

    @property
    def rotation_time(self) -> float:
        """Seconds per revolution."""
        return 60.0 / self.rpm

    @property
    def track_transfer_rate(self) -> float:
        """Bytes per second off the media."""
        track_bytes = self.geometry.sectors_per_track * 512
        return track_bytes / self.rotation_time

    def seek_time(self, from_cyl: int, to_cyl: int) -> float:
        """Seek duration between two cylinders (0 when already there)."""
        distance = abs(to_cyl - from_cyl)
        if distance == 0:
            return 0.0
        return (self.seek_settle
                + self.seek_sqrt_coeff * np.sqrt(distance)
                + self.seek_linear_coeff * distance)

    def rotational_latency(self, rng: np.random.Generator) -> float:
        """Uniform 0..1 revolution wait for the target sector."""
        return float(rng.random()) * self.rotation_time

    def transfer_time(self, nsectors: int) -> float:
        """Media transfer duration for ``nsectors`` contiguous sectors."""
        if nsectors < 1:
            raise ValueError("nsectors must be >= 1")
        return nsectors * 512 / self.track_transfer_rate

    def transfer_time_at(self, nsectors: int, cylinder: int) -> float:
        """Transfer duration at a specific cylinder.

        With zoned-bit-recording geometry outer cylinders move more
        sectors per revolution, so data rate varies with position; plain
        geometry reduces to :meth:`transfer_time`.
        """
        if nsectors < 1:
            raise ValueError("nsectors must be >= 1")
        spt = self.geometry.sectors_per_track_at(cylinder)
        rate = spt * 512 / self.rotation_time
        return nsectors * 512 / rate

    def service_time(self, request: IORequest, head_cylinder: int,
                     rng: np.random.Generator) -> float:
        """Total time for the device to service ``request``.

        ``head_cylinder`` is where the actuator currently sits; callers
        track it across requests so that elevator scheduling actually
        shortens seeks.
        """
        target = self.geometry.cylinder_of(request.sector)
        return (self.controller_overhead
                + self.seek_time(head_cylinder, target)
                + self.rotational_latency(rng)
                + self.transfer_time_at(request.nsectors, target))

    def average_random_seek(self) -> float:
        """Expected seek over uniformly random cylinder pairs (sanity aid)."""
        # E|X-Y| for X,Y uniform on [0, C) is C/3.
        c = self.geometry.cylinders
        mean_distance = c / 3.0
        return (self.seek_settle
                + self.seek_sqrt_coeff * np.sqrt(mean_distance)
                + self.seek_linear_coeff * mean_distance)
