"""The unit of work a disk sees: a contiguous sector-range read or write."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.disk.geometry import SECTOR_BYTES


@dataclass(slots=True)
class IORequest:
    """A physical disk request for ``nsectors`` starting at ``sector``.

    This is what the instrumented driver ultimately logs: one IORequest
    produces one trace record, exactly as one request to the IDE driver's
    read/write handler produced one entry in the paper's traces.

    The class carries ``__slots__``: requests are the most-allocated
    object in a simulation, and slot storage makes both construction and
    the scheduler/device field accesses measurably cheaper.
    """

    sector: int
    nsectors: int
    is_write: bool
    #: simulated time the request was handed to the driver
    submit_time: float = 0.0
    #: time the device finished servicing it (set by the disk)
    complete_time: Optional[float] = None
    #: opaque tag for upper layers (buffer cache, VM, app id, ...)
    origin: Any = None
    #: completion event, attached by the device when accepted
    done: Any = field(default=None, repr=False)
    #: set by the device when the transfer failed (media error); the
    #: request still completes (the drive reports the error after trying)
    failed: bool = False
    #: arrival stamp set by the queue discipline; schedulers use it to
    #: restore arrival order when a drained batch is handed back
    seq: int = field(default=0, repr=False, compare=False)

    def __post_init__(self):
        if self.sector < 0:
            raise ValueError(f"negative sector {self.sector}")
        if self.nsectors < 1:
            raise ValueError(f"request must cover >= 1 sector, got {self.nsectors}")

    @property
    def nbytes(self) -> int:
        return self.nsectors * SECTOR_BYTES

    @property
    def size_kb(self) -> float:
        return self.nbytes / 1024.0

    @property
    def last_sector(self) -> int:
        return self.sector + self.nsectors - 1

    @property
    def latency(self) -> float:
        """Queue + service time, available once completed."""
        if self.complete_time is None:
            raise ValueError("request not yet complete")
        return self.complete_time - self.submit_time
