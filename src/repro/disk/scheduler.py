"""Request-queue disciplines for the disk device.

Linux of the study's era sorted its per-device request queue in an elevator
order; :class:`CLookScheduler` models that.  FIFO and SSTF are provided for
ablation experiments (how much does queue ordering matter for the observed
latencies?).

Every discipline registers itself in :data:`SCHEDULERS`, so scenario
files and the replay/sweep machinery select disciplines by name
(``"clook"``, ``"fifo"``, ``"sstf"``, ``"scan"``); third-party
disciplines plug in via ``SCHEDULERS.register``.

Batch draining
--------------

The device drains *runs* of requests per server wakeup instead of one
``next()`` round-trip each.  The contract, shared by every built-in
discipline:

* ``drain(head_sector, limit)`` pops up to ``limit`` requests, exactly
  the sequence that ``limit`` successive ``next()`` calls would return
  with the head advancing to each popped request's ``last_sector``
  (the head-carry invariant — :func:`drain_via_next` is the executable
  definition and the reference the property tests compare against);
* ``requeue(requests)`` hands back an unserviced *suffix* of the most
  recent drain (a new submission invalidated the claimed run), restoring
  each request's arrival position so tie-breaks replay identically.

Third-party disciplines that implement only ``add``/``next``/``__len__``
keep working: the device checks the registry object for the batch
methods (:func:`supports_batching`) and falls back to the scalar
one-request-per-wakeup server.
"""

from __future__ import annotations

from collections import deque
from operator import attrgetter
from typing import Deque, List, Optional

from repro.disk.request import IORequest
from repro.registry import Registry

#: plugin registry of queue disciplines; factories take no arguments
SCHEDULERS = Registry("disk scheduler")

#: arrival-order sort key used by ``requeue`` implementations
_ARRIVAL = attrgetter("seq")
#: elevator sweep key: sector order, arrival order among equals
_SECTOR_ARRIVAL = attrgetter("sector", "seq")


def drain_via_next(scheduler, head_sector: int, limit: int) -> List[IORequest]:
    """Reference drain: ``limit`` successive ``next()`` pops with head carry.

    Any discipline's ``drain`` must return exactly this sequence.  Kept
    as a module-level helper so disciplines whose selection rule has no
    cheaper closed form (SSTF's greedy choice depends on every prior
    pop) can delegate to it, and so tests can compare optimised drains
    against the scalar definition.
    """
    batch: List[IORequest] = []
    while len(batch) < limit:
        request = scheduler.next(head_sector)
        if request is None:
            break
        batch.append(request)
        head_sector = request.last_sector
    return batch


def supports_batching(scheduler) -> bool:
    """True when ``scheduler`` implements the drain/requeue batch API."""
    return (callable(getattr(scheduler, "drain", None))
            and callable(getattr(scheduler, "requeue", None)))


@SCHEDULERS.register("fifo")
class FIFOScheduler:
    """Serve requests strictly in arrival order."""

    def __init__(self):
        self._queue: Deque[IORequest] = deque()
        self._seq = 0

    def __len__(self) -> int:
        return len(self._queue)

    def add(self, request: IORequest) -> None:
        request.seq = self._seq
        self._seq += 1
        self._queue.append(request)

    def next(self, head_sector: int) -> Optional[IORequest]:
        return self._queue.popleft() if self._queue else None

    def drain(self, head_sector: int, limit: int) -> List[IORequest]:
        queue = self._queue
        if len(queue) <= limit:
            batch = list(queue)
            queue.clear()
            return batch
        return [queue.popleft() for _ in range(limit)]

    def requeue(self, requests: List[IORequest]) -> None:
        self._queue.extendleft(reversed(requests))

    def pending(self) -> List[IORequest]:
        return list(self._queue)


@SCHEDULERS.register("sstf")
class SSTFScheduler:
    """Shortest-seek-time-first: greedy nearest-sector selection.

    Classic starvation-prone discipline; included as a baseline for the
    scheduling ablation.
    """

    def __init__(self):
        self._queue: List[IORequest] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._queue)

    def add(self, request: IORequest) -> None:
        request.seq = self._seq
        self._seq += 1
        self._queue.append(request)

    def next(self, head_sector: int) -> Optional[IORequest]:
        if not self._queue:
            return None
        best = min(range(len(self._queue)),
                   key=lambda i: abs(self._queue[i].sector - head_sector))
        return self._queue.pop(best)

    def drain(self, head_sector: int, limit: int) -> List[IORequest]:
        if len(self._queue) == 1 and limit >= 1:
            # sole request: the greedy choice regardless of head
            return [self._queue.pop()]
        # each greedy choice depends on the previous pop's end position,
        # so the reference loop *is* the algorithm
        return drain_via_next(self, head_sector, limit)

    def requeue(self, requests: List[IORequest]) -> None:
        self._queue.extend(requests)
        self._queue.sort(key=_ARRIVAL)

    def pending(self) -> List[IORequest]:
        return list(self._queue)


@SCHEDULERS.register("scan")
class ScanScheduler:
    """Bidirectional LOOK (the textbook "elevator"): sweep up, then down.

    Kept distinct from C-LOOK for scheduling ablations; SCAN trades
    C-LOOK's fairness for slightly shorter travel on some workloads.
    """

    def __init__(self):
        self._queue: List[IORequest] = []
        self._seq = 0
        self._direction_up = True
        # sweep direction before/after each pop of the latest drain, so
        # requeue can roll the elevator back to the serviced prefix
        self._drain_directions: List[bool] = [True]

    def __len__(self) -> int:
        return len(self._queue)

    def add(self, request: IORequest) -> None:
        request.seq = self._seq
        self._seq += 1
        self._queue.append(request)

    def next(self, head_sector: int) -> Optional[IORequest]:
        if not self._queue:
            return None
        for _ in range(2):
            if self._direction_up:
                ahead = [i for i, r in enumerate(self._queue)
                         if r.sector >= head_sector]
                if ahead:
                    best = min(ahead, key=lambda i: self._queue[i].sector)
                    return self._queue.pop(best)
            else:
                behind = [i for i, r in enumerate(self._queue)
                          if r.sector <= head_sector]
                if behind:
                    best = max(behind, key=lambda i: self._queue[i].sector)
                    return self._queue.pop(best)
            self._direction_up = not self._direction_up
        return self._queue.pop(0)  # pragma: no cover - unreachable

    def drain(self, head_sector: int, limit: int) -> List[IORequest]:
        directions = [self._direction_up]
        batch: List[IORequest] = []
        while len(batch) < limit:
            request = self.next(head_sector)
            if request is None:
                break
            batch.append(request)
            directions.append(self._direction_up)
            head_sector = request.last_sector
        self._drain_directions = directions
        return batch

    def requeue(self, requests: List[IORequest]) -> None:
        if not requests:
            return
        directions = self._drain_directions
        # direction state as it stood after the last *serviced* pop
        self._direction_up = directions[len(directions) - 1 - len(requests)]
        self._queue.extend(requests)
        self._queue.sort(key=_ARRIVAL)

    def pending(self) -> List[IORequest]:
        return list(self._queue)


@SCHEDULERS.register("clook")
class CLookScheduler:
    """Circular LOOK elevator: sweep upward, then jump to the lowest waiter.

    This is the behaviour of the Linux 1.x single-direction elevator and
    gives each request bounded waiting (no SSTF starvation).
    """

    def __init__(self):
        self._queue: List[IORequest] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._queue)

    def add(self, request: IORequest) -> None:
        request.seq = self._seq
        self._seq += 1
        self._queue.append(request)

    def next(self, head_sector: int) -> Optional[IORequest]:
        if not self._queue:
            return None
        ahead = [i for i, r in enumerate(self._queue)
                 if r.sector >= head_sector]
        if ahead:
            best = min(ahead, key=lambda i: self._queue[i].sector)
        else:
            # Wrap: start a new sweep from the lowest pending sector.
            best = min(range(len(self._queue)),
                       key=lambda i: self._queue[i].sector)
        return self._queue.pop(best)

    def drain(self, head_sector: int, limit: int) -> List[IORequest]:
        """One sorted sweep instead of ``limit`` O(n) selection scans.

        Within an upward sweep the head position only grows, so a single
        left-to-right pass over the ``(sector, arrival)``-sorted queue
        pops exactly what successive ``next()`` calls would: the first
        not-yet-taken request at or beyond the head.  Requests passed
        over (their sector fell inside a predecessor's span) wait for a
        later pass; when a pass makes no progress the elevator wraps to
        the lowest pending sector, exactly as ``next()`` does.
        """
        queue = self._queue
        if len(queue) == 1 and limit >= 1:
            # depth-1 queue — the overwhelmingly common case under a
            # quiescent load: the sweep (and ``next``) can only pick the
            # sole request, so skip the selection scan outright
            return [queue.pop()]
        if len(queue) <= 1 or limit <= 1:
            return drain_via_next(self, head_sector, limit)
        order = sorted(queue, key=_SECTOR_ARRIVAL)
        batch: List[IORequest] = []
        head = head_sector
        while order and len(batch) < limit:
            rest: List[IORequest] = []
            for request in order:
                if len(batch) < limit and request.sector >= head:
                    batch.append(request)
                    head = request.last_sector
                else:
                    rest.append(request)
            if len(rest) == len(order) and len(batch) < limit:
                # wrap: the lowest pending sector starts the next sweep
                request = rest.pop(0)
                batch.append(request)
                head = request.last_sector
            order = rest
        if batch:
            popped = set(map(id, batch))
            self._queue = [r for r in queue if id(r) not in popped]
        return batch

    def requeue(self, requests: List[IORequest]) -> None:
        self._queue.extend(requests)
        self._queue.sort(key=_ARRIVAL)

    def pending(self) -> List[IORequest]:
        return list(self._queue)
