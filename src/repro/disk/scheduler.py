"""Request-queue disciplines for the disk device.

Linux of the study's era sorted its per-device request queue in an elevator
order; :class:`CLookScheduler` models that.  FIFO and SSTF are provided for
ablation experiments (how much does queue ordering matter for the observed
latencies?).

Every discipline registers itself in :data:`SCHEDULERS`, so scenario
files and the replay/sweep machinery select disciplines by name
(``"clook"``, ``"fifo"``, ``"sstf"``, ``"scan"``); third-party
disciplines plug in via ``SCHEDULERS.register``.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.disk.request import IORequest
from repro.registry import Registry

#: plugin registry of queue disciplines; factories take no arguments
SCHEDULERS = Registry("disk scheduler")


@SCHEDULERS.register("fifo")
class FIFOScheduler:
    """Serve requests strictly in arrival order."""

    def __init__(self):
        self._queue: Deque[IORequest] = deque()

    def __len__(self) -> int:
        return len(self._queue)

    def add(self, request: IORequest) -> None:
        self._queue.append(request)

    def next(self, head_sector: int) -> Optional[IORequest]:
        return self._queue.popleft() if self._queue else None

    def pending(self) -> List[IORequest]:
        return list(self._queue)


@SCHEDULERS.register("sstf")
class SSTFScheduler:
    """Shortest-seek-time-first: greedy nearest-sector selection.

    Classic starvation-prone discipline; included as a baseline for the
    scheduling ablation.
    """

    def __init__(self):
        self._queue: List[IORequest] = []

    def __len__(self) -> int:
        return len(self._queue)

    def add(self, request: IORequest) -> None:
        self._queue.append(request)

    def next(self, head_sector: int) -> Optional[IORequest]:
        if not self._queue:
            return None
        best = min(range(len(self._queue)),
                   key=lambda i: abs(self._queue[i].sector - head_sector))
        return self._queue.pop(best)

    def pending(self) -> List[IORequest]:
        return list(self._queue)


@SCHEDULERS.register("scan")
class ScanScheduler:
    """Bidirectional LOOK (the textbook "elevator"): sweep up, then down.

    Kept distinct from C-LOOK for scheduling ablations; SCAN trades
    C-LOOK's fairness for slightly shorter travel on some workloads.
    """

    def __init__(self):
        self._queue: List[IORequest] = []
        self._direction_up = True

    def __len__(self) -> int:
        return len(self._queue)

    def add(self, request: IORequest) -> None:
        self._queue.append(request)

    def next(self, head_sector: int) -> Optional[IORequest]:
        if not self._queue:
            return None
        for _ in range(2):
            if self._direction_up:
                ahead = [i for i, r in enumerate(self._queue)
                         if r.sector >= head_sector]
                if ahead:
                    best = min(ahead, key=lambda i: self._queue[i].sector)
                    return self._queue.pop(best)
            else:
                behind = [i for i, r in enumerate(self._queue)
                          if r.sector <= head_sector]
                if behind:
                    best = max(behind, key=lambda i: self._queue[i].sector)
                    return self._queue.pop(best)
            self._direction_up = not self._direction_up
        return self._queue.pop(0)  # pragma: no cover - unreachable

    def pending(self) -> List[IORequest]:
        return list(self._queue)


@SCHEDULERS.register("clook")
class CLookScheduler:
    """Circular LOOK elevator: sweep upward, then jump to the lowest waiter.

    This is the behaviour of the Linux 1.x single-direction elevator and
    gives each request bounded waiting (no SSTF starvation).
    """

    def __init__(self):
        self._queue: List[IORequest] = []

    def __len__(self) -> int:
        return len(self._queue)

    def add(self, request: IORequest) -> None:
        self._queue.append(request)

    def next(self, head_sector: int) -> Optional[IORequest]:
        if not self._queue:
            return None
        ahead = [i for i, r in enumerate(self._queue)
                 if r.sector >= head_sector]
        if ahead:
            best = min(ahead, key=lambda i: self._queue[i].sector)
        else:
            # Wrap: start a new sweep from the lowest pending sector.
            best = min(range(len(self._queue)),
                       key=lambda i: self._queue[i].sector)
        return self._queue.pop(best)

    def pending(self) -> List[IORequest]:
        return list(self._queue)
