"""Disk subsystem: geometry, mechanical service-time model, request
scheduling, and the disk device itself.

The default parameters model the 500 MB IDE drives of the Beowulf prototype
nodes (Berry & El-Ghazawi 1996): 512-byte sectors, ~4500 RPM spindles,
mid-1990s seek profiles, and a single-actuator device served through an
elevator (C-LOOK) queue.
"""

from repro.disk.geometry import SECTOR_BYTES, DiskGeometry, ZBRGeometry
from repro.disk.request import IORequest
from repro.disk.scheduler import (
    SCHEDULERS,
    CLookScheduler,
    FIFOScheduler,
    ScanScheduler,
    SSTFScheduler,
)
from repro.disk.service import DiskServiceModel
from repro.disk.cache import DRIVE_CACHES, DriveCache, NullDriveCache
from repro.disk.device import Disk, DiskStats, LatencyReservoir
from repro.disk.volume import (
    VOLUME_POLICIES,
    ConcatVolume,
    LogicalVolume,
    Raid0Volume,
    Raid1Volume,
    SingleVolume,
)

__all__ = [
    "CLookScheduler",
    "ConcatVolume",
    "DRIVE_CACHES",
    "Disk",
    "DiskGeometry",
    "DiskServiceModel",
    "DiskStats",
    "DriveCache",
    "FIFOScheduler",
    "IORequest",
    "LatencyReservoir",
    "LogicalVolume",
    "NullDriveCache",
    "Raid0Volume",
    "Raid1Volume",
    "SCHEDULERS",
    "SECTOR_BYTES",
    "SSTFScheduler",
    "ScanScheduler",
    "SingleVolume",
    "VOLUME_POLICIES",
    "ZBRGeometry",
]
