"""Disk subsystem: geometry, mechanical service-time model, request
scheduling, and the disk device itself.

The default parameters model the 500 MB IDE drives of the Beowulf prototype
nodes (Berry & El-Ghazawi 1996): 512-byte sectors, ~4500 RPM spindles,
mid-1990s seek profiles, and a single-actuator device served through an
elevator (C-LOOK) queue.
"""

from repro.disk.geometry import SECTOR_BYTES, DiskGeometry, ZBRGeometry
from repro.disk.request import IORequest
from repro.disk.scheduler import (
    CLookScheduler,
    FIFOScheduler,
    ScanScheduler,
    SSTFScheduler,
)
from repro.disk.service import DiskServiceModel
from repro.disk.cache import DriveCache
from repro.disk.device import Disk, DiskStats

__all__ = [
    "CLookScheduler",
    "Disk",
    "DiskGeometry",
    "DiskServiceModel",
    "DiskStats",
    "DriveCache",
    "FIFOScheduler",
    "IORequest",
    "SECTOR_BYTES",
    "SSTFScheduler",
    "ScanScheduler",
    "ZBRGeometry",
]
