"""Logical volumes: one block device multiplexed over N member disks.

A :class:`LogicalVolume` presents a single contiguous sector address
space backed by one or more simulated :class:`~repro.disk.device.Disk`
objects, the way Linux ``md`` layers a striped or mirrored array over
IDE drives.  Policies live in the :data:`VOLUME_POLICIES` registry so a
:class:`~repro.config.Scenario` can select them by name:

``single``
    A pass-through over exactly one disk — the paper's configuration,
    and byte-for-byte identical to talking to the disk directly.
``concat``
    Disks appended end to end (linear mode): logical space is the sum
    of member capacities; a request spanning a member boundary splits.
``raid0``
    Round-robin striping in fixed stripe units: stripe unit ``u`` lives
    on disk ``u % n`` at local unit ``u // n`` — the same address math
    :class:`repro.cluster.pious._StripeMap` uses across server nodes.
``raid1``
    Mirroring: writes fan out to every member, reads rotate round-robin
    across mirrors; capacity is the smallest member's.

The address math is kept in pure module-level functions
(:func:`raid0_extents`, :func:`concat_extents`,
:func:`capacity_sectors`) so tests can exercise coverage/overlap
properties without building devices, and so
:meth:`~repro.config.NodeConfig.to_node_params` can compute logical
capacity from a config alone.

Per-physical-disk identity is preserved: each member remains a full
:class:`Disk` with its own name, RNG stream, stats, and observability
instruments, and the instrumented driver emits one trace record per
*physical* sub-request (addressed in the member's local sector space).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.disk.request import IORequest
from repro.registry import Registry

#: registry of volume policies selectable via ``node.volume.policy``
VOLUME_POLICIES = Registry("volume policy")

#: one physical extent: (member disk index, local sector, sector count)
Extent = Tuple[int, int, int]


# -- pure address math ---------------------------------------------------------
def concat_extents(sector: int, nsectors: int,
                   disk_sectors: Sequence[int]) -> Tuple[Extent, ...]:
    """Split a logical span across concatenated members.

    Member ``i`` covers logical sectors ``[sum(sizes[:i]),
    sum(sizes[:i+1]))``; the span splits wherever it crosses a boundary.
    """
    out: List[Extent] = []
    end = sector + nsectors
    base = 0
    for index, size in enumerate(disk_sectors):
        top = base + size
        if sector < top and end > base:
            lo = max(sector, base)
            hi = min(end, top)
            out.append((index, lo - base, hi - lo))
        base = top
    return tuple(out)


def raid0_extents(sector: int, nsectors: int, ndisks: int,
                  stripe_sectors: int) -> Tuple[Extent, ...]:
    """Split a logical span into striped per-member extents.

    Stripe unit ``u`` maps to disk ``u % ndisks`` at local sector
    ``(u // ndisks) * stripe_sectors``.  Adjacent extents that land
    contiguously on the same member coalesce (so a one-disk "stripe" is
    a single extent, as ``md`` would issue it).
    """
    out: List[Extent] = []
    end = sector + nsectors
    while sector < end:
        unit = sector // stripe_sectors
        within = sector - unit * stripe_sectors
        chunk = min(end - sector, stripe_sectors - within)
        disk = unit % ndisks
        local = (unit // ndisks) * stripe_sectors + within
        if out and out[-1][0] == disk \
                and out[-1][1] + out[-1][2] == local:
            out[-1] = (disk, out[-1][1], out[-1][2] + chunk)
        else:
            out.append((disk, local, chunk))
        sector += chunk
    return tuple(out)


def capacity_sectors(policy: str, disk_sectors: Sequence[int],
                     stripe_sectors: int = 16) -> int:
    """Logical capacity of ``policy`` over members of the given sizes."""
    cls = VOLUME_POLICIES.get(policy)
    return cls.capacity(tuple(disk_sectors), stripe_sectors)


# -- the device-facing layer ---------------------------------------------------
class LogicalVolume:
    """Base class: a ``Disk``-shaped front over ``disks`` members.

    Subclasses define the address math (``_map`` + ``capacity``); the
    base provides the aggregate device surface the driver and replay
    layers use (``total_sectors``, ``queue_depth``,
    ``media_error_rate``, ``map_extents``, ``submit``).
    """

    policy = "?"

    def __init__(self, disks: Sequence, stripe_sectors: int = 16,
                 name: str = "md0"):
        if not disks:
            raise ValueError("volume needs at least one member disk")
        if stripe_sectors < 1:
            raise ValueError("stripe must cover >= 1 sector")
        self.disks = tuple(disks)
        self.stripe_sectors = int(stripe_sectors)
        self.name = name
        self.sim = self.disks[0].sim
        #: lifetime counters: logical requests mapped, physical parts issued
        self.logical_requests = 0
        self.physical_requests = 0
        self._next_mirror = 0
        # member set and geometry are fixed at construction; capacity is
        # resolved on first use (subclass ``capacity`` hooks) and reused
        # by the per-request range check in ``map_extents``
        self._total_sectors: Optional[int] = None

    # -- capacity ----------------------------------------------------------
    @classmethod
    def capacity(cls, disk_sectors: Tuple[int, ...],
                 stripe_sectors: int) -> int:
        raise NotImplementedError

    @property
    def total_sectors(self) -> int:
        cached = self._total_sectors
        if cached is None:
            cached = self._total_sectors = type(self).capacity(
                tuple(d.total_sectors for d in self.disks),
                self.stripe_sectors)
        return cached

    # -- aggregate device surface ------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Physical requests waiting or in service across all members."""
        return sum(d.queue_depth for d in self.disks)

    @property
    def media_error_rate(self) -> float:
        """Worst member's rate (drives the driver's retry-path choice)."""
        return max(d.media_error_rate for d in self.disks)

    # -- checkpoint state surface ------------------------------------------
    def snapshot_state(self) -> dict:
        return {"logical_requests": self.logical_requests,
                "physical_requests": self.physical_requests,
                "next_mirror": self._next_mirror}

    def restore_state(self, state: dict) -> None:
        self.logical_requests = int(state["logical_requests"])
        self.physical_requests = int(state["physical_requests"])
        self._next_mirror = int(state["next_mirror"])

    # -- mapping -----------------------------------------------------------
    def _map(self, sector: int, nsectors: int,
             is_write: bool) -> Tuple[Extent, ...]:
        raise NotImplementedError

    def map_extents(self, sector: int, nsectors: int,
                    is_write: bool) -> Tuple[Extent, ...]:
        """Resolve a logical span to per-member physical extents."""
        if sector < 0 or nsectors < 1:
            raise ValueError(f"bad span [{sector}, +{nsectors}]")
        if sector + nsectors > self.total_sectors:
            raise ValueError(
                f"request [{sector}, {sector + nsectors - 1}] beyond end "
                f"of {self.name} ({self.total_sectors} sectors)")
        parts = self._map(sector, nsectors, is_write)
        self.logical_requests += 1
        self.physical_requests += len(parts)
        return parts

    # -- submission --------------------------------------------------------
    def submit(self, request: IORequest):
        """Disk-compatible entry point: fan out, composite completion.

        The returned event fires when every physical part completed;
        the logical request fails if any part failed.  (The driver maps
        and traces parts itself; this path serves replay and any caller
        treating the volume as one device.)
        """
        parts = self.map_extents(request.sector, request.nsectors,
                                 request.is_write)
        sim = self.sim
        request.submit_time = sim.now
        done = sim.event()
        request.done = done
        state = {"remaining": len(parts), "failed": False}

        def finish(_ev, sub):
            state["remaining"] -= 1
            if sub.failed:
                state["failed"] = True
            if state["remaining"] == 0:
                request.complete_time = sim.now
                request.failed = state["failed"]
                done.succeed(request)

        for index, psector, pnsectors in parts:
            sub = IORequest(sector=psector, nsectors=pnsectors,
                            is_write=request.is_write, origin=request.origin)
            ev = self.disks[index].submit(sub)
            ev.callbacks.append(
                lambda _ev, sub=sub: finish(_ev, sub))
        return done


@VOLUME_POLICIES.register("single")
class SingleVolume(LogicalVolume):
    """Pass-through over exactly one disk (the paper's node)."""

    policy = "single"

    def __init__(self, disks, stripe_sectors: int = 16, name: str = "md0"):
        super().__init__(disks, stripe_sectors, name)
        if len(self.disks) != 1:
            raise ValueError(f"'single' volume takes exactly one disk, "
                             f"got {len(self.disks)}")

    @classmethod
    def capacity(cls, disk_sectors, stripe_sectors):
        return disk_sectors[0]

    def _map(self, sector, nsectors, is_write):
        return ((0, sector, nsectors),)


@VOLUME_POLICIES.register("concat")
class ConcatVolume(LogicalVolume):
    """Members appended end to end (linear mode)."""

    policy = "concat"

    @classmethod
    def capacity(cls, disk_sectors, stripe_sectors):
        return sum(disk_sectors)

    def _map(self, sector, nsectors, is_write):
        return concat_extents(
            sector, nsectors, [d.total_sectors for d in self.disks])


@VOLUME_POLICIES.register("raid0")
class Raid0Volume(LogicalVolume):
    """Round-robin striping in ``stripe_sectors`` units."""

    policy = "raid0"

    @classmethod
    def capacity(cls, disk_sectors, stripe_sectors):
        # full stripe units only, bounded by the smallest member, so
        # every logical sector maps inside every member it can land on
        units_per_disk = min(disk_sectors) // stripe_sectors
        return units_per_disk * stripe_sectors * len(disk_sectors)

    def _map(self, sector, nsectors, is_write):
        return raid0_extents(sector, nsectors, len(self.disks),
                             self.stripe_sectors)


@VOLUME_POLICIES.register("raid1")
class Raid1Volume(LogicalVolume):
    """Mirroring: write everywhere, read round-robin."""

    policy = "raid1"

    @classmethod
    def capacity(cls, disk_sectors, stripe_sectors):
        return min(disk_sectors)

    def _map(self, sector, nsectors, is_write):
        if is_write:
            return tuple((i, sector, nsectors)
                         for i in range(len(self.disks)))
        mirror = self._next_mirror
        self._next_mirror = (mirror + 1) % len(self.disks)
        return ((mirror, sector, nsectors),)
