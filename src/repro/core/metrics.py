"""Aggregate workload metrics — the measurements behind Table 1."""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields

import numpy as np

from repro.core.trace import TraceDataset


@dataclass(frozen=True)
class WorkloadMetrics:
    """Table-1-style summary of one experiment's trace."""

    label: str
    total_requests: int
    read_fraction: float
    write_fraction: float
    requests_per_second: float
    #: per-disk (per-node) average request count, as the paper reports
    requests_per_node: float
    duration: float
    mean_size_kb: float
    mean_pending: float
    #: data moved, KB (all nodes)
    kb_moved: float = 0.0
    #: cluster size behind the per-disk averages (1 when unknown)
    nnodes: int = 1

    @property
    def read_pct(self) -> int:
        return round(self.read_fraction * 100)

    @property
    def write_pct(self) -> int:
        """Derived as ``100 - read_pct`` so the split always sums to 100.

        Rounding each fraction independently could report e.g. 42 % + 57 %
        (both halves rounding down).  An empty trace reports 0 / 0.
        """
        if self.total_requests == 0:
            return 0
        return 100 - self.read_pct

    @property
    def throughput_kb_per_s(self) -> float:
        """Per-disk average data rate over the observation window."""
        nodes = max(self.nnodes, 1)
        return self.kb_moved / self.duration / nodes if self.duration else 0.0

    # -- persistence ---------------------------------------------------------
    def to_dict(self) -> dict:
        """All fields plus the derived percentages, JSON-ready."""
        out = asdict(self)
        out["read_pct"] = self.read_pct
        out["write_pct"] = self.write_pct
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "WorkloadMetrics":
        """Rebuild from :meth:`to_dict` output or a legacy manifest dict.

        Legacy manifests (format ``repro-run-v1`` before the ``nnodes``
        field existed) carry only a subset of the fields; missing ones
        default to zero, percentages are folded back into fractions, and
        the node count falls back to the old
        ``total_requests / requests_per_node`` reconstruction.
        """
        data = dict(data)
        if "read_fraction" not in data and "read_pct" in data:
            data["read_fraction"] = data["read_pct"] / 100.0
        if "write_fraction" not in data and "write_pct" in data:
            data["write_fraction"] = data["write_pct"] / 100.0
        if "nnodes" not in data:
            total = data.get("total_requests") or 0
            per_node = data.get("requests_per_node") or 0.0
            data["nnodes"] = max(round(total / per_node), 1) \
                if per_node else 1
        known = {f.name for f in fields(cls)}
        kwargs = {k: v for k, v in data.items() if k in known}
        kwargs.setdefault("label", "")
        for f in fields(cls):
            if f.name != "label":
                kwargs.setdefault(f.name, 0)
        return cls(**kwargs)


@dataclass(frozen=True)
class NodeVariance:
    """Spread of per-node request counts behind a per-disk average.

    The paper reports averages per disk; this quantifies how even the
    load actually is across the cluster (parallel codes should be
    near-uniform; stragglers show up as high CV).
    """

    per_node_requests: dict
    mean: float
    std: float

    @property
    def cv(self) -> float:
        """Coefficient of variation of per-node request counts."""
        return self.std / self.mean if self.mean else 0.0

    @property
    def balanced(self) -> bool:
        return self.cv < 0.25


def per_node_variance(trace: TraceDataset) -> NodeVariance:
    """Per-node request counts and their spread."""
    counts = {int(n): len(trace.node(int(n))) for n in trace.nodes()}
    values = np.array(list(counts.values()), dtype=np.float64)
    if len(values) == 0:
        return NodeVariance(per_node_requests={}, mean=0.0, std=0.0)
    return NodeVariance(per_node_requests=counts,
                        mean=float(values.mean()),
                        std=float(values.std()))


def estimate_service_times(trace: TraceDataset) -> np.ndarray:
    """Per-request latency estimates from a VERBOSE-level trace.

    At :class:`~repro.driver.TraceLevel.VERBOSE` the driver logs each
    request twice — at submission and at completion — with identical
    (sector, size, rw, node).  Pairing consecutive identical records in
    time order recovers the request latencies, the measurement a
    timing-focused study would extract.
    """
    if len(trace) == 0:
        return np.zeros(0)
    order = np.argsort(trace.time, kind="stable")
    records = trace.records[order]
    open_requests: dict = {}
    latencies = []
    for row in records:
        key = (int(row["sector"]), int(row["write"]),
               float(row["size_kb"]), int(row["node"]))
        started = open_requests.pop(key, None)
        if started is None:
            open_requests[key] = float(row["time"])
        else:
            latencies.append(float(row["time"]) - started)
    return np.asarray(latencies)


def compute_metrics(trace: TraceDataset, label: str = "",
                    duration: float = 0.0,
                    nnodes: "int | None" = None) -> WorkloadMetrics:
    """Summarise a trace.  ``duration`` defaults to the trace span.

    ``nnodes`` is the true cluster size behind the per-disk averages;
    pass it explicitly (as :class:`~repro.core.experiments
    .ExperimentResult` does) so nodes that issued zero requests still
    count in the denominators.  When unknown it falls back to the number
    of nodes *observed* in the trace — which silently inflates the
    per-node figures if a node stayed idle.

    Thin adapter over the streaming
    :class:`~repro.analysis.MetricsPipeline` (the whole trace folded as
    one batch), so results are bit-identical to what the analysis
    engine computes chunk by chunk over the trace store.
    """
    from repro.analysis.pipelines import MetricsPipeline, RunContext
    ctx = RunContext.for_dataset(trace, label=label,
                                 duration=duration if duration > 0 else None,
                                 nnodes=nnodes)
    return MetricsPipeline().run_over([trace.records], ctx)


def class_throughput(trace: TraceDataset, duration: float = 0.0,
                     page_kb: float = 4.0) -> dict:
    """KB/s moved per request-size class (block / page / cache)."""
    from repro.core.sizes import RequestClass, classify_sizes
    if duration <= 0:
        duration = max(trace.duration, 1e-9)
    out = {cls: 0.0 for cls in RequestClass}
    if len(trace) == 0:
        return out
    classes = classify_sizes(trace, page_kb)
    sizes = trace.size_kb
    for cls in RequestClass:
        out[cls] = float(sizes[classes == cls].sum()) / duration
    return out
