"""Spatial and temporal locality analyses (Figures 7 and 8).

Spatial locality: the percentage of requests landing in each band of
100,000 sectors (the paper's Figure 7 binning), plus concentration
measures — the paper observes the combined workload "almost follows the
80/20 rule".

Temporal locality: per-sector access frequency averaged over the
observation window (Figure 8), inter-access gap statistics, and hot-spot
extraction — the paper finds the hottest sector near 45,000 and the next
just under 100,000.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.trace import TraceDataset

#: the paper's spatial band width, in sectors
BAND_SECTORS = 100_000


@dataclass(frozen=True)
class SpatialLocality:
    """Band histogram + concentration summary."""

    band_sectors: int
    band_start: np.ndarray        # first sector of each (non-empty) band
    band_fraction: np.ndarray     # fraction of all requests per band
    gini: float
    top_20pct_share: float        # share of requests in the busiest 20% bands

    @property
    def follows_80_20(self) -> bool:
        """Does >= ~80% of the traffic land in <= 20% of the bands?"""
        return self.top_20pct_share >= 0.7

    def busiest_band(self) -> Tuple[int, float]:
        i = int(np.argmax(self.band_fraction))
        return int(self.band_start[i]), float(self.band_fraction[i])


def spatial_locality(trace: TraceDataset, band_sectors: int = BAND_SECTORS,
                     total_sectors: int = 1_024_128) -> SpatialLocality:
    """Figure 7's analysis: request share per 100K-sector band.

    Thin adapter over the streaming band counts: the whole trace is one
    batch, so results are bit-identical to the chunk-streaming
    :class:`~repro.analysis.SpatialLocalityPipeline`.
    """
    if band_sectors < 1:
        raise ValueError("band size must be >= 1")
    if len(trace) == 0:
        raise ValueError("empty trace")
    nbands = -(-total_sectors // band_sectors)
    band_of = np.minimum(trace.sector // band_sectors, nbands - 1)
    counts = np.bincount(band_of.astype(np.int64), minlength=nbands)
    return spatial_from_band_counts(counts, band_sectors)


def spatial_from_band_counts(counts: np.ndarray,
                             band_sectors: int) -> SpatialLocality:
    """Finish the Figure 7 analysis from per-band request counts.

    The streaming analysis engine accumulates the band histogram chunk
    by chunk and across nodes, then calls this — the single shared
    finalisation — so streaming and in-memory results agree bitwise.
    """
    counts = np.asarray(counts, dtype=np.int64)
    if counts.sum() == 0:
        raise ValueError("empty trace")
    nbands = len(counts)
    fraction = counts / counts.sum()
    starts = np.arange(nbands) * band_sectors

    # Concentration over all bands (including empty ones).
    sorted_counts = np.sort(counts)[::-1]
    top_k = max(1, int(np.ceil(0.2 * nbands)))
    top_share = float(sorted_counts[:top_k].sum() / counts.sum())
    gini = _gini(counts)
    return SpatialLocality(band_sectors=band_sectors,
                           band_start=starts,
                           band_fraction=fraction,
                           gini=gini,
                           top_20pct_share=top_share)


def _gini(counts: np.ndarray) -> float:
    """Gini coefficient of a nonnegative count vector."""
    counts = np.sort(np.asarray(counts, dtype=np.float64))
    n = len(counts)
    total = counts.sum()
    if n == 0 or total == 0:
        return 0.0
    cum = np.cumsum(counts)
    # standard formula: 1 - 2 * area under the Lorenz curve
    lorenz_area = (cum.sum() - counts.sum() / 2) / (n * total)
    return float(1 - 2 * lorenz_area)


@dataclass(frozen=True)
class TemporalLocality:
    """Per-sector access frequencies over the observation window."""

    window: float
    sectors: np.ndarray           # distinct sectors, ascending
    frequency: np.ndarray         # accesses per second per sector
    mean_interaccess: np.ndarray  # mean gap between accesses (inf if one)

    def hot_spots(self, k: int = 5) -> List[Tuple[int, float]]:
        """The ``k`` most frequently accessed sectors, hottest first."""
        order = np.argsort(self.frequency)[::-1][:k]
        return [(int(self.sectors[i]), float(self.frequency[i]))
                for i in order]


def temporal_locality(trace: TraceDataset,
                      window: float = 0.0) -> TemporalLocality:
    """Figure 8's analysis: access frequency per distinct sector.

    ``window`` defaults to the trace duration (the paper averages over
    the 700 s combined run).
    """
    if len(trace) == 0:
        raise ValueError("empty trace")
    if window <= 0:
        window = max(trace.duration, 1e-9)
    sectors, inverse, counts = np.unique(trace.sector, return_inverse=True,
                                         return_counts=True)
    frequency = counts / window

    times = trace.time
    mean_gap = np.full(len(sectors), np.inf)
    order = np.lexsort((times, inverse))
    sorted_sector_idx = inverse[order]
    sorted_times = times[order]
    # gaps between consecutive accesses to the same sector
    same = sorted_sector_idx[1:] == sorted_sector_idx[:-1]
    gaps = sorted_times[1:] - sorted_times[:-1]
    if same.any():
        sums = np.zeros(len(sectors))
        ns = np.zeros(len(sectors))
        np.add.at(sums, sorted_sector_idx[1:][same], gaps[same])
        np.add.at(ns, sorted_sector_idx[1:][same], 1)
        with np.errstate(invalid="ignore", divide="ignore"):
            computed = sums / ns
        mean_gap = np.where(ns > 0, computed, np.inf)
    return TemporalLocality(window=float(window), sectors=sectors,
                            frequency=frequency, mean_interaccess=mean_gap)


def reuse_fraction(trace: TraceDataset) -> float:
    """Fraction of requests that revisit an already-accessed sector."""
    if len(trace) == 0:
        raise ValueError("empty trace")
    _, counts = np.unique(trace.sector, return_counts=True)
    return float((counts - 1).sum() / counts.sum())
