"""Access-pattern analyses in the style of the related work.

The paper's related-work section leans on the CHARISMA studies (Kotz &
Nieuwejaar; Purakayastha et al.) and on Miller & Katz's I/O-class
taxonomy.  This module implements those groups' standard analyses over
our driver traces, so the reproduction can be compared against that
larger body of results:

* **sequentiality** — fraction of requests that continue the preceding
  request on the same device (sequential runs, run-length distribution);
* **inter-arrival structure** — gap statistics and the index of
  dispersion for counts (burstiness over windows);
* **read-run / write-run structure** — lengths of maximal same-direction
  request trains (Miller & Katz observe long write trains in checkpoint-
  style workloads);
* **request-class phases** — Miller & Katz's required / checkpoint /
  data-staging decomposition, approximated by position in the run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.core.trace import TraceDataset


@dataclass(frozen=True)
class SequentialityReport:
    """How sequential a trace's sector stream is."""

    total: int
    #: request starts exactly where the previous one ended
    sequential_fraction: float
    #: request starts within one cylinder group (~1000 sectors) forward
    nearly_sequential_fraction: float
    #: lengths of maximal sequential runs (in requests)
    run_lengths: np.ndarray

    @property
    def mean_run_length(self) -> float:
        return float(self.run_lengths.mean()) if len(self.run_lengths) else 0.0

    @property
    def max_run_length(self) -> int:
        return int(self.run_lengths.max()) if len(self.run_lengths) else 0


def sequentiality(trace: TraceDataset,
                  near_window: int = 1000) -> SequentialityReport:
    """Sequential-access analysis per the CHARISMA methodology.

    A request is *sequential* if it begins at the sector right after the
    previous request's end; *nearly sequential* if it begins within
    ``near_window`` sectors beyond it.
    """
    n = len(trace)
    if n == 0:
        raise ValueError("empty trace")
    order = np.argsort(trace.time, kind="stable")
    sectors = trace.sector[order].astype(np.int64)
    nsect = np.maximum((trace.size_kb[order] * 2).astype(np.int64), 1)
    ends = sectors + nsect
    if n == 1:
        return SequentialityReport(total=1, sequential_fraction=0.0,
                                   nearly_sequential_fraction=0.0,
                                   run_lengths=np.array([1]))
    delta = sectors[1:] - ends[:-1]
    seq = delta == 0
    near = (delta >= 0) & (delta < near_window)
    run_lengths: List[int] = []
    current = 1
    for is_seq in seq:
        if is_seq:
            current += 1
        else:
            run_lengths.append(current)
            current = 1
    run_lengths.append(current)
    return SequentialityReport(
        total=n,
        sequential_fraction=float(seq.mean()),
        nearly_sequential_fraction=float(near.mean()),
        run_lengths=np.asarray(run_lengths),
    )


@dataclass(frozen=True)
class ArrivalReport:
    """Inter-arrival gap statistics and burstiness."""

    total: int
    mean_gap: float
    cv_gap: float                 # coefficient of variation of gaps
    #: index of dispersion for counts over the given window
    idc: float
    window: float

    @property
    def is_bursty(self) -> bool:
        """IDC well above 1 marks a bursty (non-Poisson) arrival stream."""
        return self.idc > 2.0


def arrival_structure(trace: TraceDataset,
                      window: float = 10.0) -> ArrivalReport:
    """Gap statistics plus the index of dispersion for counts.

    Adapter over the streaming :class:`~repro.analysis.ArrivalPipeline`:
    the sorted timestamps folded as one ordered batch, so the result
    matches the analysis engine's k-way merged stream (exactly here; to
    floating round-off when the engine folds many chunks).
    """
    if len(trace) < 2:
        raise ValueError("need at least 2 records")
    from repro.analysis.pipelines import ArrivalPipeline, RunContext
    pipeline = ArrivalPipeline(window=window)
    ctx = RunContext.for_dataset(trace)
    accs = pipeline.accumulators(ctx)
    times = np.sort(trace.time)
    for acc in accs.values():
        acc.update_values(times)
    return pipeline.finalize(accs, ctx)


@dataclass(frozen=True)
class DirectionRuns:
    """Maximal trains of consecutive same-direction requests."""

    read_runs: np.ndarray
    write_runs: np.ndarray

    @property
    def mean_write_run(self) -> float:
        return float(self.write_runs.mean()) if len(self.write_runs) else 0.0

    @property
    def mean_read_run(self) -> float:
        return float(self.read_runs.mean()) if len(self.read_runs) else 0.0


def direction_runs(trace: TraceDataset) -> DirectionRuns:
    """Lengths of maximal read-trains and write-trains in time order."""
    if len(trace) == 0:
        raise ValueError("empty trace")
    order = np.argsort(trace.time, kind="stable")
    writes = trace.write[order].astype(bool)
    read_runs: List[int] = []
    write_runs: List[int] = []
    current_dir = writes[0]
    current_len = 1
    for w in writes[1:]:
        if w == current_dir:
            current_len += 1
        else:
            (write_runs if current_dir else read_runs).append(current_len)
            current_dir = w
            current_len = 1
    (write_runs if current_dir else read_runs).append(current_len)
    return DirectionRuns(read_runs=np.asarray(read_runs or [0]),
                         write_runs=np.asarray(write_runs or [0]))


def miller_katz_classes(trace: TraceDataset,
                        startup_fraction: float = 0.1,
                        shutdown_fraction: float = 0.1
                        ) -> Dict[str, float]:
    """Approximate Miller & Katz's I/O class shares.

    * ``required`` — I/O in the startup/termination windows of the run
      (program load, final output);
    * ``staging`` — 4 KB paging traffic outside those windows (memory
      larger than physical → data staging);
    * ``checkpoint`` — remaining mid-run writes (periodic state saves /
      statistics);
    * ``other`` — remaining mid-run reads.
    """
    n = len(trace)
    if n == 0:
        raise ValueError("empty trace")
    if not (0 <= startup_fraction < 1 and 0 <= shutdown_fraction < 1
            and startup_fraction + shutdown_fraction < 1):
        raise ValueError("bad window fractions")
    duration = max(trace.duration, 1e-9)
    t = trace.time
    early = t < startup_fraction * duration
    late = t > (1 - shutdown_fraction) * duration
    required = early | late
    mid = ~required
    paging = mid & (trace.size_kb == 4.0)
    checkpoint = mid & ~paging & (trace.write == 1)
    other = mid & ~paging & (trace.write == 0)
    return {
        "required": float(required.mean()),
        "staging": float(paging.mean()),
        "checkpoint": float(checkpoint.mean()),
        "other": float(other.mean()),
    }
