"""Replication statistics: metrics across seeds with confidence intervals.

A single simulated run is one sample; reproduction claims should hold in
expectation.  ``replicate`` runs an experiment under several seeds and
reports each Table-1 metric as mean ± half-width of a Student-t
confidence interval (no scipy dependency — critical values tabulated).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

# two-sided 95% Student-t critical values for df = 1..30
_T95 = [12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
        2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
        2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
        2.048, 2.045, 2.042]


def t_critical_95(df: int) -> float:
    """Two-sided 95% t critical value (normal beyond df=30)."""
    if df < 1:
        raise ValueError("df must be >= 1")
    return _T95[df - 1] if df <= 30 else 1.96


@dataclass(frozen=True)
class MetricCI:
    """Mean and 95% confidence half-width over replications."""

    name: str
    mean: float
    half_width: float
    values: tuple

    @property
    def n(self) -> int:
        return len(self.values)

    def contains(self, value: float) -> bool:
        return abs(value - self.mean) <= self.half_width

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}: {self.mean:.3g} ± {self.half_width:.2g} " \
               f"(n={self.n})"


def confidence_interval(name: str, values: Sequence[float]) -> MetricCI:
    """95% CI of the mean of ``values`` (t-distribution)."""
    values = tuple(float(v) for v in values)
    if len(values) < 2:
        raise ValueError("need at least 2 replications")
    arr = np.asarray(values)
    mean = float(arr.mean())
    sem = float(arr.std(ddof=1) / np.sqrt(len(arr)))
    return MetricCI(name=name, mean=mean,
                    half_width=t_critical_95(len(arr) - 1) * sem,
                    values=values)


#: metric extractors applied to each replication's WorkloadMetrics
DEFAULT_METRICS: Dict[str, Callable] = {
    "read_fraction": lambda m: m.read_fraction,
    "requests_per_second": lambda m: m.requests_per_second,
    "requests_per_node": lambda m: m.requests_per_node,
    "mean_size_kb": lambda m: m.mean_size_kb,
    "duration": lambda m: m.duration,
}


def replicate(experiment: str, seeds: Sequence[int], nnodes: int = 1,
              metrics: Optional[Dict[str, Callable]] = None,
              runner_kwargs: Optional[dict] = None
              ) -> Dict[str, MetricCI]:
    """Run ``experiment`` once per seed; return CI per metric."""
    from repro.core.experiments import ExperimentRunner
    if len(seeds) < 2:
        raise ValueError("need at least 2 seeds")
    metrics = metrics or DEFAULT_METRICS
    samples: Dict[str, List[float]] = {name: [] for name in metrics}
    for seed in seeds:
        runner = ExperimentRunner(nnodes=nnodes, seed=int(seed),
                                  **(runner_kwargs or {}))
        m = runner.run(experiment).metrics
        for name, extract in metrics.items():
            samples[name].append(float(extract(m)))
    return {name: confidence_interval(name, values)
            for name, values in samples.items()}


def render_replication(experiment: str,
                       cis: Dict[str, MetricCI]) -> str:
    lines = [f"{experiment}: {next(iter(cis.values())).n} replications "
             f"(mean ± 95% CI)"]
    for ci in cis.values():
        lines.append(f"  {ci.name:<20} {ci.mean:10.3f} ± {ci.half_width:.3f}")
    return "\n".join(lines)
