"""The paper's claims as executable checks — a reproduction scorecard.

Every qualitative statement the paper makes about its measurements is
encoded here as a :class:`Claim` with a programmatic check over the
experiment results.  ``evaluate_claims`` runs them all and produces the
scorecard; the CLI exposes it as ``repro-experiment all --claims``.

This is the contract of the reproduction: if a code change breaks a
claim, the scorecard (and the corresponding benchmark) says exactly
which observation no longer holds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.core.experiments import ExperimentResult
from repro.core.locality import (
    reuse_fraction,
    spatial_locality,
    temporal_locality,
)
from repro.core.sizes import dominant_size, size_histogram


@dataclass(frozen=True)
class Claim:
    """One paper statement and its check."""

    id: str
    section: str
    statement: str
    #: experiments the check needs
    needs: tuple
    check: Callable[[Dict[str, ExperimentResult]], tuple]

    def evaluate(self, results: Dict[str, ExperimentResult]):
        missing = [n for n in self.needs if n not in results]
        if missing:
            return ClaimOutcome(self, None, f"needs {missing}")
        ok, detail = self.check(results)
        return ClaimOutcome(self, bool(ok), detail)


@dataclass(frozen=True)
class ClaimOutcome:
    claim: Claim
    passed: object          # True / False / None (not evaluated)
    detail: str

    @property
    def status(self) -> str:
        if self.passed is None:
            return "SKIP"
        return "PASS" if self.passed else "FAIL"


def _c(results, name):
    return results[name]


def _baseline_writes(results):
    m = _c(results, "baseline").metrics
    return m.read_pct <= 3, f"{m.read_pct}% reads"


def _baseline_rate(results):
    m = _c(results, "baseline").metrics
    return 0.5 < m.requests_per_second < 1.5, \
        f"{m.requests_per_second:.2f} req/s (paper 0.9)"


def _baseline_1kb(results):
    d = dominant_size(_c(results, "baseline").trace)
    return d == 1.0, f"dominant size {d:g} KB"


def _baseline_few_sectors(results):
    trace = _c(results, "baseline").trace
    reuse = reuse_fraction(trace)
    return reuse > 0.5, f"{reuse * 100:.0f}% of requests revisit a sector"


def _baseline_low_and_high(results):
    sectors = _c(results, "baseline").trace.sector
    low = (sectors < 300_000).any()
    high = (sectors >= 1_000_000).any()
    return low and high, f"low={low} high={high}"


def _ppm_low_reads(results):
    m = _c(results, "ppm").metrics
    return m.read_pct <= 12, f"{m.read_pct}% reads (paper 4%)"


def _ppm_late_paging(results):
    result = _c(results, "ppm")
    reads4 = result.trace.reads()
    r = reads4.records[reads4.size_kb == 4.0]
    third = result.metrics.duration / 3
    mid = ((r["time"] >= third) & (r["time"] < 2 * third)).sum()
    late = (r["time"] >= 2 * third).sum()
    return mid == 0 and late > 0, f"mid-run 4KB reads {mid}, late {late}"


def _wavelet_balanced(results):
    m = _c(results, "wavelet").metrics
    return 40 <= m.read_pct <= 60, f"{m.read_pct}% reads (paper 49%)"


def _wavelet_16kb(results):
    trace = _c(results, "wavelet").trace
    top = float(trace.reads().size_kb.max()) if len(trace.reads()) else 0.0
    return top == 16.0, f"largest read {top:g} KB"


def _wavelet_paging(results):
    hist = size_histogram(_c(results, "wavelet").trace)
    frac = hist.get(4.0, 0) / sum(hist.values())
    return frac > 0.5, f"4 KB fraction {frac * 100:.0f}%"


def _nbody_mix(results):
    m = _c(results, "nbody").metrics
    return 5 <= m.read_pct <= 25, f"{m.read_pct}% reads (paper 13%)"


def _paging_ordering(results):
    counts = {name: size_histogram(_c(results, name).trace).get(4.0, 0)
              for name in ("ppm", "nbody", "wavelet")}
    ok = counts["ppm"] < counts["nbody"] < counts["wavelet"]
    return ok, f"4KB counts {counts}"


def _combined_32kb(results):
    top = max(size_histogram(_c(results, "combined").trace))
    singles = max(max(size_histogram(_c(results, n).trace))
                  for n in ("ppm", "wavelet", "nbody"))
    return top == 32.0 and singles <= 16.0, \
        f"combined max {top:g} KB vs singles max {singles:g} KB"


def _combined_duration(results):
    d = _c(results, "combined").metrics.duration
    return 450 < d < 1100, f"{d:.0f} s (paper ~700 s)"


def _combined_low_sectors(results):
    trace = _c(results, "combined").trace
    low = (trace.sector < 400_000).mean()
    return low > 0.9, f"{low * 100:.0f}% of requests below sector 400K"


def _spatial_80_20(results):
    sp = spatial_locality(_c(results, "combined").trace)
    return sp.follows_80_20, \
        f"top-20% bands hold {sp.top_20pct_share * 100:.0f}%"


def _temporal_hotspot_log_area(results):
    tl = temporal_locality(_c(results, "combined").trace)
    hot = tl.hot_spots(5)
    in_log = any(40_000 <= s < 56_000 for s, _ in hot)
    return in_log, f"top-5 hot sectors {[s for s, _ in hot]}"


CLAIMS: List[Claim] = [
    Claim("B1", "4.1", "baseline is essentially 100% writes",
          ("baseline",), _baseline_writes),
    Claim("B2", "Table 1", "baseline rate ~0.9 requests/s per disk",
          ("baseline",), _baseline_rate),
    Claim("B3", "4.1", "baseline's predominant request size is 1 KB",
          ("baseline",), _baseline_1kb),
    Claim("B4", "4.1", "baseline concentrates on few sectors "
          "(horizontal lines)", ("baseline",), _baseline_few_sectors),
    Claim("B5", "5", "quiescent writes appear at low and high sector "
          "numbers (system + instrumentation logging)",
          ("baseline",), _baseline_low_and_high),
    Claim("P1", "Table 1", "PPM is read-light (4% in the paper)",
          ("ppm",), _ppm_low_reads),
    Claim("P2", "4.2", "PPM pages only briefly toward the end of the run",
          ("ppm",), _ppm_late_paging),
    Claim("W1", "Table 1", "wavelet read/write mix is near 50/50",
          ("wavelet",), _wavelet_balanced),
    Claim("W2", "4.2", "wavelet reads approach the 16 KB cache size",
          ("wavelet",), _wavelet_16kb),
    Claim("W3", "4.2", "wavelet shows a high rate of 4 KB paging",
          ("wavelet",), _wavelet_paging),
    Claim("N1", "Table 1", "N-body is write-dominated with modest reads "
          "(13% in the paper)", ("nbody",), _nbody_mix),
    Claim("N2", "4.2", "paging ordering: PPM < N-body < wavelet",
          ("ppm", "nbody", "wavelet"), _paging_ordering),
    Claim("C1", "4.3", "16-32 KB requests appear only under the combined "
          "load", ("combined", "ppm", "wavelet", "nbody"), _combined_32kb),
    Claim("C2", "4.3", "combined run takes ~700 s",
          ("combined",), _combined_duration),
    Claim("C3", "4.3", "combined activity concentrates at lower sectors",
          ("combined",), _combined_low_sectors),
    Claim("L1", "Figure 7", "spatial locality almost follows the 80/20 "
          "rule", ("combined",), _spatial_80_20),
    Claim("L2", "Figure 8", "hottest sectors include the ~45,000 log area",
          ("combined",), _temporal_hotspot_log_area),
]


def evaluate_claims(results: Dict[str, ExperimentResult]
                    ) -> List[ClaimOutcome]:
    """Evaluate every claim against whichever experiments are present."""
    return [claim.evaluate(results) for claim in CLAIMS]


def render_scorecard(outcomes: List[ClaimOutcome]) -> str:
    lines = ["Reproduction scorecard (paper claims vs. this run)",
             f"{'id':<4} {'':4} {'claim':<58} detail"]
    for outcome in outcomes:
        lines.append(f"{outcome.claim.id:<4} {outcome.status:<4} "
                     f"{outcome.claim.statement:<58} {outcome.detail}")
    evaluated = [o for o in outcomes if o.passed is not None]
    passed = sum(1 for o in evaluated if o.passed)
    lines.append(f"-- {passed}/{len(evaluated)} claims hold"
                 + (f" ({len(outcomes) - len(evaluated)} skipped)"
                    if len(evaluated) < len(outcomes) else ""))
    return "\n".join(lines)
