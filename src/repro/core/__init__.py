"""Workload characterization core — the paper's contribution.

Consumes driver traces (:class:`~repro.core.trace.TraceDataset`) and
produces the paper's analyses:

* request-size classification into the three observed classes — 1 KB block
  I/O, 4 KB paging, and >= 8 KB cache-bounded streaming (:mod:`.sizes`);
* spatial locality over sector bands and temporal locality per sector
  (:mod:`.locality`);
* the read/write mix and rate table (:mod:`.metrics`, :mod:`.table`);
* the five experiments — baseline, three single-application runs, and the
  combined multiprogramming run (:mod:`.experiments`);
* per-figure data series and text rendering (:mod:`.figures`).
"""

from repro.core.trace import TraceDataset
from repro.core.sizes import (
    RequestClass,
    classify_sizes,
    size_histogram,
    size_time_series,
)
from repro.core.locality import (
    SpatialLocality,
    TemporalLocality,
    spatial_locality,
    temporal_locality,
)
from repro.core.metrics import WorkloadMetrics, compute_metrics
from repro.core.experiments import (
    ExperimentResult,
    ExperimentRunner,
    EXPERIMENTS,
)
from repro.core.figures import FigureSeries, make_figure
from repro.core.patterns import (
    arrival_structure,
    direction_runs,
    miller_katz_classes,
    sequentiality,
)
from repro.core.report import characterize, full_report
from repro.core.table import table1_rows, render_table1

__all__ = [
    "EXPERIMENTS",
    "arrival_structure",
    "characterize",
    "direction_runs",
    "full_report",
    "miller_katz_classes",
    "sequentiality",
    "ExperimentResult",
    "ExperimentRunner",
    "FigureSeries",
    "RequestClass",
    "SpatialLocality",
    "TemporalLocality",
    "TraceDataset",
    "WorkloadMetrics",
    "classify_sizes",
    "compute_metrics",
    "make_figure",
    "render_table1",
    "size_histogram",
    "size_time_series",
    "spatial_locality",
    "temporal_locality",
    "table1_rows",
]
