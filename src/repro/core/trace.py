"""Trace dataset: vectorised access to driver trace records.

Wraps the structured array produced by the instrumentation with the
filters and persistence the analysis layer needs.  Files round-trip as
``.npy`` (exact) or ``.csv`` (interoperable).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Union

import numpy as np

from repro.driver import TRACE_DTYPE


class TraceDataset:
    """An immutable set of trace records with filtering helpers."""

    def __init__(self, records: np.ndarray):
        records = np.asarray(records)
        if records.dtype != TRACE_DTYPE:
            raise TypeError(f"expected trace dtype, got {records.dtype}")
        self._records = records

    # -- construction ---------------------------------------------------------
    @classmethod
    def empty(cls) -> "TraceDataset":
        return cls(np.zeros(0, dtype=TRACE_DTYPE))

    @classmethod
    def from_records(cls, rows) -> "TraceDataset":
        """Build from an iterable of (time, sector, write, pending,
        size_kb, node) tuples."""
        arr = np.array(list(rows), dtype=TRACE_DTYPE)
        return cls(arr)

    # -- basic protocol ------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __eq__(self, other) -> bool:
        return (isinstance(other, TraceDataset)
                and np.array_equal(self._records, other._records))

    @property
    def records(self) -> np.ndarray:
        """The underlying structured array (treat as read-only)."""
        return self._records

    def __getattr__(self, field: str) -> np.ndarray:
        if field in TRACE_DTYPE.names:
            return self._records[field]
        raise AttributeError(field)

    @property
    def duration(self) -> float:
        """Span from time 0 to the last record."""
        return float(self._records["time"].max()) if len(self) else 0.0

    # -- filters ---------------------------------------------------------------
    def _where(self, mask: np.ndarray) -> "TraceDataset":
        return TraceDataset(self._records[mask])

    def reads(self) -> "TraceDataset":
        return self._where(self._records["write"] == 0)

    def writes(self) -> "TraceDataset":
        return self._where(self._records["write"] == 1)

    def node(self, node_id: int) -> "TraceDataset":
        return self._where(self._records["node"] == node_id)

    def between(self, t0: float, t1: float) -> "TraceDataset":
        t = self._records["time"]
        return self._where((t >= t0) & (t < t1))

    def sector_range(self, lo: int, hi: int) -> "TraceDataset":
        s = self._records["sector"]
        return self._where((s >= lo) & (s < hi))

    def nodes(self) -> np.ndarray:
        return np.unique(self._records["node"])

    def merged_with(self, other: "TraceDataset") -> "TraceDataset":
        merged = np.concatenate([self._records, other._records])
        merged = merged[np.argsort(merged["time"], kind="stable")]
        return TraceDataset(merged)

    # -- persistence ----------------------------------------------------------
    def save(self, path: Union[str, Path]) -> Path:
        """Write by suffix: ``.csv`` (interoperable), ``.rpt`` (chunked
        compressed store), anything else as ``.npy``.

        A trace saves to a single *file* (unlike
        :meth:`~repro.core.experiments.ExperimentResult.save`, which
        writes a directory).  ``path`` may be ``str`` or
        :class:`~pathlib.Path`; the actual path written is returned — a
        suffix-less path is normalised to ``.npy`` so that ``save(p)`` /
        ``load(p)`` always round-trip on the same string (``np.save``
        would silently append the suffix that a symmetric ``np.load``
        then misses).
        """
        path = Path(path)
        if path.suffix == ".csv":
            with path.open("w", newline="") as fh:
                writer = csv.writer(fh)
                writer.writerow(TRACE_DTYPE.names)
                for row in self._records:
                    writer.writerow([row[name] for name in TRACE_DTYPE.names])
        elif path.suffix == ".rpt":
            from repro.store import write_trace
            write_trace(path, self._records)
        else:
            if path.suffix != ".npy":
                path = path.with_name(path.name + ".npy")
            with path.open("wb") as fh:
                np.save(fh, self._records)
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "TraceDataset":
        """Read back a file written by :meth:`save` (suffix-driven).

        ``path`` (``str`` or :class:`~pathlib.Path`) is the trace
        *file*; a suffix-less spelling finds the ``.npy`` that
        :meth:`save` normalised it to.
        """
        path = Path(path)
        if path.suffix == ".csv":
            rows = []
            with path.open() as fh:
                reader = csv.DictReader(fh)
                for row in reader:
                    rows.append((float(row["time"]), int(row["sector"]),
                                 int(row["write"]), int(row["pending"]),
                                 float(row["size_kb"]), int(row["node"])))
            return cls.from_records(rows)
        if path.suffix == ".rpt":
            from repro.store import read_trace
            return cls(read_trace(path))
        if path.suffix != ".npy":
            # save() normalised the name; accept the original spelling
            with_npy = path.with_name(path.name + ".npy")
            if with_npy.exists() or not path.exists():
                path = with_npy
        arr = np.load(path)
        return cls(arr)
