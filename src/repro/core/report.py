"""Full characterization report for one or more experiments.

Assembles everything the paper reports about a workload — the Table 1
row, the size-class decomposition, spatial/temporal locality, access-
pattern structure — into a readable text document (optionally with the
figure plots inlined).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.experiments import ExperimentResult
from repro.core.figures import FIGURE_EXPERIMENT, make_figure
from repro.core.locality import (
    reuse_fraction,
    spatial_locality,
    temporal_locality,
)
from repro.core.patterns import (
    arrival_structure,
    direction_runs,
    miller_katz_classes,
    sequentiality,
)
from repro.core.sizes import class_fractions, size_histogram
from repro.core.table import render_table1


def characterize(result: ExperimentResult,
                 include_figures: bool = False,
                 width: int = 72) -> str:
    """Text characterization of one experiment."""
    trace = result.trace
    m = result.metrics
    lines = [f"=== {result.name} "
             f"({result.nnodes} nodes, {m.duration:.0f} s) ==="]
    if len(trace) == 0:
        lines.append("(no I/O recorded)")
        return "\n".join(lines)

    lines.append(
        f"requests: {m.total_requests} total, "
        f"{m.requests_per_node:.0f}/disk, "
        f"{m.requests_per_second:.2f}/s/disk")
    lines.append(
        f"mix: {m.read_pct}% reads / {m.write_pct}% writes; "
        f"mean size {m.mean_size_kb:.2f} KB; "
        f"mean queue {m.mean_pending:.2f}")
    from repro.core.metrics import class_throughput
    # Per-disk denominators use the true cluster size (idle nodes
    # count), not the number of nodes that happened to issue I/O.
    nnodes = max(m.nnodes, 1)
    throughput = class_throughput(trace, duration=m.duration)
    lines.append(
        f"volume: {m.kb_moved / 1024:.1f} MB moved "
        f"({m.throughput_kb_per_s:.1f} KB/s per disk; "
        + ", ".join(f"{cls.value} {kbps / nnodes:.1f}"
                    for cls, kbps in throughput.items()) + ")")

    hist = size_histogram(trace)
    top = sorted(hist.items(), key=lambda kv: -kv[1])[:6]
    lines.append("sizes: " + ", ".join(
        f"{kb:g}KB x{count}" for kb, count in top))
    classes = class_fractions(trace)
    lines.append("classes: " + ", ".join(
        f"{cls.value} {frac * 100:.1f}%" for cls, frac in classes.items()))

    spatial = spatial_locality(trace)
    busiest_start, busiest_share = spatial.busiest_band()
    lines.append(
        f"spatial: busiest band {busiest_start // 1000}K holds "
        f"{busiest_share * 100:.1f}%; top-20% bands "
        f"{spatial.top_20pct_share * 100:.0f}%; gini {spatial.gini:.2f}"
        + ("  [~80/20]" if spatial.follows_80_20 else ""))

    temporal = temporal_locality(trace)
    hot = temporal.hot_spots(3)
    lines.append("temporal: hot sectors " + ", ".join(
        f"{s:,} ({f:.2f}/s)" for s, f in hot)
        + f"; reuse {reuse_fraction(trace) * 100:.0f}%")

    seq = sequentiality(trace)
    lines.append(
        f"pattern: {seq.sequential_fraction * 100:.1f}% sequential "
        f"(mean run {seq.mean_run_length:.1f}, max {seq.max_run_length})")
    if len(trace) >= 2:
        arrivals = arrival_structure(trace)
        lines.append(
            f"arrivals: mean gap {arrivals.mean_gap * 1000:.1f} ms, "
            f"CV {arrivals.cv_gap:.2f}, IDC {arrivals.idc:.1f}"
            + ("  [bursty]" if arrivals.is_bursty else ""))
    runs = direction_runs(trace)
    lines.append(
        f"trains: mean write-train {runs.mean_write_run:.1f}, "
        f"mean read-train {runs.mean_read_run:.1f}")
    mk = miller_katz_classes(trace)
    lines.append("Miller-Katz: " + ", ".join(
        f"{name} {frac * 100:.1f}%" for name, frac in mk.items()))

    if result.obs:
        from repro.obs import render_snapshot_table
        lines.append("runtime metrics:")
        lines.append(render_snapshot_table({result.name: result.obs},
                                           indent="  "))

    if include_figures:
        for number, exp in sorted(FIGURE_EXPERIMENT.items()):
            if exp == result.name:
                lines.append("")
                lines.append(make_figure(number, result).render(width=width))
    return "\n".join(lines)


def full_report(results: Dict[str, ExperimentResult],
                include_figures: bool = False,
                title: Optional[str] = None) -> str:
    """Multi-experiment report: per-experiment sections plus Table 1."""
    lines = [title or "I/O workload characterization report", ""]
    for result in results.values():
        lines.append(characterize(result, include_figures=include_figures))
        lines.append("")
    lines.append(render_table1(results))
    return "\n".join(lines)
