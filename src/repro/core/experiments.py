"""The five experiments of the study, as repeatable procedures.

Each experiment builds a fresh simulated Beowulf cluster, installs the
application binaries and input files (pre-trace, like software installed
long before the measurements), cold-starts the caches, switches the trace
clock to zero, excites the system, and returns the gathered traces plus
per-application statistics.

Experiment protocol (paper section 3.5):

1. ``baseline`` — no user applications, default 2000 s;
2-4. ``ppm`` / ``wavelet`` / ``nbody`` — one application at a time;
5. ``combined`` — all three simultaneously (the emulated production
   environment, ~700 s in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from time import perf_counter
from typing import Dict, List, Optional, Sequence

from repro.apps import WORKLOADS, AppStats, ESSApplication
from repro.checkpoint import (CheckpointCoordinator, CheckpointError,
                              arm_tick_preloads, capture_state, check_format,
                              drain_to_quiescence, load_checkpoint,
                              restore_cluster_state, save_checkpoint,
                              verify_restored_queue)
from repro.cluster import BeowulfCluster
from repro.config import NodeConfig, Scenario
from repro.core.metrics import WorkloadMetrics, compute_metrics
from repro.core.trace import TraceDataset
from repro.kernel import NodeParams
from repro.sim import Simulator

#: canonical experiment names, in the paper's order
EXPERIMENTS = ("baseline", "ppm", "wavelet", "nbody", "combined")


@dataclass
class ExperimentResult:
    """Everything one experiment produced."""

    name: str
    trace: TraceDataset
    duration: float
    nnodes: int
    app_stats: Dict[str, List[AppStats]] = field(default_factory=dict)
    #: runtime observability snapshot (None unless run with ``obs=True``)
    obs: Optional[dict] = None

    @property
    def metrics(self) -> WorkloadMetrics:
        """Table-1 metrics, via the streaming ``metrics`` pipeline.

        ``compute_metrics`` is an adapter over
        :class:`~repro.analysis.MetricsPipeline`, so this equals what
        :class:`~repro.analysis.AnalysisEngine` reports for the same
        run, bit for bit.
        """
        # nnodes is threaded through explicitly: a node that issued zero
        # requests still divides the per-disk averages (Table 1).
        return compute_metrics(self.trace, label=self.name,
                               duration=self.duration, nnodes=self.nnodes)

    # -- persistence ----------------------------------------------------------
    def save(self, directory: "str | Path") -> "Path":
        """Persist to ``directory``; returns the directory written.

        Experiment results are *directories* (``experiment.json``
        metadata next to a ``trace.npy``), unlike
        :meth:`TraceDataset.save`, which writes a single file.  The
        directory is created if needed; ``str`` and
        :class:`~pathlib.Path` are both accepted.
        """
        import json
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        self.trace.save(directory / "trace.npy")
        meta = {
            "format": "repro-experiment-v1",
            "name": self.name,
            "duration": self.duration,
            "nnodes": self.nnodes,
            "app_stats": {
                app: [{"started_at": s.started_at,
                       "finished_at": s.finished_at,
                       "bytes_read": s.bytes_read,
                       "bytes_written": s.bytes_written,
                       "compute_seconds": s.compute_seconds,
                       "pages_touched": s.pages_touched,
                       "messages_sent": s.messages_sent}
                      for s in stats_list]
                for app, stats_list in self.app_stats.items()
            },
        }
        if self.obs is not None:
            meta["obs"] = self.obs
        (directory / "experiment.json").write_text(json.dumps(meta, indent=2))
        return directory

    @classmethod
    def load(cls, directory: "str | Path") -> "ExperimentResult":
        """Load a result saved by :meth:`save`.

        ``directory`` (``str`` or :class:`~pathlib.Path`) is the
        experiment *directory*, not a file inside it.
        """
        import json
        directory = Path(directory)
        meta = json.loads((directory / "experiment.json").read_text())
        if meta.get("format") != "repro-experiment-v1":
            raise ValueError("not a repro experiment directory")
        app_stats = {
            app: [AppStats(**fields) for fields in stats_list]
            for app, stats_list in meta["app_stats"].items()
        }
        return cls(name=meta["name"],
                   trace=TraceDataset.load(directory / "trace.npy"),
                   duration=float(meta["duration"]),
                   nnodes=int(meta["nnodes"]),
                   app_stats=app_stats,
                   obs=meta.get("obs"))


#: entry points removed after their deprecation cycle -> replacement
_REMOVED_RUNNERS = {
    "run_baseline": 'run("baseline", duration=...)',
    "run_single": "run(app_name)",
    "run_combined": 'run("combined")',
    "run_serial": 'run("serial")',
}


def _run_one_experiment(args) -> "ExperimentResult":
    """Top-level worker for ProcessPoolExecutor (must be picklable)."""
    scenario_dict, name, sink, obs = args
    runner = ExperimentRunner(scenario=Scenario.from_dict(scenario_dict),
                              sink=sink, obs=obs)
    return runner.run(name)


class ExperimentRunner:
    """Builds clusters and runs the study's experiments on them.

    With ``sink=`` set to a directory, every run is also captured into a
    :class:`~repro.store.RunCatalog` there: per-node ``.rpt`` trace files
    stream to disk *during* the experiment (bounded writer memory) and a
    ``manifest.json`` with config, seed, and summary metrics is written
    at the end.

    With ``obs=True``, each run gets a fresh
    :class:`~repro.obs.ObsRecorder`: the simulator and disks record live
    counters/histograms, node and store counters are harvested at the
    end, and the snapshot lands on ``result.obs`` (and in the catalog
    manifest when a sink is set).  The last run's recorder stays on
    ``runner.last_obs``.
    """

    def __init__(self, nnodes: Optional[int] = None,
                 seed: Optional[int] = None,
                 node_params: Optional[NodeParams] = None,
                 housekeeping_message_rate: Optional[float] = None,
                 baseline_duration: Optional[float] = None,
                 hard_limit: Optional[float] = None,
                 flush_grace: Optional[float] = None,
                 sink=None,
                 obs: bool = False,
                 scenario: Optional[Scenario] = None):
        base = scenario if scenario is not None else Scenario()
        overrides: Dict[str, object] = {}
        if nnodes is not None:
            overrides["cluster.nnodes"] = nnodes
        elif scenario is None:
            overrides["cluster.nnodes"] = 4   # historical runner default
        if seed is not None:
            overrides["seed"] = seed
        if housekeeping_message_rate is not None:
            overrides["cluster.housekeeping_message_rate"] = \
                housekeeping_message_rate
        if baseline_duration is not None:
            overrides["experiment.baseline_duration"] = baseline_duration
        if hard_limit is not None:
            overrides["experiment.hard_limit"] = hard_limit
        if flush_grace is not None:
            overrides["experiment.flush_grace"] = flush_grace
        if overrides:
            base = base.with_overrides(overrides)
        if node_params is not None:
            base = replace(base,
                           node=NodeConfig.from_node_params(node_params))
        #: the fully-resolved scenario this runner executes
        self.scenario = base.validate()
        self.nnodes = base.cluster.nnodes
        self.seed = base.seed
        self.node_params = node_params
        self.housekeeping_message_rate = \
            base.cluster.housekeeping_message_rate
        self.baseline_duration = base.experiment.baseline_duration
        self.hard_limit = base.experiment.hard_limit
        self.flush_grace = base.experiment.flush_grace
        self.sink = sink
        self.obs = obs
        #: ObsRecorder of the most recent run (None without obs)
        self.last_obs = None
        self._recorder = None
        self._wall_start = 0.0

    # -- public API --------------------------------------------------------
    def run(self, name: str, *,
            duration: Optional[float] = None,
            checkpoint_every: Optional[float] = None,
            checkpoint_dir=None,
            resume_from=None) -> ExperimentResult:
        """Run one experiment by name — the single entry point.

        ``name`` is one of :data:`EXPERIMENTS` or ``"serial"``.
        ``duration`` sets the baseline observation window (default
        ``baseline_duration``); application experiments run until their
        applications finish, so passing a duration for them is an error.

        ``checkpoint_every`` captures the whole stack into a ``.ckpt``
        file every that many simulated seconds (under
        ``checkpoint_dir``, default ``checkpoints/``).  ``resume_from``
        restores such a file and continues the run; the continuation is
        bit-identical to the uninterrupted (checkpointing) run — same
        trace records, same metrics, same obs counters.
        """
        if resume_from is not None:
            return self._resume(resume_from, name=name, duration=duration,
                                checkpoint_every=checkpoint_every,
                                checkpoint_dir=checkpoint_dir)
        if name == "baseline":
            return self._run_baseline(duration,
                                      checkpoint_every=checkpoint_every,
                                      checkpoint_dir=checkpoint_dir)
        if duration is not None:
            raise ValueError(
                "duration= only applies to the baseline experiment; "
                "application runs end when the applications do")
        mix = list(self.scenario.workload.mix)
        if name == "combined":
            return self._run_apps(mix, name="combined",
                                  checkpoint_every=checkpoint_every,
                                  checkpoint_dir=checkpoint_dir)
        if name == "serial":
            # Extension: the same applications back to back — a
            # batch-queue counterfactual to ``combined`` (identical work,
            # no multiprogramming) that isolates what concurrency itself
            # does to the I/O.
            return self._run_apps(mix, name="serial", serial=True,
                                  checkpoint_every=checkpoint_every,
                                  checkpoint_dir=checkpoint_dir)
        if name in WORKLOADS:
            return self._run_apps([name],
                                  checkpoint_every=checkpoint_every,
                                  checkpoint_dir=checkpoint_dir)
        raise ValueError(f"unknown experiment {name!r}; "
                         f"choose from {EXPERIMENTS + ('serial',)}")

    def run_all(self, parallel: bool = False,
                max_workers: Optional[int] = None,
                names: Optional[Sequence[str]] = None
                ) -> Dict[str, ExperimentResult]:
        """Run the five experiments (or ``names``); ``parallel=True``
        uses one process per experiment (they are fully independent
        simulations)."""
        names = tuple(names) if names is not None else EXPERIMENTS
        if not parallel:
            return {name: self.run(name) for name in names}
        import concurrent.futures
        sink = str(self.sink) if self.sink is not None else None
        scenario_dict = self.scenario.to_dict()
        args = [(scenario_dict, name, sink, bool(self.obs))
                for name in names]
        with concurrent.futures.ProcessPoolExecutor(
                max_workers=max_workers or len(names)) as pool:
            results = list(pool.map(_run_one_experiment, args))
        return dict(zip(names, results))

    def __getattr__(self, name: str):
        # the PR-3 deprecation shims (run_baseline/run_single/
        # run_combined/run_serial) are gone; point stragglers at run()
        if name in _REMOVED_RUNNERS:
            raise AttributeError(
                f"ExperimentRunner.{name}() was removed; use "
                f"ExperimentRunner.{_REMOVED_RUNNERS[name]}")
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}")

    # -- workload assembly ---------------------------------------------------
    def make_app(self, app_name: str, node) -> ESSApplication:
        """Instantiate a workload model configured for this cluster.

        The model and its params class come from the
        :data:`~repro.apps.WORKLOADS` registry; scenario
        ``workload.params`` overrides are applied on top of the
        cluster-derived defaults.
        """
        entry = WORKLOADS.get(app_name)
        kwargs = {"nnodes": self.nnodes}
        kwargs.update(self.scenario.workload.params_for(app_name))
        params = entry.params_cls(**kwargs)
        return entry.app_cls(node, seed=self.seed, params=params)

    # -- internals ------------------------------------------------------------
    def _build(self):
        registry = None
        self._recorder = None
        if self.obs:
            from repro.obs import ObsRecorder
            self._recorder = self.obs if isinstance(self.obs, ObsRecorder) \
                else ObsRecorder()
            registry = self._recorder.registry
        self.last_obs = self._recorder
        self._wall_start = perf_counter()
        sim = Simulator(obs=registry,
                        queue=self.scenario.engine.event_queue)
        cluster = BeowulfCluster(sim, scenario=self.scenario, obs=registry)
        #: the most recent cluster, kept for post-experiment inspection
        #: (filesystem checks, kernel statistics)
        self.last_cluster = cluster
        return sim, cluster

    def _settle(self, sim: Simulator, cluster: BeowulfCluster,
                setup_procs: Optional[list] = None) -> None:
        """Run setup, quiesce the caches, and zero the trace clocks."""
        sim.run(until=sim.now + 5.0)
        if setup_procs and not all(p.triggered for p in setup_procs):
            raise RuntimeError("experiment setup did not finish in time")
        # Write back install-time dirt.  Clean buffers stay cached: the
        # measured system had been running long before the experiments, so
        # hot metadata (inode table, directories) lives in the buffer
        # cache, while application binaries and input data — never read
        # yet — are cold on disk.
        for node in cluster.nodes:
            sim.process(node.kernel.cache.sync(),
                        name=f"sync:{node.node_id}")
        sim.run(until=sim.now + 30.0)
        cluster.reset_trace_clocks()

    def _run_baseline(self, duration: Optional[float],
                      checkpoint_every: Optional[float] = None,
                      checkpoint_dir=None) -> ExperimentResult:
        """Quiescent system: only kernel housekeeping and logging run."""
        duration = duration or self.baseline_duration
        sim, cluster = self._build()
        self._settle(sim, cluster)
        capture = self._start_capture("baseline", cluster)
        t0 = sim.now
        if checkpoint_every is None:
            sim.run(until=t0 + duration)
        else:
            path = self._checkpoint_target(checkpoint_dir, "baseline")
            self._baseline_epochs(sim, cluster, t0=t0, every=checkpoint_every,
                                  duration=duration, path=path)
        trace = TraceDataset(cluster.gather_traces()).between(0, duration)
        result = ExperimentResult(name="baseline", trace=trace,
                                  duration=duration, nnodes=self.nnodes)
        self._finish_capture(capture, cluster, result)
        return result

    def _run_apps(self, app_names: List[str],
                  name: Optional[str] = None,
                  serial: bool = False,
                  checkpoint_every: Optional[float] = None,
                  checkpoint_dir=None) -> ExperimentResult:
        sim, cluster = self._build()
        apps: Dict[str, List[ESSApplication]] = {n: [] for n in app_names}
        setup_procs = []
        for node in cluster.nodes:
            for app_name in app_names:
                app = self.make_app(app_name, node)
                apps[app_name].append(app)
                setup_procs.append(
                    sim.process(app.install(),
                                name=f"install:{app_name}:{node.node_id}"))
        self._settle(sim, cluster, setup_procs)
        capture = self._start_capture(name or app_names[0], cluster)

        t0 = sim.now
        coordinator = None
        if checkpoint_every is not None:
            coordinator = CheckpointCoordinator(sim)
            for app_name in app_names:
                for app in apps[app_name]:
                    app.attach_coordinator(coordinator)
        procs = self._spawn_apps(cluster, apps, app_names, serial)
        deadline = t0 + self.hard_limit
        done = sim.all_of(procs)
        if checkpoint_every is None:
            sim.run(until=deadline, stop=done)
        else:
            path = self._checkpoint_target(checkpoint_dir,
                                           name or app_names[0])
            self._apps_epochs(sim, cluster, coordinator=coordinator,
                              apps=apps, t0=t0, deadline=deadline, done=done,
                              every=checkpoint_every, path=path,
                              name=name or app_names[0],
                              app_names=app_names, serial=serial)
        if not done.triggered:
            raise RuntimeError(
                f"experiment {name or app_names} exceeded the "
                f"{self.hard_limit}s hard limit")
        finish = sim.now
        # Grace period: let the write-back daemons flush the tail.
        sim.run(until=finish + self.flush_grace)
        duration = finish - t0 + self.flush_grace
        trace = TraceDataset(cluster.gather_traces()).between(0, duration)
        result = ExperimentResult(
            name=name or app_names[0],
            trace=trace,
            duration=duration,
            nnodes=self.nnodes,
            app_stats={n: [a.stats for a in apps[n]] for n in app_names},
        )
        self._finish_capture(capture, cluster, result)
        return result

    def _spawn_apps(self, cluster: BeowulfCluster, apps, app_names, serial):
        """Spawn the application processes; identical on first run and
        resume (the spawn structure — chains vs. one process per app —
        must match for the continuation to be bit-identical)."""
        procs = []
        if serial:
            # one chain per node running its applications back to back
            def chain(node_apps):
                for app in node_apps:
                    yield from app.run()

            for node in cluster.nodes:
                node_apps = [apps[a][node.node_id] for a in app_names]
                procs.append(node.kernel.spawn(
                    chain(node_apps), name=f"serial:{node.node_id}"))
        else:
            for app_name in app_names:
                for app in apps[app_name]:
                    procs.append(app.kernel.spawn(
                        app.run(), name=f"{app_name}:{app.node_id}"))
        return procs

    # -- checkpoint epochs -----------------------------------------------------
    def _registry(self):
        return None if self._recorder is None else self._recorder.registry

    def _checkpoint_target(self, checkpoint_dir, name: str) -> Path:
        """Where checkpoints land: ``checkpoint_dir`` is a directory
        (default ``checkpoints/``) or, when it ends in ``.ckpt``, the
        exact target file (how sweep points pin per-fingerprint files)."""
        if checkpoint_dir is not None \
                and str(checkpoint_dir).endswith(".ckpt"):
            path = Path(checkpoint_dir)
            path.parent.mkdir(parents=True, exist_ok=True)
            return path
        directory = Path(checkpoint_dir) if checkpoint_dir is not None \
            else Path("checkpoints")
        directory.mkdir(parents=True, exist_ok=True)
        stem = name
        if self.scenario.name not in ("", "default"):
            stem = f"{name}@{self.scenario.name}"
        return directory / f"{stem}.ckpt"

    def _ckpt_meta(self, *, kind: str, name: str, t0: float, every: float,
                   epoch: int, duration: Optional[float] = None,
                   app_names=None, serial: bool = False) -> dict:
        meta = {"experiment": name, "kind": kind, "t0": t0,
                "checkpoint_every": every, "epoch": epoch,
                "scenario": self.scenario.to_dict()}
        if duration is not None:
            meta["duration"] = duration
        if app_names is not None:
            meta["app_names"] = list(app_names)
            meta["serial"] = bool(serial)
        return meta

    def _baseline_epochs(self, sim: Simulator, cluster: BeowulfCluster, *,
                         t0: float, every: float, duration: float,
                         path: Path) -> None:
        """Run the observation window, capturing at ``t0 + k*every``.

        The schedule is *absolute*: a settle() that overshoots an epoch
        does not shift the later ones, so a resumed run recomputes the
        identical schedule from the restored clock.
        """
        end = t0 + duration
        while sim.now < end:
            k = int((sim.now - t0) // every) + 1
            target = min(end, t0 + k * every)
            if target > sim.now:
                sim.run(until=target)
            if sim.now >= end:
                break
            sim.settle()
            meta = self._ckpt_meta(kind="baseline", name="baseline", t0=t0,
                                   every=every, epoch=k, duration=duration)
            tree = capture_state(sim, cluster, obs=self._registry(),
                                 meta=meta)
            save_checkpoint(tree, path)

    def _apps_epochs(self, sim: Simulator, cluster: BeowulfCluster, *,
                     coordinator: CheckpointCoordinator, apps, t0: float,
                     deadline: float, done, every: float, path: Path,
                     name: str, app_names, serial: bool) -> None:
        """Run the applications, holding + capturing at ``t0 + k*every``."""
        while True:
            k = int((sim.now - t0) // every) + 1
            target = min(deadline, t0 + k * every)
            if target > sim.now:
                sim.run(until=target, stop=done)
            if done.triggered or sim.now >= deadline:
                return
            coordinator.arm()
            budget = 5_000_000
            while not coordinator.all_held:
                sim.step()
                budget -= 1
                if budget <= 0:
                    raise CheckpointError(
                        "applications never reached their hold points")
            if done.triggered:
                coordinator.release()
                return
            sim.settle()
            app_map = {f"{a.name}:{a.node_id}": a
                       for fam in app_names for a in apps[fam]}
            meta = self._ckpt_meta(kind="apps", name=name, t0=t0,
                                   every=every, epoch=k,
                                   app_names=app_names, serial=serial)
            tree = capture_state(sim, cluster, apps=app_map,
                                 obs=self._registry(), meta=meta)
            save_checkpoint(tree, path)
            coordinator.release()

    # -- resume ----------------------------------------------------------------
    def _resume(self, resume_from, *, name: Optional[str],
                duration: Optional[float],
                checkpoint_every: Optional[float],
                checkpoint_dir) -> ExperimentResult:
        tree = check_format(load_checkpoint(resume_from))
        meta = tree["meta"]
        if name is not None and name != meta["experiment"]:
            raise CheckpointError(
                f"checkpoint is for experiment {meta['experiment']!r}, "
                f"not {name!r}")
        if meta["scenario"] != self.scenario.to_dict():
            raise CheckpointError(
                "checkpoint was captured under a different scenario; "
                "construct the runner from the same one to resume")
        # the continuation must re-arm at the same epochs to stay
        # bit-identical; overriding the cadence is an explicit choice
        every = checkpoint_every if checkpoint_every is not None \
            else meta["checkpoint_every"]
        if meta["kind"] == "baseline":
            if duration is not None and duration != meta["duration"]:
                raise CheckpointError(
                    f"checkpoint observed a {meta['duration']}s window; "
                    f"cannot resume it as {duration}s")
            return self._resume_baseline(tree, resume_from, every,
                                         checkpoint_dir)
        if duration is not None:
            raise ValueError(
                "duration= only applies to the baseline experiment; "
                "application runs end when the applications do")
        return self._resume_apps(tree, resume_from, every, checkpoint_dir)

    def _resume_build(self, tree: dict):
        """Rebuild a simulator + cluster around a checkpoint tree.

        Order matters: the clock and tick preloads are staged *before*
        the cluster exists, so every daemon's first sleep replays its
        snapshotted queue entry; layer state goes back before any event
        fires.
        """
        registry = None
        self._recorder = None
        if self.obs:
            from repro.obs import ObsRecorder
            self._recorder = self.obs if isinstance(self.obs, ObsRecorder) \
                else ObsRecorder()
            registry = self._recorder.registry
        self.last_obs = self._recorder
        self._wall_start = perf_counter()
        sim = Simulator(obs=registry,
                        queue=self.scenario.engine.event_queue)
        sim.restore_clock(tree["clock"])
        arm_tick_preloads(sim, tree)
        cluster = BeowulfCluster(sim, scenario=self.scenario, obs=registry)
        self.last_cluster = cluster
        restore_cluster_state(cluster, tree)
        return sim, cluster

    def _restore_obs(self, tree: dict) -> None:
        """Put back the captured metrics (after the drain, which itself
        counts events; live instrument references stay valid because the
        restore mutates in place)."""
        if self._recorder is not None and tree["obs"] is not None:
            self._recorder.registry.restore_state(tree["obs"])

    def _reseed_writers(self, capture, cluster: BeowulfCluster) -> None:
        """Seed fresh streaming writers with the records captured before
        the checkpoint, so a resumed run's ``.rpt`` files hold the whole
        trace from t=0."""
        if capture is None:
            return
        for node in cluster.nodes:
            buffered = node.kernel.transport.user_buffer.to_array()
            if len(buffered):
                capture.writer_for(node.node_id).append_array(buffered)

    def _resume_baseline(self, tree: dict, resume_path,
                         every: Optional[float],
                         checkpoint_dir) -> ExperimentResult:
        meta = tree["meta"]
        t0 = float(meta["t0"])
        duration = float(meta["duration"])
        sim, cluster = self._resume_build(tree)
        capture = self._start_capture("baseline", cluster)
        self._reseed_writers(capture, cluster)
        drain_to_quiescence(sim)
        verify_restored_queue(sim, tree)
        self._restore_obs(tree)
        end = t0 + duration
        if every is None:
            if end > sim.now:
                sim.run(until=end)
        else:
            path = Path(resume_path) if checkpoint_dir is None \
                else self._checkpoint_target(checkpoint_dir, "baseline")
            self._baseline_epochs(sim, cluster, t0=t0, every=every,
                                  duration=duration, path=path)
        trace = TraceDataset(cluster.gather_traces()).between(0, duration)
        result = ExperimentResult(name="baseline", trace=trace,
                                  duration=duration, nnodes=self.nnodes)
        self._finish_capture(capture, cluster, result)
        return result

    def _resume_apps(self, tree: dict, resume_path, every: Optional[float],
                     checkpoint_dir) -> ExperimentResult:
        meta = tree["meta"]
        name = meta["experiment"]
        app_names = list(meta["app_names"])
        serial = bool(meta["serial"])
        t0 = float(meta["t0"])
        sim, cluster = self._resume_build(tree)
        coordinator = CheckpointCoordinator(sim)
        coordinator.arm_for_resume()
        apps: Dict[str, List[ESSApplication]] = {n: [] for n in app_names}
        tokens = tree["apps"]
        for node in cluster.nodes:
            for app_name in app_names:
                app = self.make_app(app_name, node)
                app.attach_coordinator(coordinator)
                key = f"{app_name}:{node.node_id}"
                if key not in tokens:
                    raise CheckpointError(
                        f"checkpoint lacks a resume token for {key}")
                app.resume_from(tokens[key])
                apps[app_name].append(app)
        capture = self._start_capture(name, cluster)
        self._reseed_writers(capture, cluster)
        procs = self._spawn_apps(cluster, apps, app_names, serial)
        drain_to_quiescence(sim)
        if not coordinator.all_held:
            raise CheckpointError(
                "resumed applications did not park on their holds")
        verify_restored_queue(sim, tree)
        self._restore_obs(tree)
        deadline = t0 + self.hard_limit
        done = sim.all_of(procs)
        coordinator.release()
        if every is None:
            sim.run(until=deadline, stop=done)
        else:
            path = Path(resume_path) if checkpoint_dir is None \
                else self._checkpoint_target(checkpoint_dir, name)
            self._apps_epochs(sim, cluster, coordinator=coordinator,
                              apps=apps, t0=t0, deadline=deadline, done=done,
                              every=every, path=path, name=name,
                              app_names=app_names, serial=serial)
        if not done.triggered:
            raise RuntimeError(
                f"experiment {name} exceeded the "
                f"{self.hard_limit}s hard limit")
        finish = sim.now
        sim.run(until=finish + self.flush_grace)
        duration = finish - t0 + self.flush_grace
        trace = TraceDataset(cluster.gather_traces()).between(0, duration)
        result = ExperimentResult(
            name=name,
            trace=trace,
            duration=duration,
            nnodes=self.nnodes,
            app_stats={n: [a.stats for a in apps[n]] for n in app_names},
        )
        self._finish_capture(capture, cluster, result)
        return result

    # -- streaming capture -----------------------------------------------------
    def _start_capture(self, name: str, cluster: BeowulfCluster):
        """Attach per-node store writers when a ``sink`` is configured.

        Called after :meth:`_settle` so the streamed files start at the
        zeroed trace clock, exactly like the in-memory capture.
        """
        if self.sink is None:
            return None
        from repro.store import RunCatalog
        catalog = self.sink if isinstance(self.sink, RunCatalog) \
            else RunCatalog(self.sink)
        run_name = name
        if self.scenario.name not in ("", "default"):
            run_name = f"{name}@{self.scenario.name}"
        capture = catalog.start_run(
            run_name, nnodes=self.nnodes, seed=self.seed,
            config={"nnodes": self.nnodes,
                    "baseline_duration": self.baseline_duration,
                    "housekeeping_message_rate":
                        self.housekeeping_message_rate,
                    "hard_limit": self.hard_limit,
                    "flush_grace": self.flush_grace},
            scenario=self.scenario.to_dict())
        capture.attach(cluster)
        return capture

    def _finish_capture(self, capture, cluster: BeowulfCluster,
                        result: ExperimentResult) -> None:
        """Seal the run: close streamed files, collect observability,
        and write the manifest (traces already fully drained by
        ``gather_traces``)."""
        if capture is not None:
            capture.detach(cluster)
            # spill writer tails *before* harvesting the store counters
            capture.close_writers()
        recorder = self._recorder
        if recorder is not None:
            recorder.collect_cluster(cluster)
            if capture is not None:
                recorder.collect_capture(capture)
            recorder.collect_run(
                wall_seconds=perf_counter() - self._wall_start,
                sim_seconds=result.duration)
            result.obs = recorder.snapshot()
        if capture is not None:
            capture.finalize(result)
            #: directory of the last captured run, for callers/tests
            self.last_run_dir = capture.directory
