"""Queueing analysis of the disk subsystem.

Two purposes:

* **measurement** — utilization, queue-depth, and response-time summaries
  from traces (using the `pending` field the paper's driver logged, plus
  VERBOSE-paired latencies when available);
* **validation** — the M/G/1 Pollaczek-Khinchine prediction for mean
  waiting time under Poisson arrivals, checked against the simulated
  disk in the tests.  Agreement there says the disk/queue model behaves
  like real queueing theory expects, which grounds the replay-based
  design-tuning results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.trace import TraceDataset


@dataclass(frozen=True)
class QueueSummary:
    """Queue-view of a trace (driver-entry snapshot statistics)."""

    mean_pending: float
    p95_pending: float
    max_pending: int
    #: fraction of requests that arrived at an idle device (pending == 1)
    idle_arrival_fraction: float


def queue_summary(trace: TraceDataset) -> QueueSummary:
    """Summarise the `pending` counts the instrumentation recorded."""
    if len(trace) == 0:
        raise ValueError("empty trace")
    pending = trace.pending.astype(np.float64)
    return QueueSummary(
        mean_pending=float(pending.mean()),
        p95_pending=float(np.percentile(pending, 95)),
        max_pending=int(pending.max()),
        idle_arrival_fraction=float((pending <= 1).mean()),
    )


def mg1_mean_wait(arrival_rate: float, service_mean: float,
                  service_scv: float) -> float:
    """Pollaczek-Khinchine mean *waiting* time (time in queue).

    ``service_scv`` is the squared coefficient of variation of the
    service time.  Requires utilization < 1.
    """
    if arrival_rate <= 0 or service_mean <= 0:
        raise ValueError("rate and service mean must be positive")
    rho = arrival_rate * service_mean
    if rho >= 1:
        raise ValueError(f"unstable queue (utilization {rho:.3f} >= 1)")
    return (rho * service_mean * (1 + service_scv)) / (2 * (1 - rho))


def mg1_mean_response(arrival_rate: float, service_mean: float,
                      service_scv: float) -> float:
    """Mean response time (wait + service)."""
    return mg1_mean_wait(arrival_rate, service_mean, service_scv) \
        + service_mean


@dataclass(frozen=True)
class DiskQueueValidation:
    """Measured vs. predicted response time for one disk run."""

    arrival_rate: float
    utilization: float
    measured_mean_response: float
    predicted_mean_response: float

    @property
    def relative_error(self) -> float:
        return abs(self.measured_mean_response
                   - self.predicted_mean_response) \
            / self.predicted_mean_response


def validate_disk_against_mg1(disk, arrival_rate: float,
                              service_mean: Optional[float] = None,
                              service_scv: Optional[float] = None
                              ) -> DiskQueueValidation:
    """Compare a finished disk's measured latency with M/G/1 theory.

    ``service_mean``/``service_scv`` default to the disk's own busy-time
    accounting (mean service) and an estimated SCV from its latency
    samples minus queueing — callers with known service statistics should
    pass them explicitly for the cleanest comparison.
    """
    stats = disk.stats
    if stats.requests == 0:
        raise ValueError("disk served no requests")
    if service_mean is None:
        service_mean = stats.busy_time / stats.requests
    if service_scv is None:
        service_scv = 0.3      # rough default for random single-block I/O
    predicted = mg1_mean_response(arrival_rate, service_mean, service_scv)
    return DiskQueueValidation(
        arrival_rate=arrival_rate,
        utilization=arrival_rate * service_mean,
        measured_mean_response=stats.mean_latency,
        predicted_mean_response=predicted,
    )
