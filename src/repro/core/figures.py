"""Per-figure data series and rendering.

``make_figure(n, result)`` returns the data behind the paper's Figure *n*
computed from an :class:`~repro.core.experiments.ExperimentResult`, as a
:class:`FigureSeries` that renders to text (ASCII plot) and exports to CSV.

Figure map (paper section 4):

1. baseline — sector number vs. time;
2. PPM — request size vs. time;
3. wavelet — request size vs. time;
4. N-body — request size vs. time;
5. combined — request size vs. time;
6. combined — sector number vs. time;
7. combined — spatial locality (% of requests per 100K-sector band);
8. combined — temporal locality (accesses/sec per sector).
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Union

import numpy as np

from repro.core.experiments import ExperimentResult
from repro.core.locality import spatial_locality, temporal_locality
from repro.core.sizes import size_time_series
from repro.viz import bar_chart, scatter

#: which experiment each figure is computed from
FIGURE_EXPERIMENT: Dict[int, str] = {
    1: "baseline", 2: "ppm", 3: "wavelet", 4: "nbody",
    5: "combined", 6: "combined", 7: "combined", 8: "combined",
}

_KIND = {
    1: ("scatter", "time (s)", "sector"),
    2: ("scatter", "time (s)", "request size (KB)"),
    3: ("scatter", "time (s)", "request size (KB)"),
    4: ("scatter", "time (s)", "request size (KB)"),
    5: ("scatter", "time (s)", "request size (KB)"),
    6: ("scatter", "time (s)", "sector"),
    7: ("bar", "sector band", "% of I/O requests"),
    8: ("scatter", "sector", "accesses / s"),
}

_TITLES = {
    1: "Figure 1. I/O Requests (baseline)",
    2: "Figure 2. Request Size (PPM)",
    3: "Figure 3. Request Size (wavelet)",
    4: "Figure 4. Request Size (N-Body)",
    5: "Figure 5. Request Size (combined)",
    6: "Figure 6. I/O Requests (combined)",
    7: "Figure 7. Spatial Locality (combined)",
    8: "Figure 8. Temporal Locality (combined)",
}


@dataclass
class FigureSeries:
    """One figure's data: x/y arrays plus rendering metadata."""

    number: int
    title: str
    kind: str                 # "scatter" | "bar"
    xlabel: str
    ylabel: str
    x: np.ndarray
    y: np.ndarray
    labels: list = field(default_factory=list)   # bar charts only

    def render(self, width: int = 72, height: int = 20) -> str:
        if self.kind == "bar":
            return bar_chart(self.labels, self.y * 100, title=self.title,
                             fmt="{:.1f}%")
        return scatter(self.x, self.y, width=width, height=height,
                       xlabel=self.xlabel, ylabel=self.ylabel,
                       title=self.title)

    def to_csv(self, path: Union[str, Path]) -> None:
        path = Path(path)
        with path.open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow([self.xlabel, self.ylabel])
            for xv, yv in zip(self.x, self.y):
                writer.writerow([xv, yv])

    def to_svg(self, path: Union[str, Path], width: int = 640,
               height: int = 400) -> None:
        """Write the figure as a standalone SVG graphic."""
        from repro.viz import svg_bar_chart, svg_scatter
        if self.kind == "bar":
            document = svg_bar_chart(self.labels, self.y * 100,
                                     width=width, height=height,
                                     xlabel=self.xlabel,
                                     ylabel=self.ylabel, title=self.title)
        else:
            document = svg_scatter(self.x, self.y, width=width,
                                   height=height, xlabel=self.xlabel,
                                   ylabel=self.ylabel, title=self.title)
        Path(path).write_text(document)


def make_figure(number: int, result: ExperimentResult) -> FigureSeries:
    """Compute Figure ``number`` from an experiment result.

    The result's experiment must match :data:`FIGURE_EXPERIMENT` (e.g.
    Figure 3 needs the wavelet run).
    """
    if number not in FIGURE_EXPERIMENT:
        raise ValueError(f"no Figure {number}; the paper has Figures 1-8")
    expected = FIGURE_EXPERIMENT[number]
    if result.name != expected:
        raise ValueError(
            f"Figure {number} is computed from the {expected!r} experiment, "
            f"got {result.name!r}")
    kind, xlabel, ylabel = _KIND[number]
    title = _TITLES[number]
    trace = result.trace

    if number in (1, 6):
        x = trace.time.copy()
        y = trace.sector.astype(np.float64)
    elif number in (2, 3, 4, 5):
        x, y = size_time_series(trace)
    elif number == 7:
        spatial = spatial_locality(trace)
        nonzero = spatial.band_fraction > 0
        labels = [f"{int(s / 1000)}K" for s in spatial.band_start[nonzero]]
        return FigureSeries(number=number, title=title, kind=kind,
                            xlabel=xlabel, ylabel=ylabel,
                            x=spatial.band_start[nonzero].astype(np.float64),
                            y=spatial.band_fraction[nonzero],
                            labels=labels)
    else:  # Figure 8
        temporal = temporal_locality(trace)
        x = temporal.sectors.astype(np.float64)
        y = temporal.frequency
    return FigureSeries(number=number, title=title, kind=kind,
                        xlabel=xlabel, ylabel=ylabel, x=x, y=y)
