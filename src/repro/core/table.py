"""Table 1: the read/write distribution across experiments.

The paper's Table 1 reports, per experiment, the percentage of reads and
writes, requests per second, and the total number of requests (averaged
per disk over the cluster).
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.experiments import EXPERIMENTS, ExperimentResult
from repro.core.metrics import WorkloadMetrics

#: the paper's published values, for side-by-side reporting.  Blank cells
#: (lost to the scan) are None.
PAPER_TABLE1 = {
    "baseline": {"reads_pct": 0, "writes_pct": 100,
                 "requests_per_sec": 0.9, "total_requests": 1782},
    "ppm": {"reads_pct": 4, "writes_pct": 96,
            "requests_per_sec": None, "total_requests": None},
    "wavelet": {"reads_pct": 49, "writes_pct": 51,
                "requests_per_sec": None, "total_requests": None},
    "nbody": {"reads_pct": 13, "writes_pct": 87,
              "requests_per_sec": None, "total_requests": None},
}


def table1_rows(results: Dict[str, ExperimentResult]) -> List[WorkloadMetrics]:
    """Metrics rows in the paper's order, for whichever experiments ran."""
    rows = []
    for name in EXPERIMENTS:
        if name in results:
            rows.append(results[name].metrics)
    return rows


def render_table1(results: Dict[str, ExperimentResult],
                  include_paper: bool = True) -> str:
    """Text rendering of Table 1, optionally with the paper's numbers."""
    rows = table1_rows(results)
    lines = ["Table 1. I/O Requests (average per disk)",
             f"{'Application':<12} {'reads':>6} {'writes':>7} "
             f"{'req/s':>7} {'total':>8}"]
    for m in rows:
        lines.append(f"{m.label:<12} {m.read_pct:>5}% {m.write_pct:>6}% "
                     f"{m.requests_per_second:>7.2f} "
                     f"{m.requests_per_node:>8.0f}")
        paper = PAPER_TABLE1.get(m.label) if include_paper else None
        if paper:
            rps = paper["requests_per_sec"]
            tot = paper["total_requests"]
            lines.append(
                f"{'  (paper)':<12} {paper['reads_pct']:>5}% "
                f"{paper['writes_pct']:>6}% "
                f"{rps if rps is not None else '--':>7} "
                f"{tot if tot is not None else '--':>8}")
    return "\n".join(lines)
