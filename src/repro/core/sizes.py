"""Request-size analysis: the paper's three-class decomposition.

Section 5 of the paper identifies three primary request-size categories,
each a signature of a kernel mechanism:

* **BLOCK** — small requests at the 1 KB filesystem block size (and small
  multiples from write-back clustering): explicit small I/O and logging;
* **PAGE** — 4 KB requests: demand paging and swap traffic;
* **CACHE** — sizes approaching multiples of the 16 KB cache: streaming
  reads through the scaled I/O buffers.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, Tuple

import numpy as np

from repro.core.trace import TraceDataset


class RequestClass(Enum):
    """The paper's request-size classes."""

    BLOCK = "block"     # 1-3 KB: block I/O and its write-back clusters
    PAGE = "page"       # exactly the page size (4 KB by default)
    CACHE = "cache"     # >= 8 KB: read-ahead / cache-bounded streaming

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def classify_sizes(trace: TraceDataset, page_kb: float = 4.0) -> np.ndarray:
    """Class of every record; returns an object array of RequestClass."""
    sizes = trace.size_kb
    out = np.empty(len(sizes), dtype=object)
    out[:] = RequestClass.BLOCK
    out[sizes == page_kb] = RequestClass.PAGE
    out[sizes >= 2 * page_kb] = RequestClass.CACHE
    return out


def class_fractions(trace: TraceDataset,
                    page_kb: float = 4.0) -> Dict[RequestClass, float]:
    """Fraction of requests in each class (zeros for an empty trace).

    Adapter over the streaming
    :class:`~repro.analysis.SizeHistogramPipeline` — identical to the
    analysis engine's chunked result.
    """
    return _size_distribution(trace, page_kb).fractions


def size_histogram(trace: TraceDataset) -> Dict[float, int]:
    """Count of requests per exact size in KB, sorted by size.

    Adapter over the streaming
    :class:`~repro.analysis.SizeHistogramPipeline` — identical to the
    analysis engine's chunked result.
    """
    return _size_distribution(trace).histogram


def _size_distribution(trace: TraceDataset, page_kb: float = 4.0):
    """The whole trace through the size pipeline as a single batch."""
    from repro.analysis.pipelines import RunContext, SizeHistogramPipeline
    ctx = RunContext.for_dataset(trace)
    return SizeHistogramPipeline(page_kb=page_kb).run_over(
        [trace.records], ctx)


def size_time_series(trace: TraceDataset) -> Tuple[np.ndarray, np.ndarray]:
    """(time, size_kb) pairs — the scatter of Figures 2-5."""
    return trace.time.copy(), trace.size_kb.astype(np.float64)


def dominant_size(trace: TraceDataset) -> float:
    """The most frequent request size in KB (smallest wins ties)."""
    if len(trace) == 0:
        raise ValueError("empty trace")
    return float(_size_distribution(trace).dominant_size)


def max_size_kb(trace: TraceDataset) -> float:
    if len(trace) == 0:
        raise ValueError("empty trace")
    return float(trace.size_kb.max())


def binned_max_size(trace: TraceDataset, bin_seconds: float = 10.0
                    ) -> Tuple[np.ndarray, np.ndarray]:
    """Largest request size per time bin — the envelope of Figures 2-5."""
    if bin_seconds <= 0:
        raise ValueError("bin_seconds must be positive")
    if len(trace) == 0:
        return np.zeros(0), np.zeros(0)
    t = trace.time
    bins = (t // bin_seconds).astype(np.int64)
    out_t, out_s = [], []
    for b in np.unique(bins):
        mask = bins == b
        out_t.append((b + 0.5) * bin_seconds)
        out_s.append(trace.size_kb[mask].max())
    return np.asarray(out_t), np.asarray(out_s, dtype=np.float64)
