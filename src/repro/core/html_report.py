"""Single-file HTML report with inline SVG figures.

Assembles the whole study — Table 1, the claim scorecard, per-experiment
characterizations, and every figure as an inline SVG — into one
self-contained HTML document you can open or share.  No external assets,
no JavaScript, no dependencies.
"""

from __future__ import annotations

from typing import Dict

from repro.core.claims import evaluate_claims
from repro.core.experiments import ExperimentResult
from repro.core.figures import FIGURE_EXPERIMENT, make_figure
from repro.core.report import characterize
from repro.core.table import render_table1

_STYLE = """
body { font-family: Georgia, serif; max-width: 900px; margin: 2em auto;
       color: #222; line-height: 1.45; padding: 0 1em; }
h1 { border-bottom: 2px solid #444; padding-bottom: 0.2em; }
h2 { margin-top: 2em; color: #333; }
pre { background: #f6f6f4; border: 1px solid #ddd; padding: 0.8em;
      overflow-x: auto; font-size: 12px; line-height: 1.3; }
figure { margin: 1.5em 0; text-align: center; }
figcaption { font-size: 0.9em; color: #555; margin-top: 0.4em; }
.pass { color: #1a7a1a; font-weight: bold; }
.fail { color: #b01010; font-weight: bold; }
.skip { color: #888; }
"""


def _esc(text: str) -> str:
    return (str(text).replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;"))


def _scorecard_html(results: Dict[str, ExperimentResult]) -> str:
    rows = []
    for outcome in evaluate_claims(results):
        css = outcome.status.lower()
        rows.append(
            f"<tr><td>{outcome.claim.id}</td>"
            f"<td class='{css}'>{outcome.status}</td>"
            f"<td>{_esc(outcome.claim.statement)}</td>"
            f"<td>{_esc(outcome.detail)}</td></tr>")
    return ("<table border='1' cellspacing='0' cellpadding='4'>"
            "<tr><th>id</th><th>status</th><th>claim</th><th>detail</th>"
            "</tr>" + "".join(rows) + "</table>")


def build_html_report(results: Dict[str, ExperimentResult],
                      title: str = "NASA ESS I/O characterization "
                                   "reproduction") -> str:
    """Return the full report as an HTML document string."""
    parts = [
        "<!DOCTYPE html>",
        "<html><head><meta charset='utf-8'>",
        f"<title>{_esc(title)}</title>",
        f"<style>{_STYLE}</style></head><body>",
        f"<h1>{_esc(title)}</h1>",
        "<p>Reproduction of Berry &amp; El-Ghazawi, "
        "<em>An Experimental Study of Input/Output Characteristics of "
        "NASA Earth and Space Sciences Applications</em> (IPPS 1996), "
        "on a simulated Beowulf cluster.</p>",
    ]
    if results:
        nnodes = next(iter(results.values())).nnodes
        parts.append(f"<p>Cluster: {nnodes} simulated nodes.</p>")

    parts.append("<h2>Table 1 — I/O request distribution</h2>")
    parts.append(f"<pre>{_esc(render_table1(results))}</pre>")

    parts.append("<h2>Claim scorecard</h2>")
    parts.append(_scorecard_html(results))

    parts.append("<h2>Figures</h2>")
    for number, experiment in sorted(FIGURE_EXPERIMENT.items()):
        if experiment not in results:
            continue
        fig = make_figure(number, results[experiment])
        from repro.viz import svg_bar_chart, svg_scatter
        if fig.kind == "bar":
            svg = svg_bar_chart(fig.labels, fig.y * 100,
                                xlabel=fig.xlabel, ylabel=fig.ylabel,
                                title=fig.title)
        else:
            svg = svg_scatter(fig.x, fig.y, xlabel=fig.xlabel,
                              ylabel=fig.ylabel, title=fig.title)
        parts.append(f"<figure>{svg}<figcaption>{_esc(fig.title)} "
                     f"(from the {_esc(experiment)} experiment)"
                     f"</figcaption></figure>")

    parts.append("<h2>Per-experiment characterization</h2>")
    for result in results.values():
        parts.append(f"<pre>{_esc(characterize(result))}</pre>")

    with_obs = {name: result.obs for name, result in results.items()
                if result.obs}
    if with_obs:
        from repro.obs import render_snapshot_table
        parts.append("<h2>Runtime metrics</h2>")
        parts.append("<p>Simulator, disk, cache, and trace-path "
                     "instrumentation recorded with <code>--obs</code>.</p>")
        parts.append(
            f"<pre>{_esc(render_snapshot_table(with_obs))}</pre>")

    parts.append("</body></html>")
    return "\n".join(parts)
