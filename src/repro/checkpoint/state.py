"""Whole-stack capture and restore orchestration.

:func:`capture_state` walks a quiescent simulator + cluster (and the
applications' resume tokens) into one plain tree; the restore side is a
sequence of small steps the experiment runner interleaves with
reconstruction::

    tree = load_checkpoint(path)
    sim = Simulator(queue=tree["clock"]["queue_kind"], ...)
    sim.restore_clock(tree["clock"])
    arm_tick_preloads(sim, tree)          # BEFORE the cluster exists
    cluster = BeowulfCluster(sim, ...)    # daemons spawn at now=T
    restore_cluster_state(cluster, tree)  # pure, pre-drain
    ...spawn applications (they park on their resume holds)...
    drain_to_quiescence(sim, tree)        # daemons re-park on preloads
    verify_restored_queue(sim, tree)      # queue == snapshot, then seq

The invariant being rebuilt: after the drain, the event queue holds
exactly the snapshotted ticks under their original ``(time, priority,
seq)`` keys, the sequence counter equals the captured value, and every
process is parked where its captured counterpart was — so the next
``run()`` fires the same events in the same order as the uninterrupted
run.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.checkpoint.serialize import CheckpointError, validate_tree
from repro.sim import Simulator, Tick

FORMAT = "repro-checkpoint-v1"


def snapshot_ticks(sim: Simulator) -> Dict[str, list]:
    """The queue as data: ``owner -> [time, priority, seq, value]``.

    Fails loudly when the queue is not quiescent (a non-Tick entry) or
    when two ticks share an owner key (an owner-naming bug — replay
    could not tell them apart).
    """
    ticks: Dict[str, list] = {}
    for time, priority, seq, event in sim.queue_items():
        if type(event) is not Tick:
            raise CheckpointError(
                f"queue not quiescent: {type(event).__name__} at "
                f"t={time:.6f} (settle() first)")
        if event.owner in ticks:
            raise CheckpointError(
                f"duplicate tick owner {event.owner!r}")
        ticks[event.owner] = [time, priority, seq, event._value]
    return ticks


def capture_state(sim: Simulator, cluster, apps=None, obs=None,
                  meta: Optional[dict] = None) -> dict:
    """Capture the full stack into a validated plain tree.

    ``apps`` maps a stable key (``"<family>:<node>"``) to an
    application object with ``snapshot_token()``; ``obs`` is the live
    :class:`~repro.obs.registry.MetricsRegistry` (or None).
    """
    pious = getattr(cluster, "pious", None)
    tree = {
        "format": FORMAT,
        "meta": dict(meta or {}),
        "clock": sim.clock_state(),
        "ticks": snapshot_ticks(sim),
        "cluster": {
            "streams": cluster.streams.snapshot_state(),
            "network": cluster.network.snapshot_state(),
            "pvm": cluster.pvm.snapshot_state(),
            "pious": None if pious is None else pious.snapshot_state(),
            "nodes": [node.kernel.snapshot_state()
                      for node in cluster.nodes],
        },
        "apps": {key: app.snapshot_token()
                 for key, app in sorted((apps or {}).items())},
        "obs": None if obs is None else obs.snapshot_state(),
    }
    return validate_tree(tree)


def check_format(tree: dict) -> dict:
    if not isinstance(tree, dict) or tree.get("format") != FORMAT:
        raise CheckpointError(
            f"not a {FORMAT} tree (format={tree.get('format')!r})"
            if isinstance(tree, dict) else "checkpoint is not a tree")
    return tree


def arm_tick_preloads(sim: Simulator, tree: dict) -> None:
    """Stage the snapshotted queue entries for replay-on-next-tick.

    Must run *before* the cluster is constructed: every daemon's first
    ``sim.tick(owner, ...)`` then re-enqueues its snapshotted entry
    (same wake time, priority, and sequence number) instead of drawing
    a fresh delay.
    """
    sim._tick_preloads = {
        owner: (float(entry[0]), int(entry[1]), int(entry[2]), entry[3])
        for owner, entry in tree["ticks"].items()}


def restore_cluster_state(cluster, tree: dict) -> None:
    """Put back every layer's captured state (pure; call pre-drain)."""
    sub = tree["cluster"]
    cluster.streams.restore_state(sub["streams"])
    cluster.network.restore_state(sub["network"])
    cluster.pvm.restore_state(sub["pvm"])
    if len(sub["nodes"]) != len(cluster.nodes):
        raise CheckpointError(
            f"checkpoint has {len(sub['nodes'])} nodes, cluster has "
            f"{len(cluster.nodes)}")
    for node, node_state in zip(cluster.nodes, sub["nodes"]):
        node.kernel.restore_state(node_state)
    if sub["pious"] is not None:
        if cluster.pious is None:
            cluster.make_pious()
        cluster.pious.restore_state(sub["pious"])


def drain_to_quiescence(sim: Simulator, max_events: int = 1_000_000) -> None:
    """Fire the reconstruction events (process initializers, immediate
    completions) until only ticks remain queued.

    All such events sit at the restored ``now`` — ahead of every
    preloaded tick — so this never fires a tick early.
    """
    budget = max_events
    while any(type(event) is not Tick
              for _t, _p, _s, event in sim.queue_items()):
        sim.step()
        budget -= 1
        if budget <= 0:
            raise CheckpointError(
                "restore drain exceeded its event budget without "
                "reaching a tick-only queue")


def verify_restored_queue(sim: Simulator, tree: dict) -> None:
    """Check queue == snapshot, then restore the sequence counter.

    Called after :func:`drain_to_quiescence`.  Every preload must have
    been consumed (a daemon that never re-parked would silently change
    future orderings) and the queue keys must match the snapshot
    exactly.  Only then is ``_seq`` wound back to the captured value —
    reconstruction consumed sequence numbers of its own, all of them
    now out of the queue.
    """
    leftover = sorted(sim._tick_preloads)
    if leftover:
        raise CheckpointError(
            f"tick preloads never consumed (daemon did not re-park): "
            f"{leftover}")
    expected = {owner: (float(e[0]), int(e[1]), int(e[2]))
                for owner, e in tree["ticks"].items()}
    got = {event.owner: (time, priority, seq)
           for time, priority, seq, event in sim.queue_items()}
    if got != expected:
        missing = sorted(set(expected) - set(got))
        extra = sorted(set(got) - set(expected))
        moved = sorted(owner for owner in set(got) & set(expected)
                       if got[owner] != expected[owner])
        raise CheckpointError(
            f"restored queue mismatch: missing={missing} extra={extra} "
            f"moved={moved}")
    clock = tree["clock"]
    if sim.now != float(clock["now"]):
        raise CheckpointError(
            f"restored time drifted: now={sim.now!r} != "
            f"captured {clock['now']!r}")
    sim._seq = int(clock["seq"])
