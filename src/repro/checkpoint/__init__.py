"""Checkpoint/restore for the whole simulated stack.

The protocol has three pieces:

* a uniform per-layer state surface — every stateful component
  (simulator clock + queue, RNG streams, kernel subsystems, disk stack,
  cluster services, applications) exposes ``snapshot_state()`` /
  ``restore_state(state)`` over *plain trees*;
* quiescence — :meth:`Simulator.settle` plus the
  :class:`CheckpointCoordinator`'s hold protocol bring the system to a
  point where the event queue is pure data (owner-tagged ticks) and
  every process is parked;
* the ``.ckpt`` envelope — a compressed, checksummed, atomically
  written file (:func:`save_checkpoint` / :func:`load_checkpoint`).

``ExperimentRunner.run(..., checkpoint_every=..., resume_from=...)``
wires it end to end; a restored run continues **bit-identically** to the
uninterrupted one (same trace records, same metrics, same obs counters).
"""

from repro.checkpoint.coordinator import CheckpointCoordinator
from repro.checkpoint.serialize import (CheckpointError, FORMAT_VERSION,
                                        MAGIC, dumps, load_checkpoint,
                                        loads, save_checkpoint, tree_equal,
                                        validate_tree)
from repro.checkpoint.state import (FORMAT, arm_tick_preloads, capture_state,
                                    check_format, drain_to_quiescence,
                                    restore_cluster_state, snapshot_ticks,
                                    verify_restored_queue)

__all__ = [
    "CheckpointCoordinator",
    "CheckpointError",
    "FORMAT",
    "FORMAT_VERSION",
    "MAGIC",
    "arm_tick_preloads",
    "capture_state",
    "check_format",
    "drain_to_quiescence",
    "dumps",
    "load_checkpoint",
    "loads",
    "restore_cluster_state",
    "save_checkpoint",
    "snapshot_ticks",
    "tree_equal",
    "validate_tree",
    "verify_restored_queue",
]
