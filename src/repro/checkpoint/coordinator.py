"""Quiescence coordination: holding applications at safe points.

A checkpoint can only capture the stack when the event queue is pure
data (owner-tagged :class:`~repro.sim.Tick` sleeps) and every process is
parked on a *pending* event.  Daemons reach that state on their own —
:meth:`Simulator.settle` just fires what is in flight — but applications
would keep generating work forever, so they cooperate through this
coordinator:

* the experiment runner calls :meth:`arm` at a checkpoint epoch;
* each application checks :meth:`should_hold` between *bodies* (the
  numbered sections its ``run()`` is built from) and parks on
  :meth:`hold` when its cursor reaches the family's target;
* once :attr:`all_held` is true the runner settles the simulator,
  captures, and :meth:`release`\\ s everyone in a deterministic order.

The per-family target is ``max(cursor) + 1`` over the family's live
members: every member runs to exactly that body boundary, so any
message or barrier inside a completed body has already been matched by
its peers (sends precede receives within a body), and none can deadlock
waiting for a held partner.

On a restore the coordinator is armed in *resume mode*: re-spawned
applications hold unconditionally before running their next body, the
runner drains the re-parked daemons, and the same ordered release makes
the continuation consume sequence numbers exactly as the uninterrupted
(armed) run did.
"""

from __future__ import annotations

from typing import Dict, List

from repro.sim import Event, Simulator


class CheckpointCoordinator:
    """Arms/holds/releases the applications around a capture point."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.armed = False
        self.resume_mode = False
        #: family name -> body cursor a member holds at (armed mode)
        self._targets: Dict[str, int] = {}
        self._started: List[object] = []
        self._finished: set = set()
        self._held: Dict[object, Event] = {}

    # -- application side ---------------------------------------------------
    def started(self, app) -> None:
        """An application's ``run()`` began (or resumed)."""
        self._started.append(app)

    def finished(self, app) -> None:
        """An application's ``run()`` returned (or raised)."""
        self._finished.add(id(app))

    def should_hold(self, app) -> bool:
        """Checked by applications at each body boundary."""
        if not self.armed:
            return False
        target = self._targets.get(app.name)
        return target is not None and app.cursor >= target

    def hold(self, app) -> Event:
        """A pending event the application parks on until release."""
        event = self.sim.event()
        self._held[app] = event
        return event

    # -- runner side --------------------------------------------------------
    def arm(self) -> None:
        """Start a checkpoint epoch: compute each family's hold target."""
        live = [a for a in self._started if id(a) not in self._finished]
        deepest: Dict[str, int] = {}
        for app in live:
            cursor = deepest.get(app.name, -1)
            if app.cursor > cursor:
                deepest[app.name] = app.cursor
        self._targets = {name: cursor + 1
                         for name, cursor in deepest.items()}
        self.armed = True
        self.resume_mode = False

    def arm_for_resume(self) -> None:
        """Arm with no targets: resumed applications hold unconditionally
        before their next body; fresh ones (later in a serial chain) run
        free once released."""
        self._targets = {}
        self.armed = True
        self.resume_mode = True

    @property
    def all_held(self) -> bool:
        """Every live application is parked (vacuously true with none)."""
        return all(id(a) in self._finished or a in self._held
                   for a in self._started)

    def release(self) -> None:
        """Wake every held application, in sorted (family, node) order.

        The order is the determinism contract: each ``succeed`` consumes
        one sequence number, so a restored run — which resets the
        sequence counter to the captured value first — schedules the
        continuations under exactly the sequence numbers the armed
        uninterrupted run used.
        """
        held = sorted(self._held.items(),
                      key=lambda item: (item[0].name, item[0].node_id))
        self._held.clear()
        self.armed = False
        self.resume_mode = False
        self._targets = {}
        for _app, event in held:
            event.succeed()
