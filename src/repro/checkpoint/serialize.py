"""The ``.ckpt`` on-disk format: a validated plain tree, checksummed.

A checkpoint is a *plain tree*: nested ``dict``s with string keys whose
leaves are scalars, strings, bytes, ``None``, lists/tuples of plain
values, or numpy arrays.  :func:`validate_tree` enforces that shape at
capture time, so anything a layer's ``snapshot_state()`` sneaks in that
is not data (a bound method, a generator, an event object) fails
loudly at the ``snapshot()`` call, not as an unpicklable surprise at
restore time in another process.

The envelope is deliberately boring::

    8 bytes   magic  b"RPROCKP1"
    2 bytes   format version (little-endian u16)
    32 bytes  sha256 of the compressed payload
    8 bytes   payload length (little-endian u64)
    N bytes   zlib-compressed pickle of the validated tree

The checksum makes a torn write (crash mid-checkpoint) detectable: the
loader raises :class:`CheckpointError` instead of unpickling garbage.
Writes go through a temp file + ``os.replace`` so a ``.ckpt`` path is
always either the previous complete checkpoint or the new one.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import struct
import zlib
from pathlib import Path
from typing import Any, Union

import numpy as np

MAGIC = b"RPROCKP1"
FORMAT_VERSION = 1

_HEAD = struct.Struct("<8sH32sQ")


class CheckpointError(RuntimeError):
    """Raised for malformed trees, damaged files, or version skew."""


_SCALARS = (str, int, float, bool, bytes, type(None))


def validate_tree(value: Any, path: str = "$") -> Any:
    """Check that ``value`` is a plain tree; return a normalised copy.

    Numpy scalar types are coerced to their Python equivalents so the
    tree compares cleanly with ``==`` after a round-trip; containers are
    copied (a snapshot must not alias live simulator state).
    """
    if isinstance(value, bool) or value is None or isinstance(value, str) \
            or isinstance(value, bytes):
        return value
    # numpy scalars first: np.float64 subclasses float and would
    # otherwise slip through unnormalised
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, np.ndarray):
        return value.copy()
    if isinstance(value, dict):
        out = {}
        for key, sub in value.items():
            if not isinstance(key, str):
                raise CheckpointError(
                    f"non-string key {key!r} at {path}")
            out[key] = validate_tree(sub, f"{path}.{key}")
        return out
    if isinstance(value, (list, tuple)):
        items = [validate_tree(sub, f"{path}[{i}]")
                 for i, sub in enumerate(value)]
        return items if isinstance(value, list) else tuple(items)
    raise CheckpointError(
        f"{type(value).__name__} at {path} is not checkpointable "
        f"(plain trees only: dict/list/tuple/scalars/bytes/ndarray)")


def tree_equal(a: Any, b: Any) -> bool:
    """Deep equality over plain trees (ndarray-aware)."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return (isinstance(a, np.ndarray) and isinstance(b, np.ndarray)
                and a.dtype == b.dtype and a.shape == b.shape
                and bool(np.array_equal(a, b)))
    if isinstance(a, dict) and isinstance(b, dict):
        return a.keys() == b.keys() and \
            all(tree_equal(a[k], b[k]) for k in a)
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return type(a) is type(b) and len(a) == len(b) and \
            all(tree_equal(x, y) for x, y in zip(a, b))
    return type(a) is type(b) and a == b


def dumps(tree: dict) -> bytes:
    """Serialize a (validated) plain tree into the envelope bytes."""
    tree = validate_tree(tree)
    payload = zlib.compress(
        pickle.dumps(tree, protocol=pickle.HIGHEST_PROTOCOL), 6)
    digest = hashlib.sha256(payload).digest()
    return _HEAD.pack(MAGIC, FORMAT_VERSION, digest, len(payload)) + payload


def loads(blob: bytes) -> dict:
    """Parse envelope bytes back into the tree (checksum-verified)."""
    if len(blob) < _HEAD.size:
        raise CheckpointError(
            f"checkpoint truncated: {len(blob)} bytes is shorter than "
            f"the {_HEAD.size}-byte header")
    magic, version, digest, length = _HEAD.unpack_from(blob)
    if magic != MAGIC:
        raise CheckpointError(f"bad checkpoint magic {magic!r}")
    if version > FORMAT_VERSION:
        raise CheckpointError(
            f"checkpoint format v{version} is newer than this "
            f"reader (v{FORMAT_VERSION})")
    payload = blob[_HEAD.size:_HEAD.size + length]
    if len(payload) != length:
        raise CheckpointError(
            f"checkpoint truncated: payload is {len(payload)} of "
            f"{length} bytes")
    if hashlib.sha256(payload).digest() != digest:
        raise CheckpointError("checkpoint checksum mismatch (torn write?)")
    return pickle.loads(zlib.decompress(payload))


def save_checkpoint(tree: dict, path: Union[str, Path]) -> int:
    """Write ``tree`` to ``path`` atomically; returns the byte size."""
    path = Path(path)
    blob = dumps(tree)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(blob)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return len(blob)


def load_checkpoint(path: Union[str, Path]) -> dict:
    """Read and verify a ``.ckpt`` file written by :func:`save_checkpoint`."""
    try:
        blob = Path(path).read_bytes()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") \
            from exc
    return loads(blob)
