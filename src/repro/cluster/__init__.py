"""Cluster platform: the 16-node Beowulf prototype.

Nodes (each a full :class:`~repro.kernel.NodeKernel`) are connected by two
parallel 10 Mb/s Ethernet segments (:mod:`.network`), exchange messages
through a PVM-like layer (:mod:`.pvm`), and can perform coordinated
parallel I/O through a PIOUS-like striped file service (:mod:`.pious`).
"""

from repro.cluster.network import EthernetNetwork
from repro.cluster.pvm import Message, PVM, Mailbox
from repro.cluster.beowulf import BeowulfCluster, ClusterNode
from repro.cluster.pious import PIOUS, PiousFileHandle

__all__ = [
    "BeowulfCluster",
    "ClusterNode",
    "EthernetNetwork",
    "Mailbox",
    "Message",
    "PIOUS",
    "PiousFileHandle",
    "PVM",
]
