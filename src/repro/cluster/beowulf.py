"""The Beowulf cluster: 16 workstation nodes, two Ethernets, PVM.

:class:`BeowulfCluster` assembles the full platform of the study and is the
entry point experiments use: it builds the nodes, lets application factories
spawn one task per node, and gathers the per-node driver traces into one
structured array for analysis.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.cluster.network import EthernetNetwork
from repro.cluster.pvm import Mailbox, PVM
from repro.driver import TRACE_DTYPE
from repro.kernel import NodeKernel, NodeParams
from repro.sim import Process, RandomStreams, Simulator


class ClusterNode:
    """One workstation: kernel + PVM mailbox."""

    def __init__(self, sim: Simulator, node_id: int, params: NodeParams,
                 streams: RandomStreams, pvm: PVM,
                 housekeeping: bool = True,
                 housekeeping_message_rate: float = 3.0,
                 obs=None, node_config=None):
        self.node_id = node_id
        self.kernel = NodeKernel(
            sim, params=params, streams=streams.spawn(f"node{node_id}"),
            node_id=node_id, housekeeping=housekeeping,
            housekeeping_message_rate=housekeeping_message_rate,
            obs=obs, node_config=node_config)
        self.mailbox: Mailbox = pvm.register(node_id)
        self.pvm = pvm

    def trace_array(self) -> np.ndarray:
        return self.kernel.trace_array()


class BeowulfCluster:
    """The 16-node prototype (node count and parameters configurable).

    Construction resolves, in precedence order: explicit keyword
    arguments, then the fields of ``scenario`` (a
    :class:`~repro.config.Scenario`), then the historical defaults
    (16 nodes, seed 0, housekeeping on at 3 msg/s).
    """

    def __init__(self, sim: Simulator, nnodes: Optional[int] = None,
                 params: Optional[NodeParams] = None,
                 seed: Optional[int] = None,
                 housekeeping: Optional[bool] = None,
                 housekeeping_message_rate: Optional[float] = None,
                 obs=None, scenario=None):
        node_config = None
        if scenario is not None:
            cluster_cfg = scenario.cluster
            nnodes = cluster_cfg.nnodes if nnodes is None else nnodes
            seed = scenario.seed if seed is None else seed
            if housekeeping is None:
                housekeeping = cluster_cfg.housekeeping
            if housekeeping_message_rate is None:
                housekeeping_message_rate = \
                    cluster_cfg.housekeeping_message_rate
            node_config = scenario.node
            if params is None:
                params = node_config.to_node_params()
        nnodes = 16 if nnodes is None else nnodes
        seed = 0 if seed is None else seed
        housekeeping = True if housekeeping is None else housekeeping
        if housekeeping_message_rate is None:
            housekeeping_message_rate = 3.0
        if nnodes < 1:
            raise ValueError("cluster needs at least one node")
        self.sim = sim
        self.scenario = scenario
        self.params = params or NodeParams()
        streams = RandomStreams(seed=seed)
        #: the cluster-wide stream registry (checkpoint state surface)
        self.streams = streams
        if scenario is not None:
            self.network = scenario.network.build(
                sim, rng=streams.stream("ethernet"), obs=obs)
        else:
            self.network = EthernetNetwork(
                sim, rng=streams.stream("ethernet"), obs=obs)
        self.pvm = PVM(sim, self.network)
        #: the parallel file service, once :meth:`make_pious` built it
        self.pious = None
        self.nodes: List[ClusterNode] = []
        for node_id in range(nnodes):
            node_params, per_node_config = self._node_stack_for(
                node_id, node_config)
            self.nodes.append(ClusterNode(
                sim, node_id, node_params, streams, self.pvm,
                housekeeping=housekeeping,
                housekeeping_message_rate=housekeeping_message_rate,
                obs=obs, node_config=per_node_config))

    def _node_stack_for(self, node_id: int, node_config):
        """Per-node (params, config): the scenario's ``node_overrides``
        may give individual nodes (one slow disk among sixteen) their
        own stack — both the disk members and the kernel tunables."""
        if self.scenario is not None \
                and str(node_id) in self.scenario.node_overrides:
            cfg = self.scenario.node_config_for(node_id)
            return cfg.to_node_params(), cfg
        return self.params, node_config

    def make_pious(self, storage_dir: str = "/pious"):
        """Build the PIOUS parallel file service from the scenario.

        Stripe unit and data-server placement come from
        ``scenario.pious`` (every node serves under the defaults); the
        service is kept on ``self.pious`` so observability can harvest
        its counters.
        """
        from repro.cluster.pious import PIOUS
        cfg = self.scenario.pious if self.scenario is not None else None
        if cfg is None:
            self.pious = PIOUS(self, storage_dir=storage_dir)
        else:
            self.pious = PIOUS(self, stripe_kb=cfg.stripe_kb,
                               servers=cfg.server_ids(len(self.nodes)),
                               storage_dir=storage_dir)
        return self.pious

    def __len__(self) -> int:
        return len(self.nodes)

    def spawn_on_all(self, factory: Callable[["ClusterNode"], object],
                     name: str = "app") -> List[Process]:
        """Start ``factory(node)`` (an app generator) on every node."""
        return [node.kernel.spawn(factory(node), name=f"{name}:{node.node_id}")
                for node in self.nodes]

    def spawn_on(self, node_id: int, generator, name: str = "app") -> Process:
        return self.nodes[node_id].kernel.spawn(generator, name=name)

    def gather_traces(self, sort: bool = True) -> np.ndarray:
        """Concatenate all nodes' trace records (node ids preserved)."""
        arrays = [node.trace_array() for node in self.nodes]
        combined = np.concatenate(arrays) if arrays else \
            np.zeros(0, dtype=TRACE_DTYPE)
        if sort and len(combined):
            combined = combined[np.argsort(combined["time"], kind="stable")]
        return combined

    def reset_trace_clocks(self) -> None:
        """Zero every node's trace timestamps and drop records so far."""
        for node in self.nodes:
            node.kernel.driver.reset_clock()
            node.kernel.transport.drain_now()
            node.kernel.transport.user_buffer.clear()

    def shutdown_daemons(self) -> None:
        for node in self.nodes:
            node.kernel.shutdown_daemons()
