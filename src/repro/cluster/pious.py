"""PIOUS-like parallel file service: files striped over node-local disks.

The Beowulf platform description lists PIOUS as its coordinated parallel
I/O layer.  This module implements the same architecture: a *data server*
task on each participating node owns a local partial file; clients stripe
logical file offsets round-robin across servers in fixed stripe units and
converse with the servers through PVM messages.  Every byte ultimately
moves through a node kernel's ordinary file path, so parallel I/O shows up
in the driver traces exactly like local I/O does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cluster.beowulf import BeowulfCluster, ClusterNode

#: PVM tag for client->server requests
PIOUS_REQ_TAG = 9_000
#: base for per-request reply tags
PIOUS_REPLY_BASE = 10_000

#: request message overhead on the wire (headers + descriptor)
_REQ_BYTES = 64


@dataclass
class _StripeMap:
    name: str
    stripe_bytes: int
    servers: List[int]

    def chunks(self, offset: int, nbytes: int):
        """Split [offset, offset+nbytes) into per-server (local) extents.

        Yields ``(server_node, local_offset, chunk_bytes)``.  Stripe unit
        ``i`` of the logical file lives on server ``i % nservers`` at local
        offset ``(i // nservers) * stripe_bytes``.
        """
        if nbytes < 1:
            raise ValueError("nbytes must be >= 1")
        end = offset + nbytes
        while offset < end:
            unit = offset // self.stripe_bytes
            within = offset - unit * self.stripe_bytes
            chunk = min(end - offset, self.stripe_bytes - within)
            server = self.servers[unit % len(self.servers)]
            local = (unit // len(self.servers)) * self.stripe_bytes + within
            yield server, local, chunk
            offset += chunk


class PiousFileHandle:
    """Client-side handle to a striped file."""

    def __init__(self, pious: "PIOUS", stripe_map: _StripeMap,
                 client_node: int):
        self._pious = pious
        self._map = stripe_map
        self._client = client_node
        self.pos = 0

    def seek(self, pos: int) -> None:
        if pos < 0:
            raise ValueError("negative seek position")
        self.pos = pos

    def read(self, nbytes: int):
        """Generator: stripe-parallel read of ``nbytes`` at the position."""
        yield from self._transfer(nbytes, write=False)
        return nbytes

    def write(self, nbytes: int):
        """Generator: stripe-parallel write of ``nbytes`` at the position."""
        yield from self._transfer(nbytes, write=True)
        return nbytes

    def _transfer(self, nbytes: int, write: bool):
        pious = self._pious
        pvm = pious.cluster.pvm
        sim = pious.cluster.sim
        reply_tags = []
        for server, local_offset, chunk in self._map.chunks(self.pos, nbytes):
            reply_tag = pious._next_reply_tag()
            reply_tags.append(reply_tag)
            body = ("write" if write else "read",
                    self._map.name, local_offset, chunk,
                    self._client, reply_tag)
            request_bytes = _REQ_BYTES + (chunk if write else 0)
            pvm.isend(self._client, server, PIOUS_REQ_TAG,
                      request_bytes, body)
        for reply_tag in reply_tags:
            yield from pvm.recv(self._client, tag=reply_tag)
        self.pos += nbytes


class PIOUS:
    """The parallel file service: one data server per participating node."""

    def __init__(self, cluster: BeowulfCluster,
                 stripe_kb: int = 8,
                 servers: Optional[List[int]] = None,
                 storage_dir: str = "/pious"):
        if stripe_kb < 1:
            raise ValueError("stripe unit must be >= 1 KB")
        self.cluster = cluster
        self.stripe_bytes = stripe_kb * 1024
        self.storage_dir = storage_dir
        self.server_ids = list(servers) if servers is not None else \
            [n.node_id for n in cluster.nodes]
        self._files: Dict[str, _StripeMap] = {}
        self._reply_seq = 0
        self.requests_served = 0
        #: lifetime per-data-server counters (for ObsRecorder harvest)
        self.requests_by_server: Dict[int, int] = {
            node_id: 0 for node_id in self.server_ids}
        self.bytes_served = 0
        #: per-server open partial-file handles, keyed by node then file
        #: name — kept on the service (not server-local) so the handles'
        #: positions and readahead windows are part of the state surface
        self._server_handles: Dict[int, Dict[str, object]] = {}
        for node_id in self.server_ids:
            node = cluster.nodes[node_id]
            cluster.sim.process(self._server(node),
                                name=f"pious-server:{node_id}")

    # -- client API ----------------------------------------------------------
    def create(self, name: str, client_node: int = 0) -> PiousFileHandle:
        if name in self._files:
            raise ValueError(f"PIOUS file {name!r} already exists")
        stripe_map = _StripeMap(name, self.stripe_bytes,
                                list(self.server_ids))
        self._files[name] = stripe_map
        return PiousFileHandle(self, stripe_map, client_node)

    def open(self, name: str, client_node: int = 0) -> PiousFileHandle:
        stripe_map = self._files.get(name)
        if stripe_map is None:
            raise KeyError(f"no PIOUS file {name!r}")
        return PiousFileHandle(self, stripe_map, client_node)

    def _next_reply_tag(self) -> int:
        self._reply_seq += 1
        return PIOUS_REPLY_BASE + self._reply_seq

    # -- checkpoint state surface ---------------------------------------
    def snapshot_state(self) -> dict:
        return {
            "files": {name: {"stripe_bytes": m.stripe_bytes,
                             "servers": list(m.servers)}
                      for name, m in sorted(self._files.items())},
            "reply_seq": self._reply_seq,
            "requests_served": self.requests_served,
            "requests_by_server": {str(k): v for k, v in
                                   self.requests_by_server.items()},
            "bytes_served": self.bytes_served,
            "server_handles": {
                str(node_id): {name: handle.snapshot_state()
                               for name, handle in sorted(handles.items())}
                for node_id, handles in sorted(
                    self._server_handles.items())},
        }

    def restore_state(self, state: dict) -> None:
        self._files = {
            name: _StripeMap(name, int(spec["stripe_bytes"]),
                             [int(s) for s in spec["servers"]])
            for name, spec in state["files"].items()}
        self._reply_seq = int(state["reply_seq"])
        self.requests_served = int(state["requests_served"])
        self.requests_by_server = {int(k): int(v) for k, v in
                                   state["requests_by_server"].items()}
        self.bytes_served = int(state["bytes_served"])
        # Reopen each server's partial files against the (already
        # restored) node filesystems — kernel.open is pure — then put
        # back the positions and readahead windows.
        self._server_handles = {}
        for key, handles in state["server_handles"].items():
            node_id = int(key)
            kernel = self.cluster.nodes[node_id].kernel
            restored = self._server_handles.setdefault(node_id, {})
            for name, hstate in handles.items():
                handle = kernel.open(f"{self.storage_dir}/{name}.part")
                handle.restore_state(hstate)
                restored[name] = handle

    # -- data server -------------------------------------------------------
    def _server(self, node: ClusterNode):
        kernel = node.kernel
        pvm = self.cluster.pvm
        handles = self._server_handles.setdefault(node.node_id, {})
        yield from kernel.fs.makedirs(self.storage_dir)
        while True:
            message = yield from pvm.recv(node.node_id, tag=PIOUS_REQ_TAG)
            op, name, local_offset, chunk, client, reply_tag = message.body
            handle = handles.get(name)
            if handle is None:
                path = f"{self.storage_dir}/{name}.part"
                if kernel.fs.exists(path):
                    handle = kernel.open(path)
                else:
                    handle = yield from kernel.create(path)
                handles[name] = handle
            handle.seek(local_offset)
            if op == "write":
                yield from handle.write(chunk)
                reply_bytes = _REQ_BYTES
            else:
                # Reading a hole (not yet written) still answers; only
                # materialized bytes cause disk traffic.
                if local_offset < handle.size:
                    yield from handle.read(
                        min(chunk, handle.size - local_offset))
                reply_bytes = _REQ_BYTES + chunk
            self.requests_served += 1
            self.requests_by_server[node.node_id] += 1
            self.bytes_served += chunk
            yield from pvm.send(node.node_id, client, reply_tag,
                                reply_bytes)
