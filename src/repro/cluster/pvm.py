"""PVM-like message passing over the Ethernet model.

The Beowulf prototype used PVM for inter-processor communication; the
parallel applications alternate compute and communicate phases through this
layer.  Semantics follow PVM's: typed (tagged) asynchronous sends, blocking
tag-filtered receives, plus the collective helpers the workload models use
(barrier, broadcast, gather).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.cluster.network import EthernetNetwork
from repro.sim import Event, Simulator


@dataclass(frozen=True)
class Message:
    src: int
    dst: int
    tag: int
    nbytes: int
    body: Any = None


@dataclass
class _PendingRecv:
    tag: Optional[int]
    event: Event


class Mailbox:
    """Per-task incoming message queue with tag-filtered blocking receive."""

    def __init__(self, sim: Simulator, owner: int):
        self.sim = sim
        self.owner = owner
        self._messages: deque = deque()
        self._waiters: deque = deque()

    def __len__(self) -> int:
        return len(self._messages)

    def deliver(self, message: Message) -> None:
        # Hand to the first waiter whose tag filter matches, else queue.
        for i, waiter in enumerate(self._waiters):
            if waiter.tag is None or waiter.tag == message.tag:
                del self._waiters[i]
                waiter.event.succeed(message)
                return
        self._messages.append(message)

    def receive(self, tag: Optional[int] = None) -> Event:
        """Event that fires with the next message matching ``tag``."""
        event = self.sim.event()
        for i, message in enumerate(self._messages):
            if tag is None or message.tag == tag:
                del self._messages[i]
                event.succeed(message)
                return event
        self._waiters.append(_PendingRecv(tag, event))
        return event


class PVM:
    """The message-passing daemon layer of the cluster."""

    def __init__(self, sim: Simulator, network: EthernetNetwork,
                 #: fixed software overhead per send (pvmd + UDP stack)
                 send_overhead: float = 0.5e-3):
        self.sim = sim
        self.network = network
        self.send_overhead = send_overhead
        self._mailboxes: Dict[int, Mailbox] = {}
        self._barriers: Dict[str, list] = {}
        self.sends = 0

    # -- membership --------------------------------------------------------
    def register(self, node_id: int) -> Mailbox:
        if node_id in self._mailboxes:
            raise ValueError(f"node {node_id} already registered")
        box = Mailbox(self.sim, node_id)
        self._mailboxes[node_id] = box
        return box

    def mailbox(self, node_id: int) -> Mailbox:
        return self._mailboxes[node_id]

    @property
    def ntasks(self) -> int:
        return len(self._mailboxes)

    # -- point to point ----------------------------------------------------
    def send(self, src: int, dst: int, tag: int, nbytes: int,
             body: Any = None):
        """Blocking-send generator: returns after the wire transfer."""
        if dst not in self._mailboxes:
            raise KeyError(f"unknown destination {dst}")
        message = Message(src, dst, tag, nbytes, body)
        yield self.sim.timeout(self.send_overhead)
        if src != dst:
            yield from self.network.transmit(nbytes)
        self._mailboxes[dst].deliver(message)
        self.sends += 1

    def isend(self, src: int, dst: int, tag: int, nbytes: int,
              body: Any = None):
        """Fire-and-forget send running in its own process."""
        return self.sim.process(self.send(src, dst, tag, nbytes, body),
                                name=f"isend:{src}->{dst}")

    def recv(self, node_id: int, tag: Optional[int] = None):
        """Blocking-receive generator: returns the Message."""
        message = yield self._mailboxes[node_id].receive(tag)
        return message

    # -- collectives -------------------------------------------------------
    def barrier(self, name: str, node_id: int, count: int):
        """Generator: block until ``count`` participants arrive at ``name``."""
        arrivals = self._barriers.setdefault(name, [])
        gate = self.sim.event()
        arrivals.append((node_id, gate))
        if len(arrivals) == count:
            del self._barriers[name]
            for _, waiter in arrivals:
                waiter.succeed()
        yield gate

    # -- checkpoint state surface ---------------------------------------
    def snapshot_state(self) -> dict:
        """Counters and queued (undelivered) messages.

        Pending barriers cannot be captured: a parked participant is
        mid-body, and the checkpoint protocol only holds applications at
        body boundaries — every participant of a barrier in a completed
        body has already run through it.  Receive waiters are likewise
        not state; the only quiescent waiters are daemon server loops
        (PIOUS), which re-park themselves on restore.
        """
        if self._barriers:
            pending = {name: [n for n, _ in arrivals]
                       for name, arrivals in self._barriers.items()}
            raise RuntimeError(
                f"barriers still pending at capture: {pending}")
        mailboxes = {}
        for node_id in sorted(self._mailboxes):
            box = self._mailboxes[node_id]
            mailboxes[str(node_id)] = [
                [m.src, m.dst, m.tag, m.nbytes, m.body]
                for m in box._messages]
        return {"sends": self.sends, "mailboxes": mailboxes}

    def restore_state(self, state: dict) -> None:
        self.sends = int(state["sends"])
        for key, rows in state["mailboxes"].items():
            box = self._mailboxes[int(key)]
            box._messages.clear()
            for src, dst, tag, nbytes, body in rows:
                box._messages.append(
                    Message(int(src), int(dst), int(tag), int(nbytes),
                            body))

    def bcast(self, src: int, tag: int, nbytes: int, body: Any = None):
        """Generator: send to every registered task except the source."""
        for dst in list(self._mailboxes):
            if dst != src:
                yield from self.send(src, dst, tag, nbytes, body)

    def gather(self, root: int, tag: int):
        """Generator run at the root: collect one message per other task."""
        messages = []
        for _ in range(self.ntasks - 1):
            message = yield from self.recv(root, tag)
            messages.append(message)
        return messages
