"""Dual-channel Ethernet model.

The Beowulf prototype bonded two parallel 10 Mb/s Ethernet segments.  We
model each segment as a shared medium (one transmission at a time per
segment) with fixed per-frame latency, serialization time proportional to
message size, and a small random inter-frame gap standing in for CSMA/CD
backoff under contention.  Messages larger than the MTU are fragmented.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.sim import Resource, Simulator

#: Ethernet II maximum payload in bytes
MTU = 1500
#: per-frame protocol overhead (headers, preamble, CRC) in bytes
FRAME_OVERHEAD = 26


@dataclass
class NetworkStats:
    messages: int = 0
    frames: int = 0
    bytes_carried: int = 0
    busy_time: float = 0.0


class _NetInstruments:
    """Per-fabric live instruments (built only when obs is enabled).

    Lifetime totals (``net.messages`` etc.) are harvested from
    :class:`NetworkStats` once per run by the obs recorder; the live
    histogram here adds the per-frame wire-time *distribution*, which
    totals can't reconstruct.  One pre-bound ``observe`` per channel, so
    the instrumented transmit path is a plain call.
    """

    __slots__ = ("frame_seconds", "observe_frame")

    def __init__(self, registry, channels: int):
        self.frame_seconds = registry.histogram(
            "net.frame_seconds",
            "wire time per frame, including contention jitter")
        self.observe_frame = [self.frame_seconds.child(f"ch{i}").observe
                              for i in range(channels)]


class EthernetNetwork:
    """Two (by default) parallel shared segments with frame fragmentation.

    Every construction knob is a parameter — a
    :class:`~repro.config.NetworkConfig` builds the fabric via
    ``scenario.network.build(sim, rng=...)``; the defaults are the
    prototype's bonded dual 10 Mb/s segments.

    ``obs`` takes a :class:`~repro.obs.registry.MetricsRegistry`.  Like
    the disk's server variants, instrumentation is *slot-free*: when obs
    is enabled :meth:`transmit` is rebound at construction to the
    recording variant, so the plain path carries zero per-frame
    instrumentation tests.
    """

    def __init__(self, sim: Simulator, bandwidth_bps: float = 10e6,
                 latency: float = 0.3e-3, channels: int = 2,
                 rng: Optional[np.random.Generator] = None,
                 mtu: int = MTU, frame_overhead: int = FRAME_OVERHEAD,
                 obs=None):
        if bandwidth_bps <= 0 or latency < 0:
            raise ValueError("bad bandwidth/latency")
        if channels < 1:
            raise ValueError("need at least one channel")
        if mtu < 1:
            raise ValueError("mtu must be >= 1 byte")
        self.sim = sim
        self.bandwidth_bps = bandwidth_bps
        self.latency = latency
        self.mtu = mtu
        self.frame_overhead = frame_overhead
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self._segments = [Resource(sim, capacity=1) for _ in range(channels)]
        self._next_channel = 0
        self.stats = NetworkStats()
        #: per-segment lifetime counters (index = channel)
        self.channel_frames = [0] * channels
        self.channel_busy_time = [0.0] * channels
        self._obs: Optional[_NetInstruments] = None
        if obs is not None and getattr(obs, "enabled", False):
            self._obs = _NetInstruments(obs, channels)
            # construction-time specialization: shadow the class method
            # with the instrumented variant for this instance only
            self.transmit = self._transmit_obs

    @property
    def channels(self) -> int:
        return len(self._segments)

    # -- checkpoint state surface ---------------------------------------
    def snapshot_state(self) -> dict:
        s = self.stats
        return {"next_channel": self._next_channel,
                "stats": {"messages": s.messages, "frames": s.frames,
                          "bytes_carried": s.bytes_carried,
                          "busy_time": s.busy_time},
                "channel_frames": list(self.channel_frames),
                "channel_busy_time": list(self.channel_busy_time)}

    def restore_state(self, state: dict) -> None:
        self._next_channel = int(state["next_channel"])
        st = state["stats"]
        self.stats = NetworkStats(
            messages=int(st["messages"]), frames=int(st["frames"]),
            bytes_carried=int(st["bytes_carried"]),
            busy_time=float(st["busy_time"]))
        self.channel_frames = [int(v) for v in state["channel_frames"]]
        self.channel_busy_time = [float(v)
                                  for v in state["channel_busy_time"]]

    def frame_time(self, payload_bytes: int) -> float:
        """Serialization time of one frame carrying ``payload_bytes``."""
        wire_bytes = min(payload_bytes, self.mtu) + self.frame_overhead
        return wire_bytes * 8 / self.bandwidth_bps

    def transfer_time_estimate(self, nbytes: int) -> float:
        """Uncontended wall time to move ``nbytes`` (for tests/models)."""
        nframes = max(1, -(-nbytes // self.mtu))
        return self.latency + sum(
            self.frame_time(min(self.mtu, nbytes - i * self.mtu) or self.mtu)
            for i in range(nframes))

    def transmit(self, nbytes: int):
        """Move ``nbytes`` across one segment; generator, returns duration.

        Channel choice is round-robin (the prototype's channel bonding);
        frames of one message stay on their segment.  This is the plain
        (uninstrumented) variant; obs-enabled fabrics get
        :meth:`_transmit_obs` bound over it at construction.
        """
        if nbytes < 1:
            raise ValueError("nbytes must be >= 1")
        channel = self._next_channel
        segment = self._segments[channel]
        self._next_channel = (channel + 1) % len(self._segments)
        start = self.sim.now
        remaining = nbytes
        yield self.sim.timeout(self.latency)
        while remaining > 0:
            payload = min(remaining, self.mtu)
            with segment.request() as req:
                yield req
                duration = self.frame_time(payload)
                # CSMA/CD-style jitter grows with visible contention.
                if segment.queue_length > 0:
                    duration += float(self.rng.exponential(duration * 0.2))
                yield self.sim.timeout(duration)
                self.stats.frames += 1
                self.stats.busy_time += duration
                self.channel_frames[channel] += 1
                self.channel_busy_time[channel] += duration
            remaining -= payload
        self.stats.messages += 1
        self.stats.bytes_carried += nbytes
        return self.sim.now - start

    def _transmit_obs(self, nbytes: int):
        """Instrumented :meth:`transmit`: identical timing/stats, plus a
        per-frame wire-time observation through the pre-bound channel
        instrument."""
        if nbytes < 1:
            raise ValueError("nbytes must be >= 1")
        channel = self._next_channel
        segment = self._segments[channel]
        self._next_channel = (channel + 1) % len(self._segments)
        observe_frame = self._obs.observe_frame[channel]
        start = self.sim.now
        remaining = nbytes
        yield self.sim.timeout(self.latency)
        while remaining > 0:
            payload = min(remaining, self.mtu)
            with segment.request() as req:
                yield req
                duration = self.frame_time(payload)
                if segment.queue_length > 0:
                    duration += float(self.rng.exponential(duration * 0.2))
                yield self.sim.timeout(duration)
                observe_frame(duration)
                self.stats.frames += 1
                self.stats.busy_time += duration
                self.channel_frames[channel] += 1
                self.channel_busy_time[channel] += duration
            remaining -= payload
        self.stats.messages += 1
        self.stats.bytes_carried += nbytes
        return self.sim.now - start
