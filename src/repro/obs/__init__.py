"""Runtime observability: metrics registry, span timing, run snapshots.

The paper's contribution is *measurement*; this package points the same
discipline at the reproduction's own runtime.  A zero-dependency metrics
registry (:class:`Counter` / :class:`Gauge` / :class:`Histogram` with
fixed log2 buckets and labeled children) instruments the hot layers —
the simulator event loop, the disk service path, the buffer cache, the
``/proc`` trace transport, and the store writers — and an
:class:`ObsRecorder` gathers everything into one JSON-serialisable
snapshot per experiment run.

Instrumentation is off by default: layers hold the shared
:data:`NULL_REGISTRY` (or skip the calls entirely behind a ``None``
guard), so an uninstrumented run pays nothing.  Enable it with
``ExperimentRunner(obs=True)``, ``repro-experiment --obs``, and inspect
or diff stored snapshots with ``repro-trace obs``.
"""

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    NULL_REGISTRY,
    Span,
    UNDERFLOW,
    bucket_edge,
    bucket_of,
)
from repro.obs.recorder import (
    NULL_RECORDER,
    ObsRecorder,
    events_per_second,
)
from repro.obs.render import (
    compare_snapshots,
    flatten_snapshot,
    render_snapshot_table,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_RECORDER",
    "NULL_REGISTRY",
    "NullRegistry",
    "ObsRecorder",
    "Span",
    "UNDERFLOW",
    "bucket_edge",
    "bucket_of",
    "compare_snapshots",
    "events_per_second",
    "flatten_snapshot",
    "render_snapshot_table",
]
