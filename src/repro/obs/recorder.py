"""Per-run metrics collection: the glue between layers and snapshots.

An :class:`ObsRecorder` owns one :class:`~repro.obs.registry.MetricsRegistry`
for one experiment run.  Layers with per-event distributions (the
simulator's event loop, the disk's seek/service histograms) write into the
registry live; layers that already keep cheap lifetime counters
(:class:`~repro.disk.device.DiskStats`,
:class:`~repro.kernel.buffercache.CacheStats`, the ``/proc`` transport, the
store writers) are *harvested* once at the end of the run — zero overhead
during the run, identical metric naming in the snapshot.

Metric naming scheme (see ARCHITECTURE.md §10)::

    <layer>.<metric>{<label>}

    sim.events_processed            counter, whole run
    sim.process_resumes{prefix}     counter per process-name prefix
    disk.service_seconds{hda0}      histogram per disk
    cache.hits{0}                   counter per node id
    store.compressed_bytes{0}       counter per node id
"""

from __future__ import annotations

from typing import Optional

from repro.obs.registry import MetricsRegistry, NULL_REGISTRY


class ObsRecorder:
    """Collects one run's metrics; :meth:`snapshot` freezes them."""

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = MetricsRegistry() if registry is None else registry

    @property
    def enabled(self) -> bool:
        return self.registry.enabled

    # -- harvesting ----------------------------------------------------------
    def collect_cluster(self, cluster) -> None:
        """Harvest every node's lifetime counters into the registry.

        ``disk.*{node}`` aggregates over the node's volume members (for a
        single-disk node that is exactly the one disk, bit-identical to
        the pre-volume scheme); multi-disk nodes additionally get a
        ``physdisk.*{hdb3}`` family keyed by physical device name, and
        every node reports its volume's logical/physical request fan-out.
        The cluster-wide fabric (Ethernet segments, PVM, PIOUS servers)
        is harvested once per run under ``net.* / pvm.* / pious.*``.
        """
        reg = self.registry
        for node in cluster.nodes:
            label = str(node.node_id)
            kernel = node.kernel

            disks = getattr(kernel, "disks", (kernel.disk,))
            stats = [disk.stats for disk in disks]
            for name, value in (
                    ("disk.reads", sum(d.reads for d in stats)),
                    ("disk.writes", sum(d.writes for d in stats)),
                    ("disk.sectors_read",
                     sum(d.sectors_read for d in stats)),
                    ("disk.sectors_written",
                     sum(d.sectors_written for d in stats)),
                    ("disk.busy_seconds",
                     sum(d.busy_time for d in stats)),
                    ("disk.media_errors",
                     sum(d.media_errors for d in stats))):
                reg.counter(name).child(label).inc(value)
            reg.gauge("disk.max_queue_depth").child(label).set(
                max(d.max_queue_depth for d in stats))
            requests = sum(d.requests for d in stats)
            reg.gauge("disk.mean_latency_seconds").child(label).set(
                sum(d.total_latency for d in stats) / requests
                if requests else 0.0)
            if len(disks) > 1:
                for disk, d in zip(disks, stats):
                    for name, value in (
                            ("physdisk.reads", d.reads),
                            ("physdisk.writes", d.writes),
                            ("physdisk.sectors_read", d.sectors_read),
                            ("physdisk.sectors_written",
                             d.sectors_written),
                            ("physdisk.busy_seconds", d.busy_time)):
                        reg.counter(name).child(disk.name).inc(value)
            volume = getattr(kernel, "volume", None)
            if volume is not None:
                reg.counter("volume.logical_requests").child(label).inc(
                    volume.logical_requests)
                reg.counter("volume.physical_requests").child(label).inc(
                    volume.physical_requests)

            c = kernel.cache.stats
            for name, value in (("cache.hits", c.hits),
                                ("cache.misses", c.misses),
                                ("cache.evictions", c.evictions),
                                ("cache.writebacks", c.writebacks),
                                ("cache.writeback_requests",
                                 c.writeback_requests)):
                reg.counter(name).child(label).inc(value)
            reg.gauge("cache.hit_ratio").child(label).set(c.hit_ratio)

            t = kernel.transport
            reg.counter("trace.records_drained").child(label).inc(
                t.records_drained)
            reg.counter("trace.ring_dropped").child(label).inc(t.dropped)

            drv = kernel.driver
            reg.counter("driver.requests_issued").child(label).inc(
                drv.requests_issued)
            reg.counter("driver.retries").child(label).inc(drv.retries)

        network = getattr(cluster, "network", None)
        if network is not None:
            n = network.stats
            reg.counter("net.messages").inc(n.messages)
            reg.counter("net.frames").inc(n.frames)
            reg.counter("net.bytes_carried").inc(n.bytes_carried)
            reg.counter("net.busy_seconds").inc(n.busy_time)
            for channel in range(network.channels):
                reg.counter("net.frames").child(f"ch{channel}").inc(
                    network.channel_frames[channel])
                reg.counter("net.busy_seconds").child(f"ch{channel}").inc(
                    network.channel_busy_time[channel])
        pvm = getattr(cluster, "pvm", None)
        if pvm is not None:
            reg.counter("pvm.sends").inc(pvm.sends)
        pious = getattr(cluster, "pious", None)
        if pious is not None:
            reg.counter("pious.requests_served").inc(pious.requests_served)
            reg.counter("pious.bytes_served").inc(pious.bytes_served)
            for server_id, count in sorted(
                    pious.requests_by_server.items()):
                reg.counter("pious.requests_served").child(
                    str(server_id)).inc(count)

    def collect_capture(self, capture) -> None:
        """Harvest the streaming store writers (records, chunks, bytes).

        Call after the writers closed (tail chunks spilled) so the byte
        counts cover the whole file.
        """
        reg = self.registry
        for node_id, writer in sorted(capture.writers.items()):
            label = str(node_id)
            for name, value in (
                    ("store.records_written", writer.records_written),
                    ("store.chunks_spilled", writer.chunks_written),
                    ("store.compressed_bytes", writer.compressed_bytes),
                    ("store.raw_bytes", writer.raw_bytes)):
                reg.counter(name).child(label).inc(value)

    def collect_run(self, wall_seconds: float, sim_seconds: float) -> None:
        """Whole-run totals: the wall-time-per-sim-second speed gauge.

        These are the only non-deterministic metrics in a snapshot;
        comparisons should mask them (``repro-trace obs`` shows them so
        regressions in simulator *speed* are visible too).
        """
        reg = self.registry
        reg.gauge("run.wall_seconds").set(wall_seconds)
        reg.gauge("run.sim_seconds").set(sim_seconds)
        if wall_seconds > 0:
            reg.gauge("run.sim_seconds_per_wall_second").set(
                sim_seconds / wall_seconds)

    # -- output --------------------------------------------------------------
    def snapshot(self) -> dict:
        return self.registry.snapshot()


def events_per_second(snapshot: Optional[dict],
                      wall_seconds: float) -> Optional[float]:
    """The simulator's achieved event rate from an obs snapshot.

    ``snapshot`` is an :meth:`ObsRecorder.snapshot` dict (e.g.
    ``ExperimentResult.obs``); returns ``sim.events_processed`` divided
    by the wall-clock seconds the run took, or ``None`` when the run
    carried no observability.  This is what ``repro.serve`` workers
    stamp into live ``point`` progress events.
    """
    if not snapshot or wall_seconds <= 0:
        return None
    events = (snapshot.get("sim.events_processed") or {}).get("value")
    if not events:
        return None
    return round(float(events) / wall_seconds, 1)


#: recorder whose registry is the process-wide no-op (never snapshots)
NULL_RECORDER = ObsRecorder(registry=NULL_REGISTRY)
