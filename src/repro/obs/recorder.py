"""Per-run metrics collection: the glue between layers and snapshots.

An :class:`ObsRecorder` owns one :class:`~repro.obs.registry.MetricsRegistry`
for one experiment run.  Layers with per-event distributions (the
simulator's event loop, the disk's seek/service histograms) write into the
registry live; layers that already keep cheap lifetime counters
(:class:`~repro.disk.device.DiskStats`,
:class:`~repro.kernel.buffercache.CacheStats`, the ``/proc`` transport, the
store writers) are *harvested* once at the end of the run — zero overhead
during the run, identical metric naming in the snapshot.

Metric naming scheme (see ARCHITECTURE.md §10)::

    <layer>.<metric>{<label>}

    sim.events_processed            counter, whole run
    sim.process_resumes{prefix}     counter per process-name prefix
    disk.service_seconds{hda0}      histogram per disk
    cache.hits{0}                   counter per node id
    store.compressed_bytes{0}       counter per node id
"""

from __future__ import annotations

from typing import Optional

from repro.obs.registry import MetricsRegistry, NULL_REGISTRY


class ObsRecorder:
    """Collects one run's metrics; :meth:`snapshot` freezes them."""

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = MetricsRegistry() if registry is None else registry

    @property
    def enabled(self) -> bool:
        return self.registry.enabled

    # -- harvesting ----------------------------------------------------------
    def collect_cluster(self, cluster) -> None:
        """Harvest every node's lifetime counters into the registry."""
        reg = self.registry
        for node in cluster.nodes:
            label = str(node.node_id)
            kernel = node.kernel

            d = kernel.disk.stats
            for name, value in (("disk.reads", d.reads),
                                ("disk.writes", d.writes),
                                ("disk.sectors_read", d.sectors_read),
                                ("disk.sectors_written", d.sectors_written),
                                ("disk.busy_seconds", d.busy_time),
                                ("disk.media_errors", d.media_errors)):
                reg.counter(name).child(label).inc(value)
            reg.gauge("disk.max_queue_depth").child(label).set(
                d.max_queue_depth)
            reg.gauge("disk.mean_latency_seconds").child(label).set(
                d.mean_latency)

            c = kernel.cache.stats
            for name, value in (("cache.hits", c.hits),
                                ("cache.misses", c.misses),
                                ("cache.evictions", c.evictions),
                                ("cache.writebacks", c.writebacks),
                                ("cache.writeback_requests",
                                 c.writeback_requests)):
                reg.counter(name).child(label).inc(value)
            reg.gauge("cache.hit_ratio").child(label).set(c.hit_ratio)

            t = kernel.transport
            reg.counter("trace.records_drained").child(label).inc(
                t.records_drained)
            reg.counter("trace.ring_dropped").child(label).inc(t.dropped)

            drv = kernel.driver
            reg.counter("driver.requests_issued").child(label).inc(
                drv.requests_issued)
            reg.counter("driver.retries").child(label).inc(drv.retries)

    def collect_capture(self, capture) -> None:
        """Harvest the streaming store writers (records, chunks, bytes).

        Call after the writers closed (tail chunks spilled) so the byte
        counts cover the whole file.
        """
        reg = self.registry
        for node_id, writer in sorted(capture.writers.items()):
            label = str(node_id)
            for name, value in (
                    ("store.records_written", writer.records_written),
                    ("store.chunks_spilled", writer.chunks_written),
                    ("store.compressed_bytes", writer.compressed_bytes),
                    ("store.raw_bytes", writer.raw_bytes)):
                reg.counter(name).child(label).inc(value)

    def collect_run(self, wall_seconds: float, sim_seconds: float) -> None:
        """Whole-run totals: the wall-time-per-sim-second speed gauge.

        These are the only non-deterministic metrics in a snapshot;
        comparisons should mask them (``repro-trace obs`` shows them so
        regressions in simulator *speed* are visible too).
        """
        reg = self.registry
        reg.gauge("run.wall_seconds").set(wall_seconds)
        reg.gauge("run.sim_seconds").set(sim_seconds)
        if wall_seconds > 0:
            reg.gauge("run.sim_seconds_per_wall_second").set(
                sim_seconds / wall_seconds)

    # -- output --------------------------------------------------------------
    def snapshot(self) -> dict:
        return self.registry.snapshot()


#: recorder whose registry is the process-wide no-op (never snapshots)
NULL_RECORDER = ObsRecorder(registry=NULL_REGISTRY)
