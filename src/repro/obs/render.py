"""Snapshot rendering: flatten, align, and compare metrics snapshots.

A *snapshot* is the plain-dict output of
:meth:`~repro.obs.registry.MetricsRegistry.snapshot`.  This module turns
one or more snapshots into flat ``row-name -> number`` maps and renders
them as an aligned text table — the format behind ``repro-trace obs``,
``repro-experiment --obs``, and the report sections.
"""

from __future__ import annotations

from typing import Dict, List, Optional

#: histogram sub-rows surfaced in flat views, in display order
_HIST_FIELDS = ("count", "mean", "max", "underflow")


def _hist_rows(name: str, value: dict) -> Dict[str, float]:
    count = value.get("count", 0)
    total = value.get("sum", 0)
    rows = {f"{name}.count": count}
    if count:
        rows[f"{name}.mean"] = total / count
        rows[f"{name}.max"] = value.get("max", 0)
        buckets = value.get("buckets") or {}
        # "-1024"/"-1025" were the pre-underflow sentinel keys; folding
        # them in keeps old persisted snapshots comparable to new ones
        underflow = (buckets.get("underflow", 0)
                     + buckets.get("-1024", 0) + buckets.get("-1025", 0))
        if underflow:
            rows[f"{name}.underflow"] = underflow
    return rows


def flatten_snapshot(snapshot: dict) -> Dict[str, float]:
    """Snapshot dict -> flat ``metric[{label}][.field] -> number`` map.

    Counters and gauges contribute one row (their value; gauge
    high-water marks appear as ``name.max``); histograms contribute
    ``.count`` / ``.mean`` / ``.max`` rows.  Labeled children expand to
    one row group per label.
    """
    flat: Dict[str, float] = {}

    def emit(name: str, kind: str, value) -> None:
        if kind == "histogram":
            flat.update(_hist_rows(name, value))
        elif isinstance(value, dict):  # gauge with a high-water mark
            flat[name] = value.get("value", 0)
            flat[f"{name}.max"] = value.get("max", 0)
        else:
            flat[name] = value

    for name, entry in snapshot.items():
        kind = entry.get("type", "counter")
        children = entry.get("children")
        if children:
            for label, value in children.items():
                emit(f"{name}{{{label}}}", kind, value)
            if "value" in entry:
                emit(name, kind, entry["value"])
        elif "value" in entry:
            emit(name, kind, entry["value"])
    return flat


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.4g}"
    return f"{int(value):,}"


def render_snapshot_table(snapshots: Dict[str, dict],
                          indent: str = "",
                          only: Optional[List[str]] = None) -> str:
    """Aligned table of one or more snapshots, columns in dict order.

    With exactly two snapshots a trailing ``delta%`` column compares the
    second against the first (the regression-guard view).  ``only``
    keeps rows whose name starts with any of the given prefixes.
    """
    if not snapshots:
        return indent + "(no metrics)"
    flats = {title: flatten_snapshot(snap)
             for title, snap in snapshots.items()}
    rows: List[str] = []
    for flat in flats.values():
        for name in flat:
            if name not in rows:
                rows.append(name)
    rows.sort()
    if only:
        rows = [r for r in rows if any(r.startswith(p) for p in only)]
    titles = list(flats)
    compare = len(titles) == 2

    name_w = max([len(r) for r in rows] or [6])
    cells = {(r, t): _fmt(flats[t].get(r)) for r in rows for t in titles}
    col_w = {t: max([len(t)] + [len(cells[r, t]) for r in rows])
             for t in titles}

    header = indent + "metric".ljust(name_w)
    for t in titles:
        header += "  " + t.rjust(col_w[t])
    if compare:
        header += "  " + "delta%".rjust(8)
    lines = [header]
    for r in rows:
        line = indent + r.ljust(name_w)
        for t in titles:
            line += "  " + cells[r, t].rjust(col_w[t])
        if compare:
            line += "  " + _delta(flats[titles[0]].get(r),
                                  flats[titles[1]].get(r)).rjust(8)
        lines.append(line)
    return "\n".join(lines)


def _delta(before, after) -> str:
    if before is None or after is None:
        return "-"
    if before == after:
        return "0"
    if not before:
        return "new"
    return f"{(after - before) / before * 100:+.1f}"


def compare_snapshots(before: dict, after: dict,
                      rel_tolerance: float = 0.0) -> Dict[str, tuple]:
    """Rows that differ between two snapshots: ``name -> (before, after)``.

    ``rel_tolerance`` ignores relative drifts up to the given fraction
    (useful to mask wall-clock metrics when diffing as a regression
    guard).
    """
    a, b = flatten_snapshot(before), flatten_snapshot(after)
    diffs = {}
    for name in sorted(set(a) | set(b)):
        va, vb = a.get(name), b.get(name)
        if va == vb:
            continue
        if (rel_tolerance and va is not None and vb is not None and va
                and abs(vb - va) / abs(va) <= rel_tolerance):
            continue
        diffs[name] = (va, vb)
    return diffs
