"""Zero-dependency metrics primitives: counters, gauges, histograms.

The instruments mirror the shape of production metric systems (Prometheus
client libraries, Recorder's per-level counters) scaled down to the
simulator: a :class:`MetricsRegistry` hands out named instruments, each
instrument can fan out into *labeled children* (per node, per disk, per
scheduler discipline), and :meth:`MetricsRegistry.snapshot` freezes
everything into plain JSON-serialisable dicts.

Two properties the experiment harness depends on:

* **determinism** — instruments count simulation facts (events, requests,
  bucket tallies), so two runs with the same seed produce identical
  snapshots apart from the explicitly wall-clock metrics (``*wall*``);
* **near-zero cost when disabled** — the module-level :data:`NULL_REGISTRY`
  is a :class:`NullRegistry` whose instruments are shared no-ops, and the
  hot layers additionally guard their per-event calls so a run without
  observability pays at most one attribute test.
"""

from __future__ import annotations

import math
import time
from typing import Dict, Optional

_frexp = math.frexp


class Counter:
    """A monotonically increasing value (events processed, bytes moved)."""

    kind = "counter"
    __slots__ = ("name", "help", "value", "_children")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value: float = 0
        self._children: Optional[Dict[str, "Counter"]] = None

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def child(self, label: str) -> "Counter":
        """The labeled sub-counter (created on first use)."""
        if self._children is None:
            self._children = {}
        got = self._children.get(label)
        if got is None:
            got = self._children[label] = type(self)(
                f"{self.name}{{{label}}}", self.help)
        return got

    # -- snapshot -----------------------------------------------------------
    def _value_snapshot(self):
        return _num(self.value)

    def snapshot(self) -> dict:
        out: dict = {"type": self.kind}
        if self._children:
            out["children"] = {label: child._value_snapshot()
                               for label, child in sorted(
                                   self._children.items())}
            if self.value:
                out["value"] = self._value_snapshot()
        else:
            out["value"] = self._value_snapshot()
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name}={self._value_snapshot()}>"


class Gauge(Counter):
    """A value that moves both ways; remembers its high-water mark."""

    kind = "gauge"
    __slots__ = ("max",)

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self.max: float = 0

    def inc(self, amount: float = 1) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1) -> None:
        self.value -= amount

    def set(self, value: float) -> None:
        self.value = value
        if value > self.max:
            self.max = value

    def _value_snapshot(self):
        if self.max > self.value:
            return {"value": _num(self.value), "max": _num(self.max)}
        return _num(self.value)


class Histogram:
    """Distribution sketch over fixed power-of-two buckets.

    ``observe(v)`` tallies ``v`` into the bucket ``[2**(e-1), 2**e)`` (the
    binary exponent from :func:`math.frexp`); zero and negative values go
    to a single explicit ``underflow`` bucket (they have no binary
    exponent).  Log2 buckets need no a-priori range and line up exactly
    across runs — the property that makes snapshots diffable as
    regression guards.

    The hot path is deliberately an append: observations buffer raw in
    :attr:`raw` (``observe`` *is* ``raw.append`` after the first lookup)
    and fold into count/sum/min/max/buckets lazily when any statistic is
    read.  Instrumented call sites pay one list append per observation.
    """

    kind = "histogram"
    __slots__ = ("name", "help", "raw", "observe", "_count", "_sum",
                 "_min", "_max", "_buckets", "_underflow", "_children")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        #: raw observations not yet folded into the bucket tallies
        self.raw: list = []
        #: bound-method fast path: ``observe(v)`` is ``raw.append(v)``
        self.observe = self.raw.append
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        #: binary exponent -> observation count (sparse, positive values)
        self._buckets: Dict[int, int] = {}
        #: observations <= 0 (no binary exponent to bucket them under)
        self._underflow = 0
        self._children: Optional[Dict[str, "Histogram"]] = None

    def _fold(self) -> None:
        """Fold buffered raw observations into the running statistics."""
        raw = self.raw
        if not raw:
            return
        values = raw[:]
        del raw[:]  # in place: bound appends stay valid
        self._min = min(self._min, min(values))
        self._max = max(self._max, max(values))
        self._count += len(values)
        self._sum += float(sum(values))
        buckets = self._buckets
        frexp = _frexp
        underflow = 0
        for value in values:
            if value > 0:
                key = frexp(value)[1]
                buckets[key] = buckets.get(key, 0) + 1
            else:
                underflow += 1
        if underflow:
            self._underflow += underflow

    @property
    def count(self) -> int:
        self._fold()
        return self._count

    @property
    def sum(self) -> float:
        self._fold()
        return self._sum

    @property
    def min(self) -> float:
        self._fold()
        return self._min

    @property
    def max(self) -> float:
        self._fold()
        return self._max

    @property
    def buckets(self) -> Dict[int, int]:
        """Positive-value tallies only; see :attr:`underflow` for v <= 0."""
        self._fold()
        return self._buckets

    @property
    def underflow(self) -> int:
        """Observations that were zero or negative."""
        self._fold()
        return self._underflow

    @property
    def mean(self) -> float:
        self._fold()
        return self._sum / self._count if self._count else 0.0

    def child(self, label: str) -> "Histogram":
        if self._children is None:
            self._children = {}
        got = self._children.get(label)
        if got is None:
            got = self._children[label] = Histogram(
                f"{self.name}{{{label}}}", self.help)
        return got

    # -- snapshot -----------------------------------------------------------
    def _value_snapshot(self) -> dict:
        self._fold()
        out = {"count": self._count, "sum": _num(self._sum)}
        if self._count:
            out["min"] = _num(self._min)
            out["max"] = _num(self._max)
            buckets: dict = {}
            if self._underflow:
                buckets[UNDERFLOW] = self._underflow
            buckets.update((str(k), v)
                           for k, v in sorted(self._buckets.items()))
            out["buckets"] = buckets
        return out

    def snapshot(self) -> dict:
        out: dict = {"type": self.kind}
        if self._children:
            out["children"] = {label: child._value_snapshot()
                               for label, child in sorted(
                                   self._children.items())}
            if self.count:
                out["value"] = self._value_snapshot()
        else:
            out["value"] = self._value_snapshot()
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Histogram {self.name} n={self.count} "
                f"mean={self.mean:.6g}>")


#: bucket key for observations with no binary exponent (v <= 0)
UNDERFLOW = "underflow"


def bucket_of(value: float):
    """Bucket key: binary exponent ``e`` with ``2**(e-1) <= v < 2**e``.

    Zero and negative values map to the explicit :data:`UNDERFLOW`
    bucket (they have no binary exponent; the historical ``-1024`` /
    ``-1025`` integer sentinels leaked raw into snapshots and renders).
    """
    if value <= 0:
        return UNDERFLOW
    return math.frexp(value)[1]


def bucket_edge(key) -> float:
    """Inclusive upper edge of a bucket (``0`` for the underflow bucket).

    The pre-underflow integer sentinels are still accepted so old
    persisted snapshots keep rendering.
    """
    if key == UNDERFLOW or key == -1024:
        return 0.0
    if key == -1025:
        return -math.inf
    return 2.0 ** key


class Span:
    """Context manager timing a block into a histogram (wall seconds)."""

    __slots__ = ("_hist", "_t0")

    def __init__(self, histogram: Histogram):
        self._hist = histogram

    def __enter__(self) -> "Span":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._hist.observe(time.perf_counter() - self._t0)


class MetricsRegistry:
    """Named instruments, created on first use, snapshotted on demand."""

    enabled = True

    def __init__(self):
        self._metrics: Dict[str, object] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, Counter, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(name, Gauge, help)

    def histogram(self, name: str, help: str = "") -> Histogram:
        return self._get(name, Histogram, help)

    def span(self, name: str, help: str = "") -> Span:
        """``with registry.span("phase.settle"): ...`` wall timing."""
        return Span(self.histogram(name, help))

    def snapshot(self) -> dict:
        """Every instrument as a plain dict, sorted by metric name."""
        return {name: self._metrics[name].snapshot()
                for name in sorted(self._metrics)}

    # -- checkpoint state surface -------------------------------------------
    def snapshot_state(self) -> dict:
        """Full internal state of every instrument (checkpoint path).

        Unlike :meth:`snapshot` (a lossy report), this keeps everything
        needed to put the registry back exactly: helps, gauge high-water
        marks, histogram extrema, and the child tree.
        """
        return {name: _instrument_state(self._metrics[name])
                for name in sorted(self._metrics)}

    def restore_state(self, state: dict) -> None:
        """Recreate/overwrite instruments so counting continues exactly
        where the snapshot left off.  Instruments already registered are
        updated in place (live references keep working)."""
        makers = {"counter": self.counter, "gauge": self.gauge,
                  "histogram": self.histogram}
        for name, sub in state.items():
            instrument = makers[sub["kind"]](name, sub.get("help", ""))
            _restore_instrument(instrument, sub)

    # -- internals ----------------------------------------------------------
    def _get(self, name: str, cls, help: str):
        got = self._metrics.get(name)
        if got is None:
            got = self._metrics[name] = cls(name, help)
        elif type(got) is not cls:
            raise TypeError(f"metric {name!r} already registered as "
                            f"{type(got).__name__}, not {cls.__name__}")
        return got


class _NullInstrument:
    """Shared do-nothing stand-in for every instrument type."""

    __slots__ = ()
    count = 0
    value = 0
    mean = 0.0

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def child(self, label: str) -> "_NullInstrument":
        return self

    def snapshot(self) -> dict:
        return {}

    def __enter__(self) -> "_NullInstrument":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL = _NullInstrument()


class NullRegistry(MetricsRegistry):
    """The disabled registry: every instrument is the shared no-op."""

    enabled = False

    def counter(self, name: str, help: str = "") -> Counter:
        return _NULL  # type: ignore[return-value]

    gauge = counter  # type: ignore[assignment]
    histogram = counter  # type: ignore[assignment]

    def span(self, name: str, help: str = ""):
        return _NULL

    def snapshot(self) -> dict:
        return {}

    def snapshot_state(self) -> dict:
        return {}

    def restore_state(self, state: dict) -> None:
        pass


#: process-wide disabled registry; safe to share (it holds no state)
NULL_REGISTRY = NullRegistry()


def _instrument_state(m) -> dict:
    """One instrument's complete state as a plain tree (recursive)."""
    if m.kind == "histogram":
        m._fold()
        state: dict = {"kind": "histogram", "help": m.help,
                       "count": m._count, "sum": m._sum,
                       "min": m._min, "max": m._max,
                       "underflow": m._underflow,
                       "buckets": {str(k): int(v)
                                   for k, v in sorted(m._buckets.items())}}
    else:
        state = {"kind": m.kind, "help": m.help, "value": m.value}
        if m.kind == "gauge":
            state["max"] = m.max
    if m._children:
        state["children"] = {label: _instrument_state(child)
                             for label, child in sorted(m._children.items())}
    return state


def _restore_instrument(m, state: dict) -> None:
    if state["kind"] == "histogram":
        del m.raw[:]
        m._count = int(state["count"])
        m._sum = float(state["sum"])
        m._min = float(state["min"])
        m._max = float(state["max"])
        m._underflow = int(state["underflow"])
        m._buckets = {int(k): int(v)
                      for k, v in state["buckets"].items()}
    else:
        m.value = state["value"]
        if state["kind"] == "gauge":
            m.max = state["max"]
    for label, sub in state.get("children", {}).items():
        _restore_instrument(m.child(label), sub)


def _num(value: float):
    """Ints stay ints in snapshots (JSON round-trip friendly)."""
    if isinstance(value, float) and value.is_integer():
        return int(value)
    return value
