"""Workload synthesis and what-if tuning — the paper's stated next step.

Section 5 closes: "Our next step is to integrate these data into a
parameter set that can be used for system design and tuning of parallel
systems and applications."  This package does exactly that:

* :mod:`.model` fits a compact parameter set (request-size mixture,
  read/write mix, arrival process, spatial/temporal locality structure)
  from any trace and generates statistically matching synthetic traces;
* :mod:`.replay` replays a trace — measured or synthetic — against a
  configurable disk subsystem (scheduler, mechanics, geometry) and reports
  latency/throughput, enabling the design-tuning studies the parameter
  set exists for.
"""

from repro.synth.model import WorkloadModel, fit_workload_model
from repro.synth.phased import PhasedWorkloadModel, fit_phased_model
from repro.synth.replay import ReplayReport, replay_trace

__all__ = [
    "PhasedWorkloadModel",
    "ReplayReport",
    "WorkloadModel",
    "fit_phased_model",
    "fit_workload_model",
    "replay_trace",
]
