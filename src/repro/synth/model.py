"""Fitting a workload parameter set and generating synthetic traces.

The fitted :class:`WorkloadModel` captures what the paper measures:

* the request-size distribution (empirical pmf over exact sizes — the
  1 KB / 4 KB / 16 KB class structure survives verbatim);
* the read/write mix, per size class (reads are concentrated in paging
  and streaming sizes);
* the arrival process: mean rate plus a burstiness coefficient fitted
  from the inter-arrival coefficient of variation (generated as a
  hyperexponential/exponential process);
* spatial structure: the per-sector empirical distribution, truncated to
  the hot set plus a band-level residual — preserving both the Figure 7
  band profile and the Figure 8 hot spots.

``generate`` draws a trace of any duration from the fitted set; the
round-trip fidelity (fit → generate → re-measure) is validated in the
``synth`` benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.locality import BAND_SECTORS
from repro.core.trace import TraceDataset

#: hot sectors modelled individually; the rest degrade to band-uniform
HOT_SET_SIZE = 256


@dataclass
class WorkloadModel:
    """A fitted parameter set, sufficient to regenerate the workload."""

    #: request sizes (KB) and their probabilities
    sizes_kb: np.ndarray
    size_probs: np.ndarray
    #: P(read | size class) per size
    read_prob_by_size: np.ndarray
    #: mean arrival rate over the whole trace (requests/second)
    arrival_rate: float
    #: squared coefficient of variation of inter-arrival times (>= 1
    #: means bursty; generated with a two-phase hyperexponential)
    interarrival_scv: float
    #: individually-modelled hot sectors and their probabilities
    hot_sectors: np.ndarray
    hot_probs: np.ndarray
    #: probability of drawing from the hot set at all
    hot_share: float
    #: residual band distribution: band start sector -> probability
    band_starts: np.ndarray
    band_probs: np.ndarray
    band_sectors: int = BAND_SECTORS
    source_records: int = 0

    # -- persistence --------------------------------------------------------
    def to_json(self) -> str:
        """Serialise the parameter set (portable, human-inspectable)."""
        import json
        payload = {
            "format": "repro-workload-model-v1",
            "sizes_kb": self.sizes_kb.tolist(),
            "size_probs": self.size_probs.tolist(),
            "read_prob_by_size": self.read_prob_by_size.tolist(),
            "arrival_rate": self.arrival_rate,
            "interarrival_scv": self.interarrival_scv,
            "hot_sectors": self.hot_sectors.tolist(),
            "hot_probs": self.hot_probs.tolist(),
            "hot_share": self.hot_share,
            "band_starts": self.band_starts.tolist(),
            "band_probs": self.band_probs.tolist(),
            "band_sectors": self.band_sectors,
            "source_records": self.source_records,
        }
        return json.dumps(payload, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "WorkloadModel":
        import json
        payload = json.loads(text)
        if payload.get("format") != "repro-workload-model-v1":
            raise ValueError("not a repro workload-model document")
        return cls(
            sizes_kb=np.asarray(payload["sizes_kb"], dtype=np.float64),
            size_probs=np.asarray(payload["size_probs"], dtype=np.float64),
            read_prob_by_size=np.asarray(payload["read_prob_by_size"],
                                         dtype=np.float64),
            arrival_rate=float(payload["arrival_rate"]),
            interarrival_scv=float(payload["interarrival_scv"]),
            hot_sectors=np.asarray(payload["hot_sectors"], dtype=np.int64),
            hot_probs=np.asarray(payload["hot_probs"], dtype=np.float64),
            hot_share=float(payload["hot_share"]),
            band_starts=np.asarray(payload["band_starts"], dtype=np.int64),
            band_probs=np.asarray(payload["band_probs"], dtype=np.float64),
            band_sectors=int(payload["band_sectors"]),
            source_records=int(payload["source_records"]),
        )

    def summary(self) -> Dict[str, float]:
        return {
            "arrival_rate": self.arrival_rate,
            "interarrival_scv": self.interarrival_scv,
            "read_fraction": float(np.dot(self.size_probs,
                                          self.read_prob_by_size)),
            "hot_share": self.hot_share,
            "distinct_sizes": len(self.sizes_kb),
        }

    # -- generation ------------------------------------------------------
    def generate(self, duration: float,
                 rng: Optional[np.random.Generator] = None,
                 node: int = 0) -> TraceDataset:
        """Draw a synthetic trace of ``duration`` seconds."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        rng = rng or np.random.default_rng(0)
        times = self._arrival_times(duration, rng)
        n = len(times)
        if n == 0:
            return TraceDataset.empty()
        size_idx = rng.choice(len(self.sizes_kb), size=n, p=self.size_probs)
        sizes = self.sizes_kb[size_idx]
        reads = rng.random(n) < self.read_prob_by_size[size_idx]
        sectors = self._draw_sectors(n, rng)
        rows = [(float(t), int(s), int(not r), 1, float(kb), node)
                for t, s, r, kb in zip(times, sectors, reads, sizes)]
        return TraceDataset.from_records(rows)

    def _arrival_times(self, duration: float,
                       rng: np.random.Generator) -> np.ndarray:
        rate = self.arrival_rate
        if rate <= 0:
            return np.zeros(0)
        expected = int(rate * duration * 2) + 16
        if self.interarrival_scv <= 1.0:
            gaps = rng.exponential(1.0 / rate, size=expected)
        else:
            # two-phase balanced hyperexponential matching the SCV
            scv = self.interarrival_scv
            p = 0.5 * (1 + np.sqrt((scv - 1) / (scv + 1)))
            mean = 1.0 / rate
            m1 = mean / (2 * p)
            m2 = mean / (2 * (1 - p))
            phase = rng.random(expected) < p
            gaps = np.where(phase,
                            rng.exponential(m1, size=expected),
                            rng.exponential(m2, size=expected))
        times = np.cumsum(gaps)
        return times[times < duration]

    def _draw_sectors(self, n: int, rng: np.random.Generator) -> np.ndarray:
        out = np.empty(n, dtype=np.int64)
        from_hot = rng.random(n) < self.hot_share
        nhot = int(from_hot.sum())
        if nhot and len(self.hot_sectors):
            out[from_hot] = rng.choice(self.hot_sectors, size=nhot,
                                       p=self.hot_probs)
        else:
            from_hot[:] = False
            nhot = 0
        ncold = n - nhot
        if ncold:
            if len(self.band_starts):
                bands = rng.choice(self.band_starts, size=ncold,
                                   p=self.band_probs)
                offsets = rng.integers(0, self.band_sectors, size=ncold)
                out[~from_hot] = bands + offsets
            else:
                out[~from_hot] = rng.choice(self.hot_sectors, size=ncold,
                                            p=self.hot_probs)
        return out


def fit_workload_model(trace: TraceDataset,
                       hot_set_size: int = HOT_SET_SIZE) -> WorkloadModel:
    """Fit the parameter set from a measured trace."""
    if len(trace) < 2:
        raise ValueError("need at least 2 records to fit a model")
    sizes, size_counts = np.unique(trace.size_kb, return_counts=True)
    size_probs = size_counts / size_counts.sum()
    read_prob = np.array([
        float((trace.write[trace.size_kb == s] == 0).mean()) for s in sizes])

    duration = max(trace.duration, 1e-9)
    rate = len(trace) / duration
    gaps = np.diff(np.sort(trace.time))
    gaps = gaps[gaps > 0]
    if len(gaps) >= 2 and gaps.mean() > 0:
        scv = float(gaps.var() / gaps.mean() ** 2)
    else:
        scv = 1.0

    sectors, counts = np.unique(trace.sector, return_counts=True)
    order = np.argsort(counts)[::-1]
    hot_idx = order[:hot_set_size]
    hot_sectors = sectors[hot_idx]
    hot_counts = counts[hot_idx]
    total = counts.sum()
    hot_share = float(hot_counts.sum() / total)
    hot_probs = hot_counts / hot_counts.sum()

    cold_idx = order[hot_set_size:]
    if len(cold_idx):
        cold_bands = (sectors[cold_idx] // BAND_SECTORS) * BAND_SECTORS
        band_starts, inverse = np.unique(cold_bands, return_inverse=True)
        band_counts = np.zeros(len(band_starts))
        np.add.at(band_counts, inverse, counts[cold_idx])
        band_probs = band_counts / band_counts.sum()
    else:
        band_starts = np.zeros(0, dtype=np.int64)
        band_probs = np.zeros(0)

    return WorkloadModel(
        sizes_kb=sizes.astype(np.float64),
        size_probs=size_probs,
        read_prob_by_size=read_prob,
        arrival_rate=rate,
        interarrival_scv=max(scv, 0.01),
        hot_sectors=hot_sectors.astype(np.int64),
        hot_probs=hot_probs,
        hot_share=hot_share,
        band_starts=band_starts.astype(np.int64),
        band_probs=band_probs,
        source_records=len(trace),
    )
