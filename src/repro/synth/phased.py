"""Phase-aware workload synthesis.

The flat :class:`~repro.synth.model.WorkloadModel` matches aggregate
statistics but smears the *phase structure* — the paper's figures hinge
on when things happen (the wavelet read burst at ~50 s, the terminal
surge).  :func:`fit_phased_model` fits an independent parameter set per
time window, so generated traces reproduce the time profile as well.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.trace import TraceDataset
from repro.driver import TRACE_DTYPE
from repro.synth.model import WorkloadModel, fit_workload_model


@dataclass
class PhasedWorkloadModel:
    """A sequence of per-window parameter sets."""

    window: float
    #: one model per window; None where the window saw < 2 requests
    models: List[Optional[WorkloadModel]]
    source_duration: float

    @property
    def nwindows(self) -> int:
        return len(self.models)

    @property
    def active_windows(self) -> int:
        return sum(1 for m in self.models if m is not None)

    def rate_profile(self) -> np.ndarray:
        """Arrival rate per window (0 where empty)."""
        return np.array([m.arrival_rate if m is not None else 0.0
                         for m in self.models])

    def generate(self, rng: Optional[np.random.Generator] = None,
                 node: int = 0) -> TraceDataset:
        """Draw a synthetic trace spanning the source duration."""
        rng = rng or np.random.default_rng(0)
        pieces = []
        for i, model in enumerate(self.models):
            if model is None:
                continue
            start = i * self.window
            span = min(self.window, self.source_duration - start)
            if span <= 0:
                continue
            piece = model.generate(span, rng=rng, node=node)
            if len(piece):
                shifted = piece.records.copy()
                shifted["time"] += start
                pieces.append(shifted)
        if not pieces:
            return TraceDataset.empty()
        merged = np.concatenate(pieces)
        merged = merged[np.argsort(merged["time"], kind="stable")]
        return TraceDataset(merged.astype(TRACE_DTYPE))


def fit_phased_model(trace: TraceDataset, window: float = 30.0,
                     hot_set_size: int = 64) -> PhasedWorkloadModel:
    """Fit one parameter set per ``window`` seconds of the trace."""
    if len(trace) < 2:
        raise ValueError("need at least 2 records")
    if window <= 0:
        raise ValueError("window must be positive")
    duration = trace.duration
    nwindows = max(1, int(np.ceil(duration / window)))
    models: List[Optional[WorkloadModel]] = []
    for i in range(nwindows):
        # the final window is closed so the record at t == duration counts
        end = (i + 1) * window if i < nwindows - 1 else duration + 1e-9
        piece = trace.between(i * window, end)
        if len(piece) < 2:
            models.append(None)
            continue
        shifted = piece.records.copy()
        shifted["time"] -= i * window
        model = fit_workload_model(TraceDataset(shifted),
                                   hot_set_size=hot_set_size)
        # rate over the full window, not over the piece's internal span
        model.arrival_rate = len(piece) / window
        models.append(model)
    return PhasedWorkloadModel(window=window, models=models,
                               source_duration=duration)
