"""Trace replay against configurable disk subsystems.

Feeds a trace's requests (at their recorded arrival times) into a freshly
built disk model and measures the latency/throughput consequences of
design choices: queue discipline, spindle speed, seek profile.  This is
the "system design and tuning" use the paper's parameter set targets —
the scheduler ablation benchmark is built on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.trace import TraceDataset
from repro.disk import Disk, DiskServiceModel, IORequest
# the shared plugin registry (historically a module-level dict here);
# schedulers registered anywhere in the process are replayable by name
from repro.disk.scheduler import SCHEDULERS
from repro.sim import Simulator


@dataclass(frozen=True)
class ReplayReport:
    """Latency/throughput outcome of one replay."""

    scheduler: str
    requests: int
    duration: float
    mean_latency: float
    p95_latency: float
    max_latency: float
    disk_busy_fraction: float
    max_queue_depth: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{self.scheduler:>6}: mean={self.mean_latency * 1e3:7.2f} ms "
                f"p95={self.p95_latency * 1e3:7.2f} ms "
                f"busy={self.disk_busy_fraction * 100:5.1f}% "
                f"maxq={self.max_queue_depth}")


def _record_arrays(trace):
    """Yield the trace's records as one or more structured arrays.

    Accepts a :class:`TraceDataset` (one array), a
    :class:`~repro.store.TraceReader` or any object with ``iter_arrays``
    (streamed chunk by chunk — a stored trace replays without ever being
    materialised whole), or a plain structured array.
    """
    if isinstance(trace, TraceDataset):
        yield trace.records
    elif hasattr(trace, "iter_arrays"):
        yield from trace.iter_arrays()
    else:
        yield np.asarray(trace)


def replay_trace(trace, scheduler: str = "clook",
                 service: Optional[DiskServiceModel] = None,
                 seed: int = 0,
                 time_scale: float = 1.0,
                 drive_cache=None, scenario=None) -> ReplayReport:
    """Replay ``trace`` on a fresh disk; returns the latency report.

    ``trace`` may be a :class:`TraceDataset` or a
    :class:`~repro.store.TraceReader` — stored traces stream straight
    from disk.  ``time_scale`` < 1 compresses the arrival schedule,
    raising the load (0.1 presents the same requests ten times as fast)
    — the standard trace-driven way to probe saturation behaviour.

    Passing ``scenario`` (a :class:`~repro.config.Scenario`) replays the
    trace against the scenario's whole node-disk fabric instead of one
    ad-hoc disk: every member of ``scenario.node.disks`` is built with
    its own configured scheduler and drive cache, the members are joined
    by the scenario's volume policy, and requests go through the
    volume's address math — the what-if "same workload on raid0" in one
    call.  ``scheduler``/``service``/``drive_cache`` must then be left
    at their defaults (the scenario owns the stack); the report's busy
    fraction averages over members and its queue depth is the deepest
    member's.
    """
    if scenario is not None:
        if scheduler != "clook" or service is not None \
                or drive_cache is not None:
            raise ValueError("scenario= replaces scheduler/service/"
                             "drive_cache; pass one or the other")
    elif scheduler not in SCHEDULERS:
        raise ValueError(f"unknown scheduler {scheduler!r}; "
                         f"choose from {sorted(SCHEDULERS.names())}")
    if len(trace) == 0:
        raise ValueError("empty trace")
    if time_scale <= 0:
        raise ValueError("time_scale must be positive")

    sim = Simulator(queue=scenario.engine.event_queue
                    if scenario is not None else None)
    if scenario is not None:
        from repro.disk import DiskGeometry
        node_cfg = scenario.node
        disks = []
        for i, disk_cfg in enumerate(node_cfg.disks):
            geometry = DiskGeometry.from_capacity_mb(disk_cfg.capacity_mb)
            disks.append(Disk(
                sim, service=DiskServiceModel(geometry=geometry),
                scheduler=disk_cfg.build_scheduler(),
                rng=np.random.default_rng(seed + i),
                name=f"hd{chr(ord('a') + i)}0",
                cache=disk_cfg.build_cache(),
                media_error_rate=disk_cfg.media_error_rate))
        device = node_cfg.volume.build(disks, name="md0")
        total_sectors = device.total_sectors
        scheduler = node_cfg.disks[0].scheduler.kind
    else:
        service = service or DiskServiceModel()
        disks = [Disk(sim, service=service,
                      scheduler=SCHEDULERS.create(scheduler),
                      rng=np.random.default_rng(seed), cache=drive_cache)]
        device = disks[0]
        total_sectors = service.geometry.total_sectors
    latencies = []

    def issuer():
        prev_t = 0.0
        for records in _record_arrays(trace):
            for row in records:
                arrival = float(row["time"]) * time_scale
                if arrival > prev_t:
                    yield sim.timeout(arrival - prev_t)
                    prev_t = arrival
                nsectors = max(1, int(round(float(row["size_kb"]) * 2)))
                sector = int(row["sector"])
                if sector + nsectors > total_sectors:
                    sector = total_sectors - nsectors
                request = IORequest(sector=sector, nsectors=nsectors,
                                    is_write=bool(row["write"]))
                done = device.submit(request)
                done.callbacks.append(
                    lambda _ev, r=request: latencies.append(r.latency))

    sim.process(issuer(), name="replayer")
    sim.run()
    lat = np.asarray(latencies)
    duration = max(sim.now, 1e-9)
    return ReplayReport(
        scheduler=scheduler,
        requests=len(lat),
        duration=duration,
        mean_latency=float(lat.mean()),
        p95_latency=float(np.percentile(lat, 95)),
        max_latency=float(lat.max()),
        disk_busy_fraction=float(
            sum(d.stats.busy_time for d in disks)
            / (len(disks) * duration)),
        max_queue_depth=max(d.stats.max_queue_depth for d in disks),
    )


def compare_schedulers(trace, time_scale: float = 1.0,
                       seed: int = 0,
                       service: Optional[DiskServiceModel] = None
                       ) -> dict:
    """Replay under every scheduler; returns {name: ReplayReport}."""
    return {name: replay_trace(trace, scheduler=name, seed=seed,
                               service=service, time_scale=time_scale)
            for name in SCHEDULERS}
