"""N-body workload model.

The paper's N-body run (oct-tree, 8K particles per processor, 303 million
total interactions) shows consistent 1 KB block I/O with more 2 KB
requests than PPM and a few 4 KB page swaps: a compute-bound simulation
whose higher memory pressure faults occasionally to maintain the working
set, writing per-step statistical summaries (Table 1: 13% reads / 87%
writes).

Compute per step derives from the Barnes-Hut interaction-count estimate
at the reference CPU rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.base import ESSApplication, REF_MFLOPS
from repro.apps.kernels.barnes_hut import interactions_estimate


@dataclass(frozen=True)
class NBodyParams:
    """Workload knobs, defaulted to the study's configuration."""

    particles: int = 8192
    steps: int = 50
    theta: float = 0.5
    flops_per_interaction: int = 20
    #: bytes of the per-step statistical summary
    summary_bytes: int = 300
    #: steps between tree-exchange communications
    exchange_interval: int = 1
    #: particle + tree memory footprint (KB); slightly oversubscribes a
    #: 16 MB node together with the system, so some paging occurs
    footprint_kb: int = 7 * 1024
    #: final snapshot written per node (KB)
    output_kb: int = 64
    nnodes: int = 1

    @property
    def interactions_per_step(self) -> float:
        return interactions_estimate(self.particles, self.theta)

    @property
    def compute_per_step(self) -> float:
        flops = self.interactions_per_step * self.flops_per_interaction
        return flops / (REF_MFLOPS * 1e6)

    @property
    def total_interactions(self) -> float:
        return self.interactions_per_step * self.steps


class NBodyApplication(ESSApplication):
    """Oct-tree gravitational N-body simulation."""

    name = "nbody"
    binary_kb = 256

    def __init__(self, node, seed: int = 0,
                 params: NBodyParams = NBodyParams()):
        super().__init__(node, seed=seed)
        self.params = params

    @property
    def summary_path(self) -> str:
        return f"{self.output_dir}/summary.{self.node_id}"

    def bodies(self) -> list:
        from functools import partial
        return ([self._body_setup]
                + [partial(self._body_step, step)
                   for step in range(self.params.steps)]
                + [self._body_finish])

    def _body_setup(self):
        p = self.params
        self._binary = self.map_binary()
        yield from self.load_pages(self._binary)
        self._particles = self.allocate(p.footprint_kb)
        yield from self.load_pages(self._particles, write=True)
        self._summary_h = yield from self.kernel.create(self.summary_path)

    def _body_step(self, step: int):
        p = self.params
        # Tree rebuild + force evaluation: touches spread across
        # the whole footprint, many of them writes.
        yield from self.compute(p.compute_per_step, region=self._particles,
                                touches_per_slice=8,
                                dirty_fraction=0.5)
        if p.nnodes > 1 and step % p.exchange_interval == 0:
            # exchange of locally-essential tree (bodies near the
            # domain boundary)
            yield from self.exchange_with_neighbors(
                tag=200 + step,
                nbytes=p.particles // 8 * 32,
                nnodes=p.nnodes)
        yield from self.append_stats(self._summary_h, p.summary_bytes)

    def _body_finish(self):
        p = self.params
        out_h = yield from self.kernel.create(
            f"{self.output_dir}/snapshot.{self.node_id}")
        yield from self.write_file(out_h, p.output_kb * 1024)
        yield from self.barrier("done", p.nnodes)

    def snapshot_app_state(self) -> dict:
        if self.cursor < 1:
            return {}
        return {"binary": list(self._binary),
                "particles": list(self._particles),
                "summary": self._summary_h.snapshot_state()}

    def restore_app_state(self, state: dict) -> None:
        if not state:
            return
        self._binary = tuple(int(v) for v in state["binary"])
        self._particles = tuple(int(v) for v in state["particles"])
        self._summary_h = self._reopen_handle(self.summary_path,
                                              state["summary"])
