"""Workload models of the three NASA ESS applications (plus baseline).

Each model is a simulation process that reproduces its application's I/O
*phase structure* as described in the paper — program demand-load, input
reads, working-set growth and maintenance paging, periodic statistics
appends, and final output — while charging compute time derived from the
real algorithms' operation counts (see :mod:`repro.apps.kernels`).
"""

from typing import NamedTuple, Type

from repro.apps.base import AppStats, ESSApplication
from repro.apps.ppm import PPMApplication, PPMParams
from repro.apps.wavelet import WaveletApplication, WaveletParams
from repro.apps.nbody import NBodyApplication, NBodyParams
from repro.registry import Registry


class WorkloadEntry(NamedTuple):
    """One registered application workload: model class + params class."""

    app_cls: Type[ESSApplication]
    params_cls: type


#: plugin registry of application workloads, selected by name in
#: scenario workload mixes; register new entries as
#: ``WORKLOADS.register("myapp", WorkloadEntry(MyApp, MyParams))``
WORKLOADS = Registry("workload")
WORKLOADS.register("ppm", WorkloadEntry(PPMApplication, PPMParams))
WORKLOADS.register("wavelet", WorkloadEntry(WaveletApplication,
                                            WaveletParams))
WORKLOADS.register("nbody", WorkloadEntry(NBodyApplication, NBodyParams))

__all__ = [
    "AppStats",
    "ESSApplication",
    "NBodyApplication",
    "NBodyParams",
    "PPMApplication",
    "PPMParams",
    "WORKLOADS",
    "WaveletApplication",
    "WaveletParams",
    "WorkloadEntry",
]
