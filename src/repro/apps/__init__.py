"""Workload models of the three NASA ESS applications (plus baseline).

Each model is a simulation process that reproduces its application's I/O
*phase structure* as described in the paper — program demand-load, input
reads, working-set growth and maintenance paging, periodic statistics
appends, and final output — while charging compute time derived from the
real algorithms' operation counts (see :mod:`repro.apps.kernels`).
"""

from repro.apps.base import AppStats, ESSApplication
from repro.apps.ppm import PPMApplication, PPMParams
from repro.apps.wavelet import WaveletApplication, WaveletParams
from repro.apps.nbody import NBodyApplication, NBodyParams

__all__ = [
    "AppStats",
    "ESSApplication",
    "NBodyApplication",
    "NBodyParams",
    "PPMApplication",
    "PPMParams",
    "WaveletApplication",
    "WaveletParams",
]
