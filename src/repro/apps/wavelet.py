"""Wavelet decomposition workload model.

The paper's wavelet run is the only application with significant input
data and shows (Figure 3): heavy 4 KB paging early ("due to the large
program space and image data requirements"), a burst of requests
approaching 16 KB at ~50 s while the image file streams in through the
read-ahead machinery, a compute lull with only working-set-maintenance
paging, and heavier activity again toward the end.  Its read/write mix is
near 50/50 (Table 1) because of the image input.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.base import ESSApplication, REF_MFLOPS
from repro.apps.kernels.haar import flops_per_pixel_level


@dataclass(frozen=True)
class WaveletParams:
    """Workload knobs, defaulted to the study's configuration."""

    #: input image is image_px x image_px, one byte per pixel (the paper's
    #: 512x512-byte Landsat tile)
    image_px: int = 512
    levels: int = 5
    #: total anonymous footprint (KB): image floats + coefficient planes +
    #: registration workspace + libraries; oversubscribes a 16 MB node
    footprint_kb: int = 11 * 1024
    #: fraction of the footprint active during the transform lull
    active_fraction: float = 0.5
    #: compute before the image read (initialisation, registration setup);
    #: places the read burst near the 50 s mark
    startup_compute: float = 30.0
    #: compute of the transform + registration phase.  The Haar flops are
    #: tiny; the dominant cost in the Goddard codes is the registration
    #: search, modelled as a fixed factor over the transform.
    registration_factor: float = 32.0
    #: compute of the output-assembly phase (touches the full footprint)
    end_compute: float = 40.0
    #: output coefficients written per node (KB)
    output_kb: int = 256
    nnodes: int = 1

    @property
    def image_bytes(self) -> int:
        return self.image_px * self.image_px

    @property
    def transform_compute(self) -> float:
        flops = (self.image_px ** 2) * flops_per_pixel_level() * self.levels
        return flops * self.registration_factor / (REF_MFLOPS * 1e6)


class WaveletApplication(ESSApplication):
    """Satellite-imagery wavelet decomposition."""

    name = "wavelet"
    #: large program image (code + image libraries): the startup paging
    binary_kb = 1536

    def __init__(self, node, seed: int = 0,
                 params: WaveletParams = WaveletParams()):
        super().__init__(node, seed=seed)
        self.params = params

    @property
    def image_path(self) -> str:
        return f"{self.output_dir}/image.{self.node_id}"

    @property
    def reference_path(self) -> str:
        """Reference scene the registration phase compares against."""
        return f"{self.output_dir}/reference.{self.node_id}"

    def install(self):
        yield from super().install()
        fs = self.kernel.fs
        for path in (self.image_path, self.reference_path):
            if not fs.exists(path):
                inode = yield from fs.create(path, zone="data")
                yield from fs.truncate_extend(inode, self.params.image_bytes)

    def bodies(self) -> list:
        return [self._body_startup, self._body_image_read,
                self._body_transform_1, self._body_reference_read,
                self._body_transform_2, self._body_output]

    @property
    def _active(self):
        return self.subregion(self._workspace, 0.0,
                              self.params.active_fraction)

    def _body_startup(self):
        p = self.params
        # Startup: demand-load the whole (large) program image and
        # build the working set -- the early 4 KB storm.
        self._binary = self.map_binary()
        yield from self.load_pages(self._binary)
        self._workspace = self.allocate(p.footprint_kb)
        yield from self.load_pages(self._workspace, write=True)
        yield from self.compute(p.startup_compute, region=self._workspace,
                                touches_per_slice=10,
                                dirty_fraction=0.4,
                                code_region=self._binary, code_touches=3)

    def _body_image_read(self):
        p = self.params
        # Image input: sequential stream through read-ahead; request
        # sizes climb toward the 16 KB (or 32 KB combined) ceiling.
        image_h = self.kernel.open(self.image_path)
        yield from self.read_file(image_h, p.image_bytes, chunk=8192)

    def _body_transform_1(self):
        p = self.params
        # Transform lull: activity confined to the active subset, so
        # only limited working-set maintenance paging.  Halfway
        # through, the registration search streams in the reference
        # scene.
        yield from self.compute(p.transform_compute / 2,
                                region=self._active,
                                touches_per_slice=4,
                                dirty_fraction=0.35,
                                code_region=self._binary, code_touches=2)

    def _body_reference_read(self):
        p = self.params
        ref_h = self.kernel.open(self.reference_path)
        yield from self.read_file(ref_h, p.image_bytes, chunk=8192)

    def _body_transform_2(self):
        p = self.params
        yield from self.compute(p.transform_compute / 2,
                                region=self._active,
                                touches_per_slice=4,
                                dirty_fraction=0.35,
                                code_region=self._binary, code_touches=2)

    def _body_output(self):
        p = self.params
        # Output assembly: reads back every coefficient plane (a
        # sequential sweep of the footprint -- the heavier paging at
        # the end), then writes them out.
        yield from self.load_pages(self._workspace)
        yield from self.compute(p.end_compute, region=self._workspace,
                                touches_per_slice=12,
                                dirty_fraction=0.35,
                                code_region=self._binary, code_touches=3)
        out_h = yield from self.kernel.create(
            f"{self.output_dir}/coeffs.{self.node_id}")
        yield from self.write_file(out_h, p.output_kb * 1024)
        yield from self.barrier("done", p.nnodes)

    def snapshot_app_state(self) -> dict:
        if self.cursor < 1:
            return {}
        return {"binary": list(self._binary),
                "workspace": list(self._workspace)}

    def restore_app_state(self, state: dict) -> None:
        if not state:
            return
        self._binary = tuple(int(v) for v in state["binary"])
        self._workspace = tuple(int(v) for v in state["workspace"])
