"""PPM workload model.

The paper's PPM run (four 240x480 grids per processor) shows: very low
I/O, dominated by 1 KB block writes (statistics appends + system logging),
essentially no paging until a brief 4 KB burst near the end (~230 s), when
the post-processing section of the program is first executed and demand-
loaded.  Both PPM and N-body are "simulations with no input data, with
only short statistical summaries being written".

Compute time per step derives from the grid size and the PPM kernel's
per-cell flop count at the reference CPU rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.base import ESSApplication, REF_MFLOPS
from repro.apps.kernels.ppm_hydro import flops_per_cell_step


@dataclass(frozen=True)
class PPMParams:
    """Workload knobs, defaulted to the study's configuration."""

    grids: int = 4
    grid_nx: int = 240
    grid_ny: int = 480
    steps: int = 24
    #: steps between statistics appends
    stats_interval: int = 2
    #: bytes per statistics record
    stats_bytes: int = 256
    #: final result file size per node (KB)
    output_kb: int = 32
    #: cluster size for boundary exchanges (1 = no communication)
    nnodes: int = 1
    #: steps between boundary exchanges
    exchange_interval: int = 4

    @property
    def cells(self) -> int:
        return self.grids * self.grid_nx * self.grid_ny

    @property
    def compute_per_step(self) -> float:
        """Seconds of reference CPU per time step."""
        return self.cells * flops_per_cell_step() / (REF_MFLOPS * 1e6)

    @property
    def grid_kb(self) -> int:
        """Memory footprint of the grids (8-byte doubles)."""
        return self.cells * 8 // 1024


class PPMApplication(ESSApplication):
    """Piece-wise parabolic method astrophysics simulation."""

    name = "ppm"
    #: small program image; the paper sees only 4% reads for PPM
    binary_kb = 64

    def __init__(self, node, seed: int = 0, params: PPMParams = PPMParams()):
        super().__init__(node, seed=seed)
        self.params = params

    @property
    def stats_path(self) -> str:
        return f"{self.output_dir}/stats.{self.node_id}"

    def bodies(self) -> list:
        from functools import partial
        return ([self._body_setup]
                + [partial(self._body_step, step)
                   for step in range(self.params.steps)]
                + [self._body_finish])

    def _body_setup(self):
        p = self.params
        # Program load: demand-page the main section only; the
        # post-processing pages stay untouched until the end.
        self._binary = self.map_binary()
        yield from self.load_pages(self.subregion(self._binary, 0.0, 0.75))

        self._grids = self.allocate(p.grid_kb)
        yield from self.load_pages(self._grids, write=True)

        self._stats_h = yield from self.kernel.create(self.stats_path)

    def _body_step(self, step: int):
        p = self.params
        yield from self.compute(p.compute_per_step, region=self._grids,
                                touches_per_slice=6,
                                dirty_fraction=0.6)
        if p.nnodes > 1 and step % p.exchange_interval == 0:
            # ghost-cell exchange: two grid rows of doubles
            yield from self.exchange_with_neighbors(
                tag=100 + step, nbytes=2 * p.grid_ny * 8,
                nnodes=p.nnodes)
        if step % p.stats_interval == 0:
            yield from self.append_stats(self._stats_h, p.stats_bytes)

    def _body_finish(self):
        p = self.params
        # Post-processing: first call into the output section demand-
        # loads its pages -- the paper's late 4 KB paging blip.
        yield from self.load_pages(self.subregion(self._binary, 0.75, 1.0))
        out_h = yield from self.kernel.create(
            f"{self.output_dir}/result.{self.node_id}")
        yield from self.write_file(out_h, p.output_kb * 1024)
        yield from self.barrier("done", p.nnodes)

    def snapshot_app_state(self) -> dict:
        if self.cursor < 1:
            return {}
        return {"binary": list(self._binary),
                "grids": list(self._grids),
                "stats": self._stats_h.snapshot_state()}

    def restore_app_state(self, state: dict) -> None:
        if not state:
            return
        self._binary = tuple(int(v) for v in state["binary"])
        self._grids = tuple(int(v) for v in state["grids"])
        self._stats_h = self._reopen_handle(self.stats_path, state["stats"])
