"""Application framework: phases, memory behaviour, and I/O helpers.

An :class:`ESSApplication` runs on one cluster node (optionally talking to
its peers over PVM) and expresses its behaviour through a small vocabulary:

* ``install`` — put the program binary (and any input files) on disk;
  runs *before* tracing starts, as the real codes were installed long
  before the measurements;
* ``load_binary`` — demand-page the program image (4 KB reads against the
  binary's disk blocks, the startup paging the paper observes);
* ``allocate`` / ``compute`` — anonymous memory regions touched during
  timesliced compute, driving the VM (zero-fill, then swap traffic once
  the node's frames are oversubscribed);
* file reads/writes through the node kernel's syscall layer.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np

from repro.cluster.beowulf import ClusterNode
from repro.kernel import NodeKernel
from repro.kernel.vm import AddressSpace


#: sustained double-precision rate assumed for the 486DX4-100 reference
#: CPU, in Mflop/s.  Calibrated so the derived solo run times land near the
#: paper's figures (PPM ~230 s, N-body ~240 s).
REF_MFLOPS = 2.0


@dataclass
class AppStats:
    """What an application instance did, for tests and reports."""

    started_at: float = 0.0
    finished_at: float = 0.0
    bytes_read: int = 0
    bytes_written: int = 0
    compute_seconds: float = 0.0
    pages_touched: int = 0
    messages_sent: int = 0

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at


#: AppStats fields carried through a resume token
_STATS_FIELDS = ("started_at", "finished_at", "bytes_read", "bytes_written",
                 "compute_seconds", "pages_touched", "messages_sent")


class ESSApplication:
    """Base class of the workload models.

    An application's behaviour is a sequence of *bodies* — numbered
    generator sections returned by :meth:`bodies` (setup, one per time
    step, epilogue).  The base :meth:`run` drives them under a cursor,
    which is what makes the workloads checkpointable: between bodies the
    app owns no in-flight I/O and holds no queue entries, so a
    :class:`~repro.checkpoint.CheckpointCoordinator` can park it there,
    capture ``(cursor, rng state, regions, handles)`` as a plain resume
    token, and a restored process continues from the same boundary
    bit-identically.  Without a coordinator the driver loop adds no
    events and no draws — byte-for-byte the old monolithic ``run()``.
    """

    #: application name; used for file paths and address-space labels
    name = "app"
    #: size of the program image on disk
    binary_kb = 256

    def __init__(self, node: Union[ClusterNode, NodeKernel],
                 seed: int = 0):
        if isinstance(node, ClusterNode):
            self.kernel: NodeKernel = node.kernel
            self.pvm = node.pvm
            self.node_id = node.node_id
        else:
            self.kernel = node
            self.pvm = None
            self.node_id = node.node_id
        # zlib.crc32, not hash(): string hashing is randomized per
        # process and would make runs irreproducible across invocations
        name_code = zlib.crc32(self.name.encode())
        self.rng = np.random.default_rng(
            np.random.SeedSequence([seed, self.node_id, name_code]))
        self.stats = AppStats()
        self.aspace: Optional[AddressSpace] = None
        self._next_page = 0
        self._binary_pages = 0
        #: bodies completed so far (the checkpoint-safe progress marker)
        self.cursor = 0
        self._coordinator = None
        self._resume_token: Optional[dict] = None
        self._started = False
        self._finished = False

    # -- paths ---------------------------------------------------------------
    @property
    def binary_path(self) -> str:
        return f"/usr/local/bin/{self.name}"

    @property
    def output_dir(self) -> str:
        return f"/home/{self.name}"

    # -- lifecycle -----------------------------------------------------------
    def install(self):
        """Generator: place the binary (and inputs) on disk.

        Run during experiment setup, before tracing starts.  Subclasses
        extend this to create their input files.
        """
        fs = self.kernel.fs
        yield from fs.makedirs("/usr/local/bin")
        yield from fs.makedirs(self.output_dir)
        if not fs.exists(self.binary_path):
            inode = yield from fs.create(self.binary_path, zone="binary")
            yield from fs.truncate_extend(inode, self.binary_kb * 1024)

    def bodies(self) -> list:
        """The run's numbered sections, each a no-arg generator callable.

        Subclasses return ``[setup, step_0 ... step_n, epilogue]``;
        state shared between bodies lives on instance attributes.
        Bodies must be *communication-closed*: any send/recv/barrier
        pairing between family members happens within one body index,
        with sends preceding receives.
        """
        raise NotImplementedError

    def run(self):
        """Generator: the application process (drives :meth:`bodies`)."""
        bodies = self.bodies()
        token = self._resume_token
        coordinator = self._coordinator
        if token is not None and token["finished"]:
            # ran to completion before the checkpoint: nothing to
            # replay, just carry the final statistics forward
            self._apply_stats(token["stats"])
            self._started = self._finished = True
            return self.stats
        if token is not None and token["started"]:
            self._restore_token(token)
            self._started = True
            if coordinator is not None:
                coordinator.started(self)
                # park before the next body; the runner releases every
                # resumed app (in sorted order) once the drain settles
                yield coordinator.hold(self)
        else:
            self._setup_address_space()
            self.stats.started_at = self.kernel.sim.now
            self._started = True
            if coordinator is not None:
                coordinator.started(self)
        try:
            while self.cursor < len(bodies):
                if coordinator is not None \
                        and coordinator.should_hold(self):
                    yield coordinator.hold(self)
                yield from bodies[self.cursor]()
                self.cursor += 1
        finally:
            self.stats.finished_at = self.kernel.sim.now
            self._teardown_address_space()
            self._finished = True
            if coordinator is not None:
                coordinator.finished(self)
        return self.stats

    # -- checkpoint state surface ------------------------------------------
    def attach_coordinator(self, coordinator) -> None:
        self._coordinator = coordinator

    @property
    def space_name(self) -> str:
        return f"{self.name}@{self.node_id}"

    def snapshot_token(self) -> dict:
        """This instance's resume token (a plain tree)."""
        token = {
            "started": self._started,
            "finished": self._finished,
            "cursor": self.cursor,
            "stats": {field: getattr(self.stats, field)
                      for field in _STATS_FIELDS},
        }
        if self._started and not self._finished:
            token["rng"] = self.rng.bit_generator.state
            token["next_page"] = self._next_page
            token["binary_pages"] = self._binary_pages
            token["app"] = self.snapshot_app_state()
        return token

    def resume_from(self, token: dict) -> None:
        """Stage ``token`` for the next :meth:`run` (restore happens
        inside the spawned process, after layer state is back)."""
        self._resume_token = token

    def _apply_stats(self, fields: dict) -> None:
        for field in _STATS_FIELDS:
            setattr(self.stats, field, fields[field])

    def _restore_token(self, token: dict) -> None:
        self._apply_stats(token["stats"])
        self.cursor = int(token["cursor"])
        self.rng.bit_generator.state = token["rng"]
        self._next_page = int(token["next_page"])
        self._binary_pages = int(token["binary_pages"])
        # the address space survives in the restored VM; reattach
        self.aspace = self.kernel.vm.space_by_name(self.space_name)
        self.restore_app_state(token["app"])

    def snapshot_app_state(self) -> dict:
        """Subclass hook: regions and open handles shared across bodies."""
        return {}

    def restore_app_state(self, state: dict) -> None:
        """Subclass hook: inverse of :meth:`snapshot_app_state`."""

    def _reopen_handle(self, path: str, state: dict):
        """Reopen ``path`` against the restored filesystem and put back
        the handle's position and readahead window."""
        handle = self.kernel.open(path)
        handle.restore_state(state)
        return handle

    # -- memory behaviour ---------------------------------------------------
    def _setup_address_space(self) -> None:
        self.aspace = self.kernel.vm.create_space(
            f"{self.name}@{self.node_id}")
        self._next_page = 0

    def _teardown_address_space(self) -> None:
        if self.aspace is not None:
            self.kernel.vm.destroy_space(self.aspace)
            self.aspace = None

    def map_binary(self) -> Tuple[int, int]:
        """Map the program image's pages; returns the (start, npages) region.

        Pages map to the binary file's actual disk blocks, so demand
        loading reads 4 KB at the right sectors.
        """
        fs = self.kernel.fs
        inode = fs.lookup(self.binary_path)
        page_kb = self.kernel.params.page_kb
        blocks_per_page = self.kernel.params.blocks_per_page
        spb = self.kernel.params.sectors_per_block
        total_pages = (self.binary_kb + page_kb - 1) // page_kb
        start = self._next_page
        for i in range(total_pages):
            block_index = i * blocks_per_page
            if block_index < inode.nblocks:
                sector = inode.blocks[block_index] * spb
                self.aspace.file_pages[start + i] = (
                    sector, page_kb * 1024 // 512)
        self._next_page += total_pages
        self._binary_pages = total_pages
        return start, total_pages

    @staticmethod
    def subregion(region: Tuple[int, int], frac0: float,
                  frac1: float) -> Tuple[int, int]:
        """Slice of a page region between fractional bounds."""
        if not (0 <= frac0 < frac1 <= 1):
            raise ValueError("need 0 <= frac0 < frac1 <= 1")
        start, npages = region
        lo = start + int(npages * frac0)
        hi = start + max(int(npages * frac1), int(npages * frac0) + 1)
        return lo, min(hi, start + npages) - lo

    def load_pages(self, region: Tuple[int, int], write: bool = False):
        """Generator: touch a page region sequentially (demand loading).

        ``write=True`` models initialising data structures: the pages come
        in dirty, so their later eviction swaps them out.
        """
        start, npages = region
        yield from self.kernel.vm.touch_range(self.aspace, start, npages,
                                              write=write)
        self.stats.pages_touched += npages

    def allocate(self, kb: int) -> Tuple[int, int]:
        """Reserve an anonymous region of ``kb``; returns (start, npages)."""
        page_kb = self.kernel.params.page_kb
        npages = max(1, (kb + page_kb - 1) // page_kb)
        region = (self._next_page, npages)
        self._next_page += npages
        return region

    def compute(self, seconds: float, region: Optional[Tuple[int, int]] = None,
                touches_per_slice: int = 8, dirty_fraction: float = 0.3,
                slice_seconds: float = 0.25,
                code_region: Optional[Tuple[int, int]] = None,
                code_touches: int = 2):
        """Generator: burn CPU while touching the working set.

        Splits ``seconds`` into slices; after each, touches
        ``touches_per_slice`` random pages of ``region`` (a fraction
        written) plus ``code_touches`` random pages of ``code_region``
        (always clean — instruction fetch).  Touching non-resident pages
        under memory pressure generates the implicit 4 KB paging traffic;
        evicted text pages are re-demand-loaded from the program image,
        which is why paging reads are not bounded by paging writes.
        """
        if seconds < 0:
            raise ValueError("negative compute time")
        cpu = self.kernel.cpu
        vm = self.kernel.vm
        remaining = seconds
        while remaining > 0:
            chunk = min(slice_seconds, remaining)
            yield from cpu.execute(chunk)
            self.stats.compute_seconds += chunk
            remaining -= chunk
            if region is not None and touches_per_slice > 0:
                start, npages = region
                pages = self.rng.integers(start, start + npages,
                                          size=touches_per_slice)
                dirty = self.rng.random(touches_per_slice) < dirty_fraction
                for page, write in zip(pages, dirty):
                    yield from vm.access(self.aspace, int(page),
                                         write=bool(write))
                self.stats.pages_touched += touches_per_slice
            if code_region is not None and code_touches > 0:
                start, npages = code_region
                pages = self.rng.integers(start, start + npages,
                                          size=code_touches)
                for page in pages:
                    yield from vm.access(self.aspace, int(page), write=False)
                self.stats.pages_touched += code_touches

    # -- file I/O helpers ------------------------------------------------
    def read_file(self, handle, nbytes: int, chunk: int = 8192):
        """Generator: sequential read in ``chunk``-byte syscalls."""
        remaining = nbytes
        while remaining > 0:
            n = yield from handle.read(min(chunk, remaining))
            if n == 0:
                break
            self.stats.bytes_read += n
            remaining -= n

    def write_file(self, handle, nbytes: int, chunk: int = 8192):
        """Generator: sequential write in ``chunk``-byte syscalls."""
        remaining = nbytes
        while remaining > 0:
            n = yield from handle.write(min(chunk, remaining))
            self.stats.bytes_written += n
            remaining -= n

    def append_stats(self, handle, nbytes: int):
        """Generator: append a short statistics record."""
        n = yield from handle.append(nbytes)
        self.stats.bytes_written += n

    # -- communication -------------------------------------------------------
    def exchange_with_neighbors(self, tag: int, nbytes: int, nnodes: int):
        """Generator: ring boundary exchange (send both ways, recv both)."""
        if self.pvm is None or nnodes < 2:
            return
        left = (self.node_id - 1) % nnodes
        right = (self.node_id + 1) % nnodes
        self.pvm.isend(self.node_id, left, tag, nbytes)
        self.pvm.isend(self.node_id, right, tag, nbytes)
        self.stats.messages_sent += 2
        yield from self.pvm.recv(self.node_id, tag)
        yield from self.pvm.recv(self.node_id, tag)

    def barrier(self, name: str, nnodes: int):
        """Generator: cluster-wide phase barrier."""
        if self.pvm is None or nnodes < 2:
            return
        yield from self.pvm.barrier(f"{self.name}:{name}", self.node_id,
                                    nnodes)
