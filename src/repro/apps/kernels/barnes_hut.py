"""Barnes-Hut oct-tree N-body force solver.

The N-body code of the study (Olson & Dorband's SIMD tree code) uses an
oct-tree with 8K particles per processor.  This is a working 3-D
Barnes-Hut implementation: an adaptive oct-tree with per-node mass and
centre-of-mass, and the standard opening-angle (theta) multipole
acceptance criterion.  ``direct_forces`` gives the O(N^2) reference the
accuracy tests compare against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

#: gravitational softening to avoid singularities in close encounters
DEFAULT_SOFTENING = 1e-3


def direct_forces(pos: np.ndarray, mass: np.ndarray,
                  softening: float = DEFAULT_SOFTENING) -> np.ndarray:
    """O(N^2) pairwise gravitational accelerations (G = 1)."""
    pos = np.asarray(pos, dtype=np.float64)
    mass = np.asarray(mass, dtype=np.float64)
    if pos.ndim != 2 or pos.shape[1] != 3:
        raise ValueError("pos must be (N, 3)")
    if mass.shape != (pos.shape[0],):
        raise ValueError("mass must be (N,)")
    delta = pos[None, :, :] - pos[:, None, :]          # (N, N, 3)
    dist2 = np.sum(delta ** 2, axis=-1) + softening ** 2
    np.fill_diagonal(dist2, np.inf)
    inv_d3 = dist2 ** -1.5
    return np.einsum("ijk,ij,j->ik", delta, inv_d3, mass)


@dataclass
class _Node:
    center: np.ndarray
    half: float
    mass: float = 0.0
    com: np.ndarray = field(default_factory=lambda: np.zeros(3))
    particle: Optional[int] = None       # leaf payload
    children: Optional[List[Optional["_Node"]]] = None

    @property
    def is_leaf(self) -> bool:
        return self.children is None


class BarnesHutTree:
    """Adaptive oct-tree over a particle set."""

    def __init__(self, pos: np.ndarray, mass: np.ndarray,
                 theta: float = 0.5, softening: float = DEFAULT_SOFTENING):
        pos = np.asarray(pos, dtype=np.float64)
        mass = np.asarray(mass, dtype=np.float64)
        if pos.ndim != 2 or pos.shape[1] != 3:
            raise ValueError("pos must be (N, 3)")
        if mass.shape != (pos.shape[0],):
            raise ValueError("mass must match particle count")
        if not (0 < theta < 2):
            raise ValueError("theta must be in (0, 2)")
        if len(pos) == 0:
            raise ValueError("need at least one particle")
        self.pos = pos
        self.mass = mass
        self.theta = theta
        self.softening = softening
        self.nodes_built = 0
        lo = pos.min(axis=0)
        hi = pos.max(axis=0)
        center = (lo + hi) / 2.0
        half = float(max((hi - lo).max() / 2.0, 1e-9)) * 1.001
        self.root = _Node(center=center, half=half)
        self.nodes_built += 1
        for i in range(len(pos)):
            self._insert(self.root, i)
        self._summarize(self.root)

    # -- construction -------------------------------------------------------
    def _octant(self, node: _Node, i: int) -> int:
        p = self.pos[i]
        return ((p[0] > node.center[0])
                | ((p[1] > node.center[1]) << 1)
                | ((p[2] > node.center[2]) << 2))

    def _child_for(self, node: _Node, octant: int) -> _Node:
        if node.children is None:
            node.children = [None] * 8
        child = node.children[octant]
        if child is None:
            offset = np.array([
                1 if octant & 1 else -1,
                1 if octant & 2 else -1,
                1 if octant & 4 else -1,
            ], dtype=np.float64) * (node.half / 2.0)
            child = _Node(center=node.center + offset, half=node.half / 2.0)
            node.children[octant] = child
            self.nodes_built += 1
        return child

    def _insert(self, node: _Node, i: int, depth: int = 0) -> None:
        if depth > 64:
            raise RuntimeError("tree depth exceeded (coincident particles?)")
        if node.is_leaf and node.particle is None and node.mass == 0.0:
            node.particle = i
            node.mass = -1.0  # occupied marker until summarize
            return
        if node.is_leaf:
            # split: push existing occupant down
            existing = node.particle
            node.particle = None
            node.mass = 0.0
            self._insert(self._child_for(node, self._octant(node, existing)),
                         existing, depth + 1)
        self._insert(self._child_for(node, self._octant(node, i)),
                     i, depth + 1)

    def _summarize(self, node: _Node) -> None:
        if node.is_leaf:
            i = node.particle
            node.mass = float(self.mass[i])
            node.com = self.pos[i].copy()
            return
        node.mass = 0.0
        node.com = np.zeros(3)
        for child in node.children:
            if child is None:
                continue
            self._summarize(child)
            node.mass += child.mass
            node.com += child.mass * child.com
        if node.mass > 0:
            node.com /= node.mass

    # -- force evaluation -----------------------------------------------------
    def acceleration_on(self, i: int) -> np.ndarray:
        """Barnes-Hut acceleration on particle ``i``."""
        acc = np.zeros(3)
        self._accumulate(self.root, i, acc)
        return acc

    def _accumulate(self, node: _Node, i: int, acc: np.ndarray) -> None:
        if node.mass == 0.0:
            return
        if node.is_leaf:
            if node.particle == i:
                return
            self._add_term(node, i, acc)
            return
        delta = node.com - self.pos[i]
        dist = float(np.sqrt(np.sum(delta ** 2))) + 1e-300
        if (2.0 * node.half) / dist < self.theta:
            self._add_term(node, i, acc)
        else:
            for child in node.children:
                if child is not None:
                    self._accumulate(child, i, acc)

    def _add_term(self, node: _Node, i: int, acc: np.ndarray) -> None:
        delta = node.com - self.pos[i]
        dist2 = float(np.sum(delta ** 2)) + self.softening ** 2
        acc += node.mass * delta / dist2 ** 1.5


def tree_forces(pos: np.ndarray, mass: np.ndarray, theta: float = 0.5,
                softening: float = DEFAULT_SOFTENING) -> np.ndarray:
    """Barnes-Hut accelerations for all particles (builds one tree)."""
    tree = BarnesHutTree(pos, mass, theta=theta, softening=softening)
    return np.array([tree.acceleration_on(i) for i in range(len(pos))])


def leapfrog_step(pos: np.ndarray, vel: np.ndarray, mass: np.ndarray,
                  dt: float, theta: float = 0.5) -> tuple:
    """One kick-drift-kick leapfrog step using tree forces."""
    acc = tree_forces(pos, mass, theta=theta)
    vel_half = vel + 0.5 * dt * acc
    pos_new = pos + dt * vel_half
    acc_new = tree_forces(pos_new, mass, theta=theta)
    vel_new = vel_half + 0.5 * dt * acc_new
    return pos_new, vel_new


def interactions_estimate(n: int, theta: float = 0.5) -> float:
    """Rough count of particle-node interactions per force evaluation.

    Barnes-Hut costs O(N log N / theta^2); used by the workload model to
    translate the paper's "303 million total particle interactions" into
    compute seconds.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    return n * np.log2(max(n, 2)) / (theta * theta)
