"""Multi-level 2-D Haar wavelet decomposition.

The wavelet codes at NASA Goddard decomposed satellite imagery (e.g.
Landsat Thematic Mapper scenes) for registration and compression; the study
ran a 512x512-byte image through such a code.  The Haar transform is the
simplest orthogonal wavelet and matches the multi-resolution structure of
those codes: each level splits the low-pass band into four quadrants
(LL | LH / HL | HH), then recurses on LL.

The transform is orthonormal (scaling by 1/2 per 2x2 block with these
filter signs), exactly invertible, and implemented with vectorised numpy
slicing.
"""

from __future__ import annotations

import numpy as np


def haar_level(a: np.ndarray) -> np.ndarray:
    """One 2-D Haar analysis level.

    Input must have even dimensions.  Returns an array of the same shape
    arranged as ``[[LL, LH], [HL, HH]]`` quadrants.
    """
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2:
        raise ValueError("expected a 2-D array")
    h, w = a.shape
    if h % 2 or w % 2:
        raise ValueError(f"dimensions must be even, got {a.shape}")
    tl = a[0::2, 0::2]
    tr = a[0::2, 1::2]
    bl = a[1::2, 0::2]
    br = a[1::2, 1::2]
    out = np.empty_like(a)
    out[:h // 2, :w // 2] = (tl + tr + bl + br) / 2.0          # LL
    out[:h // 2, w // 2:] = (tl - tr + bl - br) / 2.0          # LH
    out[h // 2:, :w // 2] = (tl + tr - bl - br) / 2.0          # HL
    out[h // 2:, w // 2:] = (tl - tr - bl + br) / 2.0          # HH
    return out


def haar_level_inverse(coeffs: np.ndarray) -> np.ndarray:
    """Invert one 2-D Haar level (exact synthesis)."""
    coeffs = np.asarray(coeffs, dtype=np.float64)
    h, w = coeffs.shape
    if h % 2 or w % 2:
        raise ValueError(f"dimensions must be even, got {coeffs.shape}")
    ll = coeffs[:h // 2, :w // 2]
    lh = coeffs[:h // 2, w // 2:]
    hl = coeffs[h // 2:, :w // 2]
    hh = coeffs[h // 2:, w // 2:]
    out = np.empty_like(coeffs)
    out[0::2, 0::2] = (ll + lh + hl + hh) / 2.0
    out[0::2, 1::2] = (ll - lh + hl - hh) / 2.0
    out[1::2, 0::2] = (ll + lh - hl - hh) / 2.0
    out[1::2, 1::2] = (ll - lh - hl + hh) / 2.0
    return out


def _check_levels(shape: tuple, levels: int) -> None:
    if levels < 1:
        raise ValueError("levels must be >= 1")
    h, w = shape
    if h % (1 << levels) or w % (1 << levels):
        raise ValueError(
            f"shape {shape} not divisible by 2^{levels} for {levels} levels")


def haar2d(image: np.ndarray, levels: int = 3) -> np.ndarray:
    """Full multi-level decomposition (recursing on the LL quadrant)."""
    image = np.asarray(image, dtype=np.float64)
    _check_levels(image.shape, levels)
    out = image.copy()
    h, w = image.shape
    for _ in range(levels):
        out[:h, :w] = haar_level(out[:h, :w])
        h //= 2
        w //= 2
    return out


def haar2d_inverse(coeffs: np.ndarray, levels: int = 3) -> np.ndarray:
    """Exact inverse of :func:`haar2d`."""
    coeffs = np.asarray(coeffs, dtype=np.float64)
    _check_levels(coeffs.shape, levels)
    out = coeffs.copy()
    h0, w0 = coeffs.shape
    sizes = [(h0 >> k, w0 >> k) for k in range(levels)]
    for h, w in reversed(sizes):
        out[:h, :w] = haar_level_inverse(out[:h, :w])
    return out


def compression_energy(coeffs: np.ndarray, levels: int = 3) -> float:
    """Fraction of total energy captured by the final LL band.

    Natural imagery concentrates energy in LL — the property the Goddard
    compression work exploits; exposed for tests and examples.
    """
    coeffs = np.asarray(coeffs, dtype=np.float64)
    h, w = coeffs.shape
    ll = coeffs[:h >> levels, :w >> levels]
    total = float(np.sum(coeffs ** 2))
    return float(np.sum(ll ** 2)) / total if total > 0 else 0.0


def flops_per_pixel_level() -> int:
    """Approximate flops per pixel per analysis level (adds + scales)."""
    return 8
