"""Real miniature compute kernels of the three NASA ESS applications.

These are working numerical codes, not stand-ins: a piecewise parabolic
method hydrodynamics step (:mod:`.ppm_hydro`), a multi-level 2-D Haar
wavelet decomposition (:mod:`.haar`), and a Barnes-Hut tree N-body force
solver (:mod:`.barnes_hut`).  The workload models derive their compute-time
and memory-touch structure from these algorithms' operation counts, and the
examples/benchmarks run them directly.
"""

from repro.apps.kernels.ppm_hydro import PPMState, advect_step, ppm_reconstruct
from repro.apps.kernels.haar import haar2d, haar2d_inverse, haar_level
from repro.apps.kernels.barnes_hut import (
    BarnesHutTree,
    direct_forces,
    tree_forces,
)

__all__ = [
    "BarnesHutTree",
    "PPMState",
    "advect_step",
    "direct_forces",
    "haar2d",
    "haar2d_inverse",
    "haar_level",
    "ppm_reconstruct",
    "tree_forces",
]
