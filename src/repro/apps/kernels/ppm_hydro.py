"""Piecewise Parabolic Method (PPM) advection kernel.

A working 1-D PPM scheme (Colella & Woodward 1984) for linear advection —
the reconstruction/limiting machinery at the heart of the astrophysics
code of the study (Fryxell & Taam's non-axisymmetric accretion solver).
The reconstruction builds a monotonicity-limited parabola in each cell and
advances the solution by integrating the parabola over the domain swept by
the (constant) advection velocity.

Vectorised numpy throughout; periodic boundary conditions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class PPMState:
    """Solution state on a uniform periodic 1-D grid."""

    u: np.ndarray      # cell averages
    dx: float
    velocity: float

    def __post_init__(self):
        self.u = np.asarray(self.u, dtype=np.float64)
        if self.u.ndim != 1 or len(self.u) < 5:
            raise ValueError("need a 1-D grid of at least 5 cells")
        if self.dx <= 0:
            raise ValueError("dx must be positive")

    @property
    def ncells(self) -> int:
        return len(self.u)

    def total_mass(self) -> float:
        return float(self.u.sum() * self.dx)


def _roll(a: np.ndarray, shift: int) -> np.ndarray:
    return np.roll(a, shift)


def ppm_reconstruct(u: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Monotonicity-limited parabolic reconstruction.

    Returns ``(u_left, u_right)``: the limited interface values of the
    parabola in each cell.  Follows CW84 eqs. 1.6-1.10: fourth-order
    interface interpolation with van-Leer-limited slopes, then the
    monotonicity adjustments that remove over/undershoots.
    """
    u = np.asarray(u, dtype=np.float64)
    up1, um1 = _roll(u, -1), _roll(u, 1)

    # van Leer limited slope (CW84 eq. 1.8)
    du = 0.5 * (up1 - um1)
    s = np.sign(du)
    du_lim = s * np.minimum(np.abs(du),
                            2.0 * np.minimum(np.abs(up1 - u),
                                             np.abs(u - um1)))
    monotone = (up1 - u) * (u - um1) > 0
    du_lim = np.where(monotone, du_lim, 0.0)

    # fourth-order interface value (CW84 eq. 1.6)
    du_lim_p1 = _roll(du_lim, -1)
    u_face = u + 0.5 * (up1 - u) - (du_lim_p1 - du_lim) / 6.0

    u_right = u_face            # value at i+1/2 seen from cell i
    u_left = _roll(u_face, 1)   # value at i-1/2 seen from cell i

    # monotonicity adjustment (CW84 eq. 1.10)
    local_extremum = (u_right - u) * (u - u_left) <= 0
    u_left = np.where(local_extremum, u, u_left)
    u_right = np.where(local_extremum, u, u_right)

    d = u_right - u_left
    overshoot_r = d * (u - 0.5 * (u_left + u_right)) > d * d / 6.0
    u_left = np.where(overshoot_r, 3.0 * u - 2.0 * u_right, u_left)
    overshoot_l = -d * d / 6.0 > d * (u - 0.5 * (u_left + u_right))
    u_right = np.where(overshoot_l, 3.0 * u - 2.0 * u_left, u_right)
    return u_left, u_right


def advect_step(state: PPMState, dt: float) -> PPMState:
    """Advance one time step of linear advection at CFL <= 1.

    Flux at each interface integrates the upwind cell's parabola over the
    distance ``|v| dt`` swept through the interface (CW84 eq. 1.12).
    """
    v = state.velocity
    cfl = abs(v) * dt / state.dx
    if cfl > 1.0 + 1e-12:
        raise ValueError(f"CFL {cfl:.3f} > 1")
    u = state.u
    u_left, u_right = ppm_reconstruct(u)
    du = u_right - u_left
    u6 = 6.0 * (u - 0.5 * (u_left + u_right))

    x = cfl
    if v >= 0:
        # average of the parabola over [1-x, 1] of each cell (upwind = left
        # cell of the interface)
        face_avg = u_right - 0.5 * x * (du - (1.0 - 2.0 * x / 3.0) * u6)
        flux = v * face_avg                  # flux through i+1/2
        flux_m1 = _roll(flux, 1)             # flux through i-1/2
        unew = u - (dt / state.dx) * (flux - flux_m1)
    else:
        # upwind = right cell: average over [0, x] of that cell's parabola
        face_avg = u_left + 0.5 * x * (du + (1.0 - 2.0 * x / 3.0) * u6)
        flux = v * _roll(face_avg, -1)       # flux through i+1/2
        flux_m1 = _roll(flux, 1)
        unew = u - (dt / state.dx) * (flux - flux_m1)
    return PPMState(unew, state.dx, state.velocity)


def run_advection(u0: np.ndarray, velocity: float, dx: float,
                  cfl: float, nsteps: int) -> np.ndarray:
    """Convenience driver: ``nsteps`` of PPM advection; returns final u."""
    if not (0 < cfl <= 1):
        raise ValueError("CFL must be in (0, 1]")
    state = PPMState(np.array(u0, dtype=np.float64), dx, velocity)
    dt = cfl * dx / abs(velocity)
    for _ in range(nsteps):
        state = advect_step(state, dt)
    return state.u


def flops_per_cell_step() -> int:
    """Approximate floating-point work of one PPM cell update.

    Used by the workload model to convert grid size x steps into compute
    seconds on the reference CPU.
    """
    return 40
