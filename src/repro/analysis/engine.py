"""The streaming analysis engine: pipelines x runs, in parallel, cached.

:class:`AnalysisEngine` maps characterization pipelines over the runs of
a :class:`~repro.store.RunCatalog` without ever materialising a whole
trace:

* each node file is folded chunk by chunk through the predicate-pushdown
  :class:`~repro.store.TraceReader` (chunks the index rules out are
  never decompressed), so peak memory is bounded by the chunk size;
* node files fan out across ``multiprocessing`` workers; the partial
  accumulator states merge in sorted node order, which keeps results
  deterministic and equal to the single-process fold;
* ordered pipelines (inter-arrival) fold a k-way merged, globally
  time-sorted stream built block-wise from the per-node files — still
  bounded memory, one sorted block at a time;
* finished summaries cache as JSON next to the run manifest
  (``analysis.json``), keyed by pipeline name + version + a file
  signature derived from the chunk index, so re-analysis of an
  unchanged run is a pure cache hit.

Engine activity is observable through ``repro.obs`` counters
(``analysis.chunks_scanned`` / ``chunks_skipped`` / ``cache_hits`` /
``cache_misses`` / ``runs_analyzed``).
"""

from __future__ import annotations

import json
import os
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.analysis.pipelines import (
    Pipeline,
    RunContext,
    make_pipelines,
)
from repro.store.catalog import RunCatalog
from repro.store.reader import TraceReader

ANALYSIS_NAME = "analysis.json"
ANALYSIS_FORMAT = "repro-analysis-v1"


# -- file signatures ----------------------------------------------------------
@dataclass(frozen=True)
class FileInfo:
    """Index-level facts about one trace file (no payload reads)."""

    path: str
    records: int
    chunk_count: int
    t0: float
    t1: float
    signature: str


def scan_file(path: Union[str, Path]) -> FileInfo:
    """Open header + footer only; derive the cache signature.

    The signature folds every chunk's offset and payload CRC, so any
    rewrite, append, or truncation of the file changes it — without
    decompressing a single chunk.
    """
    with TraceReader(path) as reader:
        crc = 0
        for c in reader.chunks:
            crc = zlib.crc32(f"{c.offset}:{c.count}:{c.crc};".encode(), crc)
        t0, t1 = reader.time_span
        return FileInfo(path=str(path), records=len(reader),
                        chunk_count=reader.chunk_count, t0=t0, t1=t1,
                        signature=f"{len(reader)}:{reader.chunk_count}:"
                                  f"{crc:08x}")


def run_signature(infos: Sequence[FileInfo]) -> str:
    """One signature for a whole run's file set."""
    crc = 0
    for info in infos:
        name = Path(info.path).name
        crc = zlib.crc32(f"{name}={info.signature};".encode(), crc)
    return f"{len(infos)}:{crc:08x}"


# -- merged time stream -------------------------------------------------------
class _TimeCursor:
    """Buffered view over one reader's sorted per-chunk time arrays."""

    __slots__ = ("_blocks", "buffer", "pos")

    def __init__(self, blocks: Iterator[np.ndarray]):
        self._blocks = blocks
        self.buffer = np.zeros(0, dtype=np.float64)
        self.pos = 0

    def refill(self) -> bool:
        for block in self._blocks:
            if len(block):
                self.buffer = np.asarray(block, dtype=np.float64)
                self.pos = 0
                return True
        return False

    @property
    def head(self) -> float:
        return self.buffer[self.pos]


def merged_time_blocks(readers: Sequence[TraceReader],
                       **predicates) -> Iterator[np.ndarray]:
    """Globally time-sorted blocks across several sorted trace files.

    A block-wise k-way merge: repeatedly take the stream with the
    smallest head and emit its prefix up to the other streams' minimum
    head (the watermark) — every emitted value is provably <= everything
    still buffered elsewhere.  Memory stays at one chunk per stream.
    """
    cursors = []
    for reader in readers:
        blocks = (batch["time"] for batch in
                  reader.iter_arrays(**predicates))
        cursor = _TimeCursor(blocks)
        if cursor.refill():
            cursors.append(cursor)
    while cursors:
        lowest = min(cursors, key=lambda c: c.head)
        others = [c.head for c in cursors if c is not lowest]
        watermark = min(others) if others else np.inf
        hi = np.searchsorted(lowest.buffer, watermark, side="right")
        if hi <= lowest.pos:      # head == watermark: emit at least it
            hi = lowest.pos + 1
        yield lowest.buffer[lowest.pos:hi]
        lowest.pos = int(hi)
        if lowest.pos >= len(lowest.buffer) and not lowest.refill():
            cursors.remove(lowest)


# -- worker tasks (top level: must pickle) ------------------------------------
def _fold_file(task) -> Tuple[dict, int, int]:
    """Fold one node file through a set of unordered pipelines."""
    path, pipelines, predicates, ctx = task
    accs = {p.name: p.accumulators(ctx) for p in pipelines}
    with TraceReader(path) as reader:
        for batch in reader.iter_arrays(**predicates):
            for group in accs.values():
                for acc in group.values():
                    acc.update(batch)
        return accs, reader.chunks_read, reader.chunk_count


def _fold_ordered(task) -> Tuple[dict, int, int]:
    """Fold a whole run's merged time stream through ordered pipelines."""
    paths, pipelines, predicates, ctx = task
    accs = {p.name: p.accumulators(ctx) for p in pipelines}
    readers = [TraceReader(p) for p in paths]
    try:
        total_chunks = sum(r.chunk_count for r in readers)
        for block in merged_time_blocks(readers, **predicates):
            for group in accs.values():
                for acc in group.values():
                    acc.update_values(block)
        read_chunks = sum(r.chunks_read for r in readers)
    finally:
        for reader in readers:
            reader.close()
    return accs, read_chunks, total_chunks


# -- the engine ---------------------------------------------------------------
class AnalysisEngine:
    """Run characterization pipelines over stored runs, fast and cached.

    ``workers > 1`` fans the per-node folds (and, under
    :meth:`analyze_all`, whole runs) out across processes.  ``cache``
    persists finished summaries in each run directory; analysing an
    unchanged run again never touches a chunk.  Pass an
    :class:`~repro.obs.MetricsRegistry` (or ``ObsRecorder``) as ``obs``
    to count scanned/skipped chunks and cache traffic.
    """

    def __init__(self, catalog: Union[str, Path, RunCatalog],
                 workers: int = 1, cache: bool = True, obs=None):
        self.catalog = catalog if isinstance(catalog, RunCatalog) \
            else RunCatalog(catalog)
        self.workers = max(int(workers), 1)
        self.cache = cache
        registry = getattr(obs, "registry", obs)
        if registry is None:
            from repro.obs import NULL_REGISTRY
            registry = NULL_REGISTRY
        self.registry = registry

    # -- public API ---------------------------------------------------------
    def analyze(self, run_id: str, pipelines=None, *,
                t0: Optional[float] = None, t1: Optional[float] = None,
                node: Optional[int] = None, write: Optional[bool] = None,
                refresh: bool = False) -> Dict[str, object]:
        """One run through the pipelines; returns ``{name: result}``.

        ``t0``/``t1``/``node``/``write`` push down to the chunk index
        exactly like :meth:`TraceReader.iter_arrays`.  ``refresh``
        recomputes even when a valid cache entry exists.
        """
        pipes = make_pipelines(pipelines)
        predicates = {"t0": t0, "t1": t1, "node": node, "write": write}
        pool = self._make_pool(tasks_hint=len(
            self.catalog.trace_paths(run_id)))
        try:
            return self._analyze_one(run_id, pipes, predicates,
                                     refresh, pool)
        finally:
            if pool is not None:
                pool.shutdown()

    def analyze_all(self, run_ids: Optional[Sequence[str]] = None,
                    pipelines=None, *,
                    refresh: bool = False
                    ) -> Dict[str, Dict[str, object]]:
        """Every catalog run (or ``run_ids``) through the pipelines.

        One process pool is shared across all runs, so per-node tasks
        from different runs overlap — the catalog-scale fan-out.
        """
        runs = list(run_ids) if run_ids is not None else self.catalog.runs()
        pipes = make_pipelines(pipelines)
        predicates = {"t0": None, "t1": None, "node": None, "write": None}
        total_files = sum(len(self.catalog.trace_paths(r)) for r in runs)
        pool = self._make_pool(tasks_hint=total_files)
        try:
            return {run_id: self._analyze_one(run_id, pipes, predicates,
                                              refresh, pool)
                    for run_id in runs}
        finally:
            if pool is not None:
                pool.shutdown()

    # -- internals ----------------------------------------------------------
    def _make_pool(self, tasks_hint: int):
        if self.workers <= 1 or tasks_hint <= 1:
            return None
        from concurrent.futures import ProcessPoolExecutor
        return ProcessPoolExecutor(max_workers=self.workers)

    def signature(self, run_id: str) -> str:
        """The cache signature of a whole run, as stored in its entries.

        Derived from every trace file's chunk index plus the run's
        scenario block — the exact value cache validity is judged
        against, so it doubles as an HTTP ETag seed for
        ``repro.serve``: a repeated query with an unchanged signature
        can be answered 304 without touching a chunk.
        """
        manifest = self.catalog.manifest(run_id)
        _, signature = self._scan(run_id, manifest)
        return signature

    def _scan(self, run_id: str,
              manifest: dict) -> Tuple[List[FileInfo], str]:
        """Index-scan a run's files; returns (infos, cache signature)."""
        paths = [path for _, path in
                 sorted(self.catalog.trace_paths(run_id).items())]
        infos = [scan_file(path) for path in paths]
        signature = run_signature(infos)
        # Fold in the scenario the run was configured with: same trace
        # bytes under a different declared stack must not share cache
        # entries.  Legacy (v1) manifests have no scenario block and keep
        # their bare signatures, so existing caches stay valid.
        scenario = manifest.get("scenario")
        if scenario is not None:
            canonical = json.dumps(
                {k: v for k, v in scenario.items()
                 if k not in ("name", "seed")},
                sort_keys=True, separators=(",", ":"))
            signature += f"|scn:{zlib.crc32(canonical.encode()):08x}"
        return infos, signature

    def _analyze_one(self, run_id: str, pipes: List[Pipeline],
                     predicates: dict, refresh: bool,
                     pool) -> Dict[str, object]:
        manifest = self.catalog.manifest(run_id)
        paths = [path for _, path in
                 sorted(self.catalog.trace_paths(run_id).items())]
        infos, signature = self._scan(run_id, manifest)
        ctx = self._context(manifest, infos)
        pred_key = _predicate_key(predicates)

        cache_path = self.catalog.root / run_id / ANALYSIS_NAME
        cached = self._load_cache(cache_path) if self.cache else {}
        results: Dict[str, object] = {}
        fresh_entries: Dict[str, dict] = {}
        to_compute: List[Pipeline] = []
        for pipe in pipes:
            key = _entry_key(pipe, pred_key)
            entry = cached.get(key)
            if (not refresh and entry is not None
                    and entry.get("signature") == signature):
                result = pipe.from_json(entry["result"]) \
                    if entry["result"] is not None else None
                results[pipe.name] = result
                self.registry.counter("analysis.cache_hits").inc()
                continue
            self.registry.counter("analysis.cache_misses").inc()
            to_compute.append(pipe)

        unordered = [p for p in to_compute if not p.ordered]
        ordered = [p for p in to_compute if p.ordered]
        if unordered:
            results.update(self._fold_unordered(paths, unordered,
                                                predicates, ctx, pool))
        if ordered:
            results.update(self._fold_ordered_run(paths, ordered,
                                                  predicates, ctx, pool))
        for pipe in to_compute:
            result = results[pipe.name]
            fresh_entries[_entry_key(pipe, pred_key)] = {
                "pipeline": pipe.name,
                "version": pipe.version,
                "signature": signature,
                "computed": time.strftime("%Y-%m-%dT%H:%M:%S"),
                "result": None if result is None else pipe.to_json(result),
            }
        if fresh_entries and self.cache:
            self._store_cache(cache_path, cached, fresh_entries)
        if to_compute:
            self.registry.counter("analysis.runs_analyzed").inc()
        return results

    def _context(self, manifest: dict,
                 infos: Sequence[FileInfo]) -> RunContext:
        with_records = [i for i in infos if i.records]
        span = None
        if with_records:
            span = (min(i.t0 for i in with_records),
                    max(i.t1 for i in with_records))
        return RunContext(label=manifest.get("name", ""),
                          duration=manifest.get("duration"),
                          nnodes=manifest.get("nnodes"),
                          time_span=span,
                          total_records=sum(i.records for i in infos))

    def _fold_unordered(self, paths, pipelines, predicates, ctx,
                        pool) -> Dict[str, object]:
        tasks = [(str(path), pipelines, predicates, ctx)
                 for path in paths]
        if pool is not None and len(tasks) > 1:
            folded = list(pool.map(_fold_file, tasks))
        else:
            folded = [_fold_file(task) for task in tasks]
        return self._merge_and_finalize(pipelines, folded, ctx)

    def _fold_ordered_run(self, paths, pipelines, predicates, ctx,
                          pool) -> Dict[str, object]:
        task = ([str(path) for path in paths], pipelines, predicates, ctx)
        if pool is not None:
            folded = [pool.submit(_fold_ordered, task).result()]
        else:
            folded = [_fold_ordered(task)]
        return self._merge_and_finalize(pipelines, folded, ctx)

    def _merge_and_finalize(self, pipelines, folded,
                            ctx) -> Dict[str, object]:
        if not folded:      # a run that captured no trace files at all
            folded = [({p.name: p.accumulators(ctx) for p in pipelines},
                       0, 0)]
        scanned = sum(read for _, read, _ in folded)
        total = sum(chunks for _, _, chunks in folded)
        self.registry.counter("analysis.chunks_scanned").inc(scanned)
        self.registry.counter("analysis.chunks_skipped").inc(
            total - scanned)
        merged = folded[0][0]
        for accs, _, _ in folded[1:]:
            for name, group in accs.items():
                for key, acc in group.items():
                    merged[name][key].merge(acc)
        return {pipe.name: pipe.finalize(merged[pipe.name], ctx)
                for pipe in pipelines}

    # -- cache --------------------------------------------------------------
    def _load_cache(self, path: Path) -> Dict[str, dict]:
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            return {}
        if data.get("format") != ANALYSIS_FORMAT:
            return {}
        entries = data.get("entries")
        return dict(entries) if isinstance(entries, dict) else {}

    def _store_cache(self, path: Path, cached: Dict[str, dict],
                     fresh: Dict[str, dict]) -> None:
        # Concurrency-safe by construction: re-read the file so entries
        # another process stored since our load survive (each entry
        # carries its own signature, so stale ones are re-checked on the
        # next load rather than trusted), write to a per-process temp
        # name, and publish with an atomic rename.  Two racing writers
        # each produce a complete, valid file; last one wins.
        entries = dict(cached)
        entries.update(self._load_cache(path))
        entries.update(fresh)
        payload = {"format": ANALYSIS_FORMAT, "entries": entries}
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        try:
            tmp.write_text(json.dumps(payload, indent=2))
            os.replace(tmp, path)
        finally:
            if tmp.exists():     # failed mid-write: don't leave litter
                tmp.unlink()


def _predicate_key(predicates: dict) -> str:
    parts = [f"{key}={predicates[key]}"
             for key in ("t0", "t1", "node", "write")
             if predicates.get(key) is not None]
    return ",".join(parts)


def _entry_key(pipe: Pipeline, pred_key: str) -> str:
    key = f"{pipe.name}@v{pipe.version}"
    return f"{key}|{pred_key}" if pred_key else key
