"""Composable streaming accumulators over trace record batches.

Every accumulator folds :data:`~repro.driver.TRACE_DTYPE` record arrays
chunk by chunk (``update``), combines partial states computed on other
chunks, nodes, or processes (``merge``), and produces its summary on
demand (``result``).  The contract that makes the analysis engine exact:

* ``update`` over any partition of a stream followed by ``merge`` of the
  partial states equals one ``update`` over the whole stream, for every
  accumulator whose arithmetic is order-free (counts, integer tallies,
  min/max, dyadic-rational sums);
* accumulators are plain picklable objects, so partial states travel
  across ``multiprocessing`` workers unchanged.

Sums accumulate in float64 regardless of the column dtype.  Trace
request sizes are dyadic rationals (0.5, 1, 4, 32 KB) and the integer
columns are exact, so these sums are bit-identical however the stream
is chunked — the property the engine's equality guarantee rests on.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np


class Accumulator:
    """Base contract: fold record batches, merge partials, report."""

    def update(self, records: np.ndarray) -> None:
        raise NotImplementedError

    def merge(self, other: "Accumulator") -> None:
        raise NotImplementedError

    def result(self):
        raise NotImplementedError


class Count(Accumulator):
    """Number of records seen."""

    def __init__(self):
        self.n = 0

    def update(self, records: np.ndarray) -> None:
        self.n += len(records)

    def merge(self, other: "Count") -> None:
        self.n += other.n

    def result(self) -> int:
        return self.n


class Sum(Accumulator):
    """Float64 sum of one column (exact for integer and dyadic data)."""

    def __init__(self, field: str):
        self.field = field
        self.total = 0.0

    def update(self, records: np.ndarray) -> None:
        if len(records):
            self.total += float(np.sum(records[self.field],
                                       dtype=np.float64))

    def merge(self, other: "Sum") -> None:
        self.total += other.total

    def result(self) -> float:
        return self.total


class MinMax(Accumulator):
    """Running minimum and maximum of one column."""

    def __init__(self, field: str):
        self.field = field
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def update(self, records: np.ndarray) -> None:
        if not len(records):
            return
        lo = records[self.field].min()
        hi = records[self.field].max()
        if self.min is None or lo < self.min:
            self.min = float(lo) if records[self.field].dtype.kind == "f" \
                else int(lo)
        if self.max is None or hi > self.max:
            self.max = float(hi) if records[self.field].dtype.kind == "f" \
                else int(hi)

    def merge(self, other: "MinMax") -> None:
        if other.min is not None and (self.min is None
                                      or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None
                                      or other.max > self.max):
            self.max = other.max

    def result(self) -> Tuple[Optional[float], Optional[float]]:
        return (self.min, self.max)


class MeanVar(Accumulator):
    """Streaming mean and variance of one column (Welford).

    Batches fold via the parallel update of Chan, Golub & LeVeque — the
    same formula ``merge`` uses — so the statistic is deterministic for
    a fixed partitioning and agrees with two-pass NumPy to floating
    round-off however the stream is split.
    """

    def __init__(self, field: Optional[str] = None):
        self.field = field
        self.n = 0
        self.mean = 0.0
        self.m2 = 0.0

    def update(self, records: np.ndarray) -> None:
        if not len(records):
            return
        values = records if self.field is None else records[self.field]
        self.update_values(np.asarray(values, dtype=np.float64))

    def update_values(self, values: np.ndarray) -> None:
        """Fold a plain float array (the column already extracted)."""
        k = len(values)
        if k == 0:
            return
        b_mean = float(values.mean())
        b_m2 = float(np.sum((values - b_mean) ** 2))
        self._combine(k, b_mean, b_m2)

    def merge(self, other: "MeanVar") -> None:
        self._combine(other.n, other.mean, other.m2)

    def _combine(self, n: int, mean: float, m2: float) -> None:
        if n == 0:
            return
        if self.n == 0:
            self.n, self.mean, self.m2 = n, mean, m2
            return
        total = self.n + n
        delta = mean - self.mean
        self.mean += delta * n / total
        self.m2 += m2 + delta * delta * self.n * n / total
        self.n = total

    @property
    def variance(self) -> float:
        """Population variance (``ddof=0``), 0 before two observations."""
        return self.m2 / self.n if self.n else 0.0

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    def result(self) -> Tuple[int, float, float]:
        return (self.n, self.mean, self.variance)


class ValueCounts(Accumulator):
    """Exact occurrence count per distinct column value.

    Bounded by the number of *distinct* values (request sizes, node
    ids, sectors of a bounded disk), not by the stream length.
    """

    def __init__(self, field: str):
        self.field = field
        self.counts: Dict[float, int] = {}

    def update(self, records: np.ndarray) -> None:
        if not len(records):
            return
        values, counts = np.unique(records[self.field], return_counts=True)
        kind = values.dtype.kind
        cast = float if kind == "f" else int
        mine = self.counts
        for value, count in zip(values, counts):
            key = cast(value)
            mine[key] = mine.get(key, 0) + int(count)

    def merge(self, other: "ValueCounts") -> None:
        mine = self.counts
        for key, count in other.counts.items():
            mine[key] = mine.get(key, 0) + count

    def result(self) -> Dict[float, int]:
        """Counts keyed by value, ascending (``np.unique`` order)."""
        return dict(sorted(self.counts.items()))


class TopK(Accumulator):
    """The ``k`` most frequent values of a column (ties: smaller first)."""

    def __init__(self, field: str, k: int = 10):
        self.k = k
        self._counts = ValueCounts(field)

    def update(self, records: np.ndarray) -> None:
        self._counts.update(records)

    def merge(self, other: "TopK") -> None:
        self._counts.merge(other._counts)

    def result(self) -> List[Tuple[float, int]]:
        ranked = sorted(self._counts.counts.items(),
                        key=lambda kv: (-kv[1], kv[0]))
        return ranked[:self.k]


class Log2Histogram(Accumulator):
    """Power-of-two bucket tallies of one column.

    Buckets use the binary exponent ``e`` with ``2**(e-1) <= v < 2**e``,
    sentinel ``-1024`` for zero and ``-1025`` for negatives (kept as
    integers here — this is a versioned cached format; the obs layer
    reports the same observations as an ``underflow`` bucket) — so
    engine output diffs cleanly against
    runtime observability snapshots.
    """

    def __init__(self, field: str):
        self.field = field
        self.buckets: Dict[int, int] = {}

    def update(self, records: np.ndarray) -> None:
        if not len(records):
            return
        values = np.asarray(records[self.field], dtype=np.float64)
        keys = np.frexp(values)[1]
        keys[values == 0] = -1024
        keys[values < 0] = -1025
        uniq, counts = np.unique(keys, return_counts=True)
        mine = self.buckets
        for key, count in zip(uniq, counts):
            mine[int(key)] = mine.get(int(key), 0) + int(count)

    def merge(self, other: "Log2Histogram") -> None:
        mine = self.buckets
        for key, count in other.buckets.items():
            mine[key] = mine.get(key, 0) + count

    def result(self) -> Dict[int, int]:
        return dict(sorted(self.buckets.items()))


class BinnedCounts(Accumulator):
    """Fixed uniform-bin counts over ``[lo, hi]``, NumPy semantics.

    Per-batch counts come from ``np.histogram(values, nbins, (lo, hi))``
    — each value's bin is independent of the rest of the stream, so
    partial counts add exactly.  Values outside the range fall off, the
    right edge lands in the last bin, exactly as the one-shot call.
    """

    def __init__(self, field: str, nbins: int, lo: float, hi: float):
        if nbins < 1:
            raise ValueError("nbins must be >= 1")
        self.field = field
        self.nbins = nbins
        self.lo = float(lo)
        self.hi = float(hi)
        self.counts = np.zeros(nbins, dtype=np.int64)

    def update(self, records: np.ndarray) -> None:
        if not len(records):
            return
        values = np.asarray(records[self.field], dtype=np.float64)
        self.update_values(values)

    def update_values(self, values: np.ndarray) -> None:
        if len(values):
            self.counts += np.histogram(
                values, bins=self.nbins, range=(self.lo, self.hi))[0]

    def merge(self, other: "BinnedCounts") -> None:
        if (other.nbins, other.lo, other.hi) != \
                (self.nbins, self.lo, self.hi):
            raise ValueError("cannot merge histograms with different bins")
        self.counts += other.counts

    def result(self) -> np.ndarray:
        return self.counts


class BandCounts(Accumulator):
    """Integer band tallies: ``value // band`` clamped to the last band.

    The streaming form of the paper's Figure 7 binning (100K-sector
    spatial bands); identical to a ``np.bincount`` over the whole trace.
    """

    def __init__(self, field: str, band: int, nbands: int):
        if band < 1 or nbands < 1:
            raise ValueError("band and nbands must be >= 1")
        self.field = field
        self.band = band
        self.nbands = nbands
        self.counts = np.zeros(nbands, dtype=np.int64)

    def update(self, records: np.ndarray) -> None:
        if not len(records):
            return
        band_of = np.minimum(records[self.field] // self.band,
                             self.nbands - 1)
        self.counts += np.bincount(band_of.astype(np.int64),
                                   minlength=self.nbands)

    def merge(self, other: "BandCounts") -> None:
        if (other.band, other.nbands) != (self.band, self.nbands):
            raise ValueError("cannot merge band counts with different bands")
        self.counts += other.counts

    def result(self) -> np.ndarray:
        return self.counts


class ReservoirSample(Accumulator):
    """Uniform sample of up to ``k`` values of one column.

    Vitter's reservoir algorithm batched with NumPy; deterministic for a
    fixed seed and stream order.  ``merge`` draws the combined reservoir
    with each side weighted by its stream length, so distributed sampling
    stays uniform over the union.
    """

    def __init__(self, field: str, k: int = 1024, seed: int = 0):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.field = field
        self.k = k
        self.seed = seed
        self.n = 0                      # stream length seen so far
        self.sample = np.zeros(0, dtype=np.float64)
        self._rng = np.random.default_rng(seed)

    def update(self, records: np.ndarray) -> None:
        if not len(records):
            return
        values = np.asarray(records[self.field], dtype=np.float64)
        if len(self.sample) < self.k:
            take = min(self.k - len(self.sample), len(values))
            self.sample = np.concatenate([self.sample, values[:take]])
            self.n += take
            values = values[take:]
        for value in values:
            self.n += 1
            j = self._rng.integers(0, self.n)
            if j < self.k:
                self.sample[j] = value

    def merge(self, other: "ReservoirSample") -> None:
        if other.n == 0:
            return
        if self.n == 0:
            self.n, self.sample = other.n, other.sample.copy()
            return
        total = self.n + other.n
        pool = np.concatenate([self.sample, other.sample])
        weights = np.concatenate([
            np.full(len(self.sample), self.n / len(self.sample)),
            np.full(len(other.sample), other.n / len(other.sample))])
        take = min(self.k, len(pool))
        picked = self._rng.choice(len(pool), size=take, replace=False,
                                  p=weights / weights.sum())
        self.sample = pool[picked]
        self.n = total

    def result(self) -> np.ndarray:
        return np.sort(self.sample)

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_rng"] = self._rng.bit_generator.state
        return state

    def __setstate__(self, state):
        rng_state = state.pop("_rng")
        self.__dict__.update(state)
        self._rng = np.random.default_rng(self.seed)
        if isinstance(rng_state, dict):
            self._rng.bit_generator.state = rng_state


class GapStats(Accumulator):
    """Inter-arrival statistics of a *time-ordered* stream.

    Folds consecutive differences of the ``time`` column into a
    :class:`MeanVar`, carrying the boundary gap across batches.  Partial
    states merge only when their time ranges concatenate in order (the
    analysis engine feeds this accumulator from its merged, globally
    time-sorted stream, so per-run folds never violate that).
    """

    def __init__(self):
        self.gaps = MeanVar()
        self.first: Optional[float] = None
        self.last: Optional[float] = None

    def update(self, records: np.ndarray) -> None:
        if len(records):
            self.update_values(
                np.asarray(records["time"], dtype=np.float64))

    def update_values(self, times: np.ndarray) -> None:
        """Fold a sorted float64 batch of timestamps."""
        if not len(times):
            return
        if self.last is not None:
            if times[0] < self.last:
                raise ValueError("GapStats requires a time-ordered stream")
            with_carry = np.empty(len(times) + 1, dtype=np.float64)
            with_carry[0] = self.last
            with_carry[1:] = times
            self.gaps.update_values(np.diff(with_carry))
        else:
            self.first = float(times[0])
            if len(times) > 1:
                self.gaps.update_values(np.diff(times))
        self.last = float(times[-1])

    def merge(self, other: "GapStats") -> None:
        if other.first is None:
            return
        if self.last is None:
            self.gaps.merge(other.gaps)
            self.first, self.last = other.first, other.last
            return
        if other.first < self.last:
            raise ValueError("GapStats partials must be time-disjoint "
                             "and ordered")
        boundary = MeanVar()
        boundary.update_values(np.array([other.first - self.last]))
        self.gaps.merge(boundary)
        self.gaps.merge(other.gaps)
        self.last = other.last

    def result(self) -> Tuple[int, float, float]:
        """(gap count, mean gap, population std of gaps)."""
        return (self.gaps.n, self.gaps.mean, self.gaps.std)
