"""Characterization pipelines: accumulator bundles with a finalise step.

A :class:`Pipeline` names a characterization (Table-1 metrics, the
request-size distribution, Figure-7 spatial locality, inter-arrival
structure, hot sectors), declares the accumulators that stream it, and
finalises the merged accumulator states into the same result types the
in-memory analysis layer produces.  ``compute_metrics``,
``size_histogram``, ``class_fractions``, and ``spatial_locality`` are
thin adapters over these pipelines (the whole trace folded as one
batch), which is what makes streaming and in-memory results
bit-identical.

Pipelines with ``ordered = True`` (inter-arrival) fold sorted float64
*time blocks* from the engine's k-way merged stream instead of raw
record batches; their accumulators expose ``update_values``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.accumulators import (
    Accumulator,
    BandCounts,
    BinnedCounts,
    Count,
    GapStats,
    MinMax,
    Sum,
    TopK,
    ValueCounts,
)
from repro.core.locality import (
    BAND_SECTORS,
    SpatialLocality,
    spatial_from_band_counts,
)
from repro.core.metrics import WorkloadMetrics
from repro.core.patterns import ArrivalReport
from repro.core.sizes import RequestClass

#: pipelines the engine runs when none are named
DEFAULT_PIPELINES = ("metrics", "sizes", "spatial", "arrival")


@dataclass(frozen=True)
class RunContext:
    """What a pipeline may know about a run before streaming it.

    ``duration`` and ``nnodes`` come from the run manifest (or the
    caller); ``time_span`` and ``total_records`` come from the chunk
    index — exact, and free of any decompression.
    """

    label: str = ""
    duration: Optional[float] = None
    nnodes: Optional[int] = None
    time_span: Optional[Tuple[float, float]] = None
    total_records: int = 0

    @classmethod
    def for_dataset(cls, trace, label: str = "",
                    duration: Optional[float] = None,
                    nnodes: Optional[int] = None) -> "RunContext":
        """Context of an in-memory dataset (the adapters' entry)."""
        span = None
        if len(trace):
            t = trace.time
            span = (float(t.min()), float(t.max()))
        return cls(label=label, duration=duration, nnodes=nnodes,
                   time_span=span, total_records=len(trace))


class Pipeline:
    """One characterization: named accumulators plus a finalise step."""

    #: registry key and cache-key component
    name: str = ""
    #: bumped whenever results change meaning — invalidates caches
    version: int = 1
    #: True: fold merged sorted time blocks instead of record batches
    ordered: bool = False

    def accumulators(self, ctx: RunContext) -> Dict[str, Accumulator]:
        raise NotImplementedError

    def finalize(self, accs: Dict[str, Accumulator], ctx: RunContext):
        """Merged accumulators -> result (None when the run is empty
        and the characterization is undefined)."""
        raise NotImplementedError

    def to_json(self, result) -> dict:
        raise NotImplementedError

    def from_json(self, data: dict):
        raise NotImplementedError

    # -- conveniences ---------------------------------------------------------
    def run_over(self, batches, ctx: RunContext):
        """Fold ``batches`` serially and finalise (adapter entry point)."""
        accs = self.accumulators(ctx)
        for batch in batches:
            for acc in accs.values():
                acc.update(batch)
        return self.finalize(accs, ctx)


class MetricsPipeline(Pipeline):
    """Table-1 workload metrics, streamed.

    Counts, the read/write split, and the KB/pending sums are exact
    integer or dyadic-rational arithmetic, so any chunking and any
    merge order produce the same :class:`WorkloadMetrics` —
    ``compute_metrics`` is this pipeline applied to a single batch.
    """

    name = "metrics"
    version = 1

    def accumulators(self, ctx: RunContext) -> Dict[str, Accumulator]:
        return {
            "n": Count(),
            "writes": Sum("write"),
            "size_kb": Sum("size_kb"),
            "pending": Sum("pending"),
            "time": MinMax("time"),
            "nodes": ValueCounts("node"),
        }

    def finalize(self, accs: Dict[str, Accumulator],
                 ctx: RunContext) -> WorkloadMetrics:
        n = accs["n"].n
        duration = ctx.duration if ctx.duration is not None else 0.0
        if duration <= 0:
            observed = accs["time"].max
            duration = max(observed if observed is not None else 0.0, 1e-9)
        nnodes = ctx.nnodes if ctx.nnodes is not None \
            else len(accs["nodes"].counts)
        nnodes = max(int(nnodes), 1)
        if n == 0:
            return WorkloadMetrics(label=ctx.label, total_requests=0,
                                   read_fraction=0.0, write_fraction=0.0,
                                   requests_per_second=0.0,
                                   requests_per_node=0.0,
                                   duration=duration, mean_size_kb=0.0,
                                   mean_pending=0.0, nnodes=nnodes)
        nreads = n - int(accs["writes"].total)
        return WorkloadMetrics(
            label=ctx.label,
            total_requests=n,
            read_fraction=nreads / n,
            write_fraction=1.0 - nreads / n,
            requests_per_second=n / duration / nnodes,
            requests_per_node=n / nnodes,
            duration=duration,
            mean_size_kb=accs["size_kb"].total / n,
            mean_pending=accs["pending"].total / n,
            kb_moved=accs["size_kb"].total,
            nnodes=nnodes,
        )

    def to_json(self, result: WorkloadMetrics) -> dict:
        return result.to_dict()

    def from_json(self, data: dict) -> WorkloadMetrics:
        return WorkloadMetrics.from_dict(data)


@dataclass(frozen=True)
class SizeDistribution:
    """The exact request-size histogram plus the paper's class split."""

    total: int
    #: request count per exact size in KB, ascending
    histogram: Dict[float, int] = field(default_factory=dict)
    page_kb: float = 4.0

    @property
    def fractions(self) -> Dict[RequestClass, float]:
        """Fraction of requests per class (zeros when empty)."""
        if not self.total:
            return {cls: 0.0 for cls in RequestClass}
        counts = {cls: 0 for cls in RequestClass}
        for size, count in self.histogram.items():
            if size >= 2 * self.page_kb:
                counts[RequestClass.CACHE] += count
            elif size == self.page_kb:
                counts[RequestClass.PAGE] += count
            else:
                counts[RequestClass.BLOCK] += count
        return {cls: float(c) / self.total for cls, c in counts.items()}

    @property
    def dominant_size(self) -> float:
        """The most frequent size (smallest wins ties, like argmax)."""
        if not self.histogram:
            raise ValueError("empty trace")
        return max(self.histogram, key=lambda s: (self.histogram[s], -s))

    @property
    def max_size_kb(self) -> float:
        if not self.histogram:
            raise ValueError("empty trace")
        return max(self.histogram)


class SizeHistogramPipeline(Pipeline):
    """Exact per-size request counts — Figures 2-5's distribution.

    Counts per distinct size merge exactly, so ``size_histogram`` and
    ``class_fractions`` route through this pipeline unchanged.
    """

    name = "sizes"
    version = 1

    def __init__(self, page_kb: float = 4.0):
        self.page_kb = page_kb

    def accumulators(self, ctx: RunContext) -> Dict[str, Accumulator]:
        return {"sizes": ValueCounts("size_kb")}

    def finalize(self, accs: Dict[str, Accumulator],
                 ctx: RunContext) -> SizeDistribution:
        histogram = accs["sizes"].result()
        return SizeDistribution(total=sum(histogram.values()),
                                histogram=histogram, page_kb=self.page_kb)

    def to_json(self, result: SizeDistribution) -> dict:
        return {"total": result.total, "page_kb": result.page_kb,
                "histogram": [[size, count]
                              for size, count in result.histogram.items()]}

    def from_json(self, data: dict) -> SizeDistribution:
        return SizeDistribution(
            total=int(data["total"]), page_kb=float(data["page_kb"]),
            histogram={float(s): int(c) for s, c in data["histogram"]})


class SpatialLocalityPipeline(Pipeline):
    """Figure 7 spatial locality from streamed band counts."""

    name = "spatial"
    version = 1

    def __init__(self, band_sectors: int = BAND_SECTORS,
                 total_sectors: int = 1_024_128):
        self.band_sectors = band_sectors
        self.nbands = -(-total_sectors // band_sectors)

    def accumulators(self, ctx: RunContext) -> Dict[str, Accumulator]:
        return {"bands": BandCounts("sector", self.band_sectors,
                                    self.nbands)}

    def finalize(self, accs: Dict[str, Accumulator],
                 ctx: RunContext) -> Optional[SpatialLocality]:
        counts = accs["bands"].result()
        if counts.sum() == 0:
            return None
        return spatial_from_band_counts(counts, self.band_sectors)

    def to_json(self, result: SpatialLocality) -> dict:
        return {"band_sectors": result.band_sectors,
                "band_fraction": [float(f) for f in result.band_fraction],
                "gini": result.gini,
                "top_20pct_share": result.top_20pct_share}

    def from_json(self, data: dict) -> SpatialLocality:
        fraction = np.asarray(data["band_fraction"], dtype=np.float64)
        starts = np.arange(len(fraction)) * int(data["band_sectors"])
        return SpatialLocality(band_sectors=int(data["band_sectors"]),
                               band_start=starts, band_fraction=fraction,
                               gini=float(data["gini"]),
                               top_20pct_share=float(
                                   data["top_20pct_share"]))


class _TimeCount(Accumulator):
    """Record count of an ordered time stream (``update_values`` only)."""

    def __init__(self):
        self.n = 0

    def update(self, records: np.ndarray) -> None:
        self.n += len(records)

    def update_values(self, times: np.ndarray) -> None:
        self.n += len(times)

    def merge(self, other: "_TimeCount") -> None:
        self.n += other.n

    def result(self) -> int:
        return self.n


class ArrivalPipeline(Pipeline):
    """Inter-arrival gaps and burstiness over the merged request stream.

    ``ordered = True``: the engine feeds globally time-sorted blocks
    (k-way merged across the run's node files), so gap statistics see
    the same sequence ``arrival_structure`` diffs after its sort.  The
    IDC window counts bin against the exact time span from the chunk
    index, fixed before streaming starts.
    """

    name = "arrival"
    version = 1
    ordered = True

    def __init__(self, window: float = 10.0):
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window

    def accumulators(self, ctx: RunContext) -> Dict[str, Accumulator]:
        lo, hi = ctx.time_span if ctx.time_span else (0.0, 0.0)
        duration = hi - lo
        nbins = max(int(duration / self.window), 1)
        return {"gaps": GapStats(),
                "count": _TimeCount(),
                "bins": BinnedCounts("time", nbins, lo, hi)}

    def finalize(self, accs: Dict[str, Accumulator],
                 ctx: RunContext) -> Optional[ArrivalReport]:
        total = accs["count"].n
        if total < 2:
            return None
        _, mean_gap, gap_std = accs["gaps"].result()
        cv = gap_std / mean_gap if mean_gap > 0 else 0.0
        counts = accs["bins"].result()
        mean_count = counts.mean()
        idc = float(counts.var() / mean_count) if mean_count > 0 else 0.0
        return ArrivalReport(total=total, mean_gap=mean_gap, cv_gap=cv,
                             idc=idc, window=self.window)

    def to_json(self, result: ArrivalReport) -> dict:
        return {"total": result.total, "mean_gap": result.mean_gap,
                "cv_gap": result.cv_gap, "idc": result.idc,
                "window": result.window}

    def from_json(self, data: dict) -> ArrivalReport:
        return ArrivalReport(total=int(data["total"]),
                             mean_gap=float(data["mean_gap"]),
                             cv_gap=float(data["cv_gap"]),
                             idc=float(data["idc"]),
                             window=float(data["window"]))


@dataclass(frozen=True)
class HotSectors:
    """Figure 8's headline: the most frequently accessed sectors."""

    total: int
    window: float
    #: (sector, access count, accesses per second), hottest first
    spots: List[Tuple[int, int, float]] = field(default_factory=list)


class HotSectorsPipeline(Pipeline):
    """Top-K sectors by access count (temporal-locality hot spots)."""

    name = "hotspots"
    version = 1

    def __init__(self, k: int = 10):
        self.k = k

    def accumulators(self, ctx: RunContext) -> Dict[str, Accumulator]:
        return {"top": TopK("sector", self.k), "n": Count(),
                "time": MinMax("time")}

    def finalize(self, accs: Dict[str, Accumulator],
                 ctx: RunContext) -> Optional[HotSectors]:
        n = accs["n"].n
        if n == 0:
            return None
        window = ctx.duration if ctx.duration else None
        if not window or window <= 0:
            observed = accs["time"].max
            window = max(observed if observed is not None else 0.0, 1e-9)
        spots = [(int(sector), count, count / window)
                 for sector, count in accs["top"].result()]
        return HotSectors(total=n, window=float(window), spots=spots)

    def to_json(self, result: HotSectors) -> dict:
        return {"total": result.total, "window": result.window,
                "spots": [[s, c, f] for s, c, f in result.spots]}

    def from_json(self, data: dict) -> HotSectors:
        return HotSectors(total=int(data["total"]),
                          window=float(data["window"]),
                          spots=[(int(s), int(c), float(f))
                                 for s, c, f in data["spots"]])


#: name -> zero-argument pipeline factory
PIPELINES = {
    "metrics": MetricsPipeline,
    "sizes": SizeHistogramPipeline,
    "spatial": SpatialLocalityPipeline,
    "arrival": ArrivalPipeline,
    "hotspots": HotSectorsPipeline,
}


def make_pipelines(names=None) -> List[Pipeline]:
    """Instantiate pipelines by name (default :data:`DEFAULT_PIPELINES`).

    Already-instantiated :class:`Pipeline` objects pass through, so
    callers can mix names with custom-configured instances.
    """
    out: List[Pipeline] = []
    for entry in (names if names is not None else DEFAULT_PIPELINES):
        if isinstance(entry, Pipeline):
            out.append(entry)
        elif entry in PIPELINES:
            out.append(PIPELINES[entry]())
        else:
            raise ValueError(f"unknown pipeline {entry!r}; "
                             f"choose from {sorted(PIPELINES)}")
    return out
