"""Streaming, parallel, cached analysis over the chunked trace store.

The paper's characterizations — Table-1 workload metrics, the
request-size distribution, Figure-7 spatial locality, inter-arrival
structure — re-expressed as :class:`Accumulator` folds over
:class:`~repro.store.TraceReader` chunk batches.  Accumulators
``merge()`` across chunks, nodes, and processes, so the
:class:`AnalysisEngine` can map :class:`Pipeline` bundles over a whole
:class:`~repro.store.RunCatalog` with ``multiprocessing`` fan-out,
index-driven chunk skipping, and JSON result caching — without ever
materialising a full trace.

The in-memory entry points (``compute_metrics``, ``size_histogram``,
``class_fractions``, ``spatial_locality``) are thin adapters over the
same pipelines, which keeps streaming and in-memory results
bit-identical.
"""

from repro.analysis.accumulators import (
    Accumulator,
    BandCounts,
    BinnedCounts,
    Count,
    GapStats,
    Log2Histogram,
    MeanVar,
    MinMax,
    ReservoirSample,
    Sum,
    TopK,
    ValueCounts,
)
from repro.analysis.engine import (
    AnalysisEngine,
    FileInfo,
    merged_time_blocks,
    run_signature,
    scan_file,
)
from repro.analysis.pipelines import (
    DEFAULT_PIPELINES,
    PIPELINES,
    ArrivalPipeline,
    HotSectors,
    HotSectorsPipeline,
    MetricsPipeline,
    Pipeline,
    RunContext,
    SizeDistribution,
    SizeHistogramPipeline,
    SpatialLocalityPipeline,
    make_pipelines,
)

__all__ = [
    # accumulators
    "Accumulator",
    "Count",
    "Sum",
    "MinMax",
    "MeanVar",
    "ValueCounts",
    "TopK",
    "Log2Histogram",
    "BinnedCounts",
    "BandCounts",
    "ReservoirSample",
    "GapStats",
    # pipelines
    "Pipeline",
    "RunContext",
    "MetricsPipeline",
    "SizeDistribution",
    "SizeHistogramPipeline",
    "SpatialLocalityPipeline",
    "ArrivalPipeline",
    "HotSectors",
    "HotSectorsPipeline",
    "DEFAULT_PIPELINES",
    "PIPELINES",
    "make_pipelines",
    # engine
    "AnalysisEngine",
    "FileInfo",
    "scan_file",
    "run_signature",
    "merged_time_blocks",
]
