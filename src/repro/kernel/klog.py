"""Kernel logging and housekeeping daemons — the baseline workload.

The paper's quiescent baseline is ~0.9 requests/s, essentially 100 % writes,
concentrated on a few sectors at low *and* high disk addresses, and 1 KB in
size.  Those writes come from exactly the machinery modelled here:

* :class:`SysLogger` — syslogd/klogd appending to ``/var/log/messages``
  (low-sector ``log`` zone) and to the instrumentation output file
  (high-sector ``highlog`` zone, fed by the /proc trace drain);
* :class:`UpdateDaemon` — the classic ``update`` process syncing the
  superblock and aged buffers every 30 s;
* :class:`HousekeepingLoad` — periodic kernel chatter: heartbeat log
  entries and table lookups that are nearly always buffer-cache hits
  (hence no reads reach the disk).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.kernel.fs import FileSystem
from repro.kernel.syscalls import FileHandle
from repro.sim import Simulator


class SysLogger:
    """Buffered append-only logger over one file."""

    def __init__(self, sim: Simulator, fs: FileSystem, path: str,
                 zone: str = "log", flush_interval: float = 5.0,
                 owner: Optional[str] = None):
        self.sim = sim
        self.fs = fs
        self.path = path
        self.zone = zone
        self.flush_interval = flush_interval
        # tick-owner key: must be unique across the whole simulator (one
        # sim serves every node), so kernels pass a node-scoped prefix
        self.owner = owner or f"syslog:{path}"
        self._pending_bytes = 0
        self.bytes_logged = 0
        self._handle: Optional[FileHandle] = None
        self._running = True
        sim.process(self._setup_and_flush(), name=f"syslog:{path}")

    def log(self, nbytes: int) -> None:
        """Queue ``nbytes`` of log text (buffered, non-blocking)."""
        if nbytes < 1:
            raise ValueError("log payload must be >= 1 byte")
        self._pending_bytes += nbytes
        self.bytes_logged += nbytes

    def stop(self) -> None:
        self._running = False

    def _setup_and_flush(self):
        if not self.fs.exists(self.path):
            parent = self.path.rsplit("/", 1)[0]
            if parent:
                yield from self.fs.makedirs(parent)
            inode = yield from self.fs.create(self.path, zone=self.zone)
        else:
            inode = self.fs.lookup(self.path)
        self._handle = FileHandle(self.fs, inode)
        while self._running:
            yield self.sim.tick(self.owner, lambda: self.flush_interval)
            if self._pending_bytes:
                n, self._pending_bytes = self._pending_bytes, 0
                yield from self._handle.append(n)

    # -- checkpoint state surface ---------------------------------------
    def snapshot_state(self) -> dict:
        return {"pending_bytes": self._pending_bytes,
                "bytes_logged": self.bytes_logged}

    def restore_state(self, state: dict) -> None:
        self._pending_bytes = int(state["pending_bytes"])
        self.bytes_logged = int(state["bytes_logged"])


class UpdateDaemon:
    """The `update` process: periodic metadata + aged-buffer sync."""

    def __init__(self, sim: Simulator, fs: FileSystem,
                 interval: float = 30.0, buffer_age: float = 30.0,
                 owner: str = "update"):
        self.sim = sim
        self.fs = fs
        self.interval = interval
        self.buffer_age = buffer_age
        self.owner = owner
        self.syncs = 0
        self._running = True
        sim.process(self._loop(), name="update")

    def stop(self) -> None:
        self._running = False

    def _loop(self):
        while self._running:
            yield self.sim.tick(self.owner, lambda: self.interval)
            yield from self.fs.sync_metadata()
            yield from self.fs.cache.flush_aged(self.buffer_age)
            self.syncs += 1

    # -- checkpoint state surface ---------------------------------------
    def snapshot_state(self) -> dict:
        return {"syncs": self.syncs}

    def restore_state(self, state: dict) -> None:
        self.syncs = int(state["syncs"])


class HousekeepingLoad:
    """Background kernel/daemon chatter generating the quiescent trace.

    Log entries arrive as a Poisson process with exponential sizes; table
    lookups re-read a small set of metadata blocks (cache-resident, so they
    produce negligible read traffic, matching the baseline's ~100 % writes).
    """

    def __init__(self, sim: Simulator, fs: FileSystem, logger,
                 rng: np.random.Generator,
                 message_rate: float = 1.0,
                 mean_message_bytes: float = 120.0,
                 lookup_interval: float = 7.0,
                 lookup_blocks: int = 4,
                 owner: str = "hk"):
        from repro.sim.rng import uniform_index_drawer
        if message_rate <= 0:
            raise ValueError("message rate must be positive")
        self.sim = sim
        self.fs = fs
        # one logger or several (messages spread across daemons' files)
        self.loggers = list(logger) if isinstance(logger, (list, tuple)) \
            else [logger]
        self.logger = self.loggers[0]
        self.rng = rng
        self.message_rate = message_rate
        self.mean_message_bytes = mean_message_bytes
        self.lookup_interval = lookup_interval
        self.lookup_blocks = lookup_blocks
        self.owner = owner
        #: seconds between in-place utmp/state-file rewrites (0 disables)
        self.state_rewrite_interval = 4.0
        self.messages = 0
        self.lookups = 0
        self.state_rewrites = 0
        # constructed here (not in ``_chatter``) so its half-word buffer
        # is reachable as checkpoint state; construction is RNG-state
        # neutral, so the draw stream is unchanged
        self._pick = uniform_index_drawer(self.rng, len(self.loggers))
        self._running = True
        sim.process(self._chatter(), name="klog-chatter")
        sim.process(self._table_lookups(), name="klog-lookups")
        sim.process(self._state_rewrites(), name="klog-utmp")

    def stop(self) -> None:
        self._running = False

    def _chatter(self):
        # The densest event source in a quiescent run (one iteration per
        # log message, several per simulated second per node), so the
        # loop body is hoisted: bound methods in locals and the logger
        # pick through a verified raw-word drawer.  Draw order and
        # values are identical to the naive body (the drawer
        # self-verifies against ``integers`` at construction).
        tick = self.sim.tick
        owner = f"{self.owner}:chatter"
        exponential = self.rng.exponential
        mean_gap = 1.0 / self.message_rate
        mean_bytes = self.mean_message_bytes
        logs = [logger.log for logger in self.loggers]
        pick = self._pick
        # the gap draw rides inside the tick's lazy delay: on a restored
        # run the parked tick replays from the checkpoint and the draw
        # that produced it is *not* repeated
        delay = lambda: float(exponential(mean_gap))  # noqa: E731
        while self._running:
            yield tick(owner, delay)
            size = int(exponential(mean_bytes))
            logs[pick()](16 if size < 16 else size)
            self.messages += 1

    def _state_rewrites(self):
        # utmp-style state files: a fixed slot rewritten in place, so the
        # disk sees the *same* 1 KB block over and over -- the horizontal
        # lines of the paper's Figure 1.
        from repro.kernel.syscalls import FileHandle
        if self.state_rewrite_interval <= 0:
            return
        path = "/var/run/utmp"
        if not self.fs.exists(path):
            parent = path.rsplit("/", 1)[0]
            yield from self.fs.makedirs(parent)
            inode = yield from self.fs.create(path, zone="log")
        else:
            inode = self.fs.lookup(path)
        handle = FileHandle(self.fs, inode)
        owner = f"{self.owner}:utmp"
        while self._running:
            yield self.sim.tick(owner, lambda: self.state_rewrite_interval)
            handle.seek(0)
            yield from handle.write(256)
            self.state_rewrites += 1

    def _table_lookups(self):
        # Re-reads the first inode-table blocks; hot, so almost always hits.
        first = self.fs._inode_table_first
        owner = f"{self.owner}:lookups"
        while self._running:
            yield self.sim.tick(owner, lambda: self.lookup_interval)
            yield from self.fs.cache.read_range(first, self.lookup_blocks)
            self.lookups += 1

    # -- checkpoint state surface ---------------------------------------
    def snapshot_state(self) -> dict:
        return {"messages": self.messages,
                "lookups": self.lookups,
                "state_rewrites": self.state_rewrites,
                "pick_half": self._pick.get_state()}

    def restore_state(self, state: dict) -> None:
        self.messages = int(state["messages"])
        self.lookups = int(state["lookups"])
        self.state_rewrites = int(state["state_rewrites"])
        self._pick.set_state(state["pick_half"])
