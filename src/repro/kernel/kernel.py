"""The node kernel facade: one Beowulf node's operating system.

Wires disk + instrumented driver + buffer cache + filesystem + virtual
memory + CPU + logging daemons into a single object applications talk to.
This is the "Linux" of the reproduction: every disk request any application
causes flows through these components and is captured by the driver
instrumentation.
"""

from __future__ import annotations

from typing import Generator, Optional

import numpy as np

from repro.disk import Disk, DiskGeometry, DiskServiceModel
from repro.driver import InstrumentedIDEDriver, ProcTraceTransport, TraceLevel
from repro.kernel.buffercache import BufferCache
from repro.kernel.cpu import CPU
from repro.kernel.fs import FileSystem, Inode
from repro.kernel.klog import HousekeepingLoad, SysLogger, UpdateDaemon
from repro.kernel.params import NodeParams
from repro.kernel.readahead import ReadAheadState
from repro.kernel.syscalls import FileHandle
from repro.kernel.vm import VirtualMemory
from repro.sim import Process, RandomStreams, Simulator

#: bytes of one instrumentation record as written to the trace log file
TRACE_RECORD_BYTES = 32


class NodeKernel:
    """One node: hardware, kernel machinery, and system daemons.

    The disk stack (scheduler, drive cache, driver transport) is built
    from a :class:`~repro.config.NodeConfig`; pass ``node_config`` to
    swap components by registry name.  ``params`` remains accepted for
    the kernel-tunable surface — when both are given, ``params`` wins
    for its fields and ``node_config`` supplies the disk stack.
    """

    def __init__(self, sim: Simulator, params: Optional[NodeParams] = None,
                 streams: Optional[RandomStreams] = None, node_id: int = 0,
                 housekeeping: bool = True,
                 housekeeping_message_rate: float = 3.0,
                 obs=None, node_config=None):
        # lazy import: repro.config imports the disk registries, which
        # live beside modules this kernel package also imports
        from repro.config import NodeConfig
        if node_config is None:
            node_config = (NodeConfig.from_node_params(params)
                           if params is not None else NodeConfig())
        self.node_config = node_config
        self.sim = sim
        self.params = params if params is not None \
            else node_config.to_node_params()
        self.node_id = node_id
        streams = streams or RandomStreams(seed=node_id)
        self.streams = streams
        p = self.params

        # One Disk per member of the node's volume.  The first member
        # keeps the historical identity (RNG stream "disk", name
        # hda<node>) so a default single-disk scenario is bit-identical
        # to the pre-volume stack; extra members get their own streams
        # and names (hdb<node>, hdc<node>, ...).
        disks = []
        for i, disk_cfg in enumerate(node_config.disks):
            geometry = DiskGeometry.from_capacity_mb(disk_cfg.capacity_mb)
            disks.append(Disk(
                sim,
                service=DiskServiceModel(geometry=geometry),
                scheduler=disk_cfg.build_scheduler(),
                rng=streams.stream("disk" if i == 0 else f"disk{i}"),
                name=f"hd{chr(ord('a') + i)}{node_id}",
                # default: 128 KB on-drive segment buffer, as the
                # era's IDE drives carried
                cache=disk_cfg.build_cache(),
                media_error_rate=disk_cfg.media_error_rate,
                obs=obs))
        self.disks = tuple(disks)
        self.volume = node_config.volume.build(self.disks,
                                               name=f"md{node_id}")
        self.transport = ProcTraceTransport(
            sim, ring_capacity=node_config.driver.ring_capacity,
            drain_interval=node_config.driver.drain_interval,
            sink=self._instrumentation_sink)
        self.driver = InstrumentedIDEDriver(sim, self.volume,
                                            node_id=node_id,
                                            transport=self.transport)
        self.cache = BufferCache(
            sim, self.driver,
            capacity_blocks=p.buffer_cache_kb // p.block_kb,
            sectors_per_block=p.sectors_per_block,
            cluster_blocks=p.writeback_cluster_blocks)
        self.fs = FileSystem(self.cache, layout=p.disk_layout,
                             block_kb=p.block_kb,
                             atime_updates=p.atime_updates)
        self.vm = VirtualMemory(self.driver, frames_total=p.user_frames,
                                page_kb=p.page_kb, layout=p.disk_layout)
        # kswapd keeps a small free pool so most faults avoid synchronous
        # (direct) reclaim; its batched swap-outs are part of the bursty
        # write clumping the combined figures show.
        self.vm.attach_reclaimer(sim)
        self.cpu = CPU(sim, speed=p.cpu_speed, timeslice=p.timeslice)

        # System daemons.  Several log files, as on a real system
        # (messages / daemon / wtmp), so quiescent writes land on a few
        # distinct sector groups instead of one sequential run.
        prefix = f"node{node_id}"
        self.syslog = SysLogger(sim, self.fs, "/var/log/messages",
                                zone="log", flush_interval=p.bdflush_interval,
                                owner=f"{prefix}:syslog:messages")
        self.daemonlog = SysLogger(sim, self.fs, "/var/log/daemon",
                                   zone="log",
                                   flush_interval=p.bdflush_interval,
                                   owner=f"{prefix}:syslog:daemon")
        self.wtmplog = SysLogger(sim, self.fs, "/var/log/wtmp",
                                 zone="log",
                                 flush_interval=p.bdflush_interval,
                                 owner=f"{prefix}:syslog:wtmp")
        self.instlog = SysLogger(sim, self.fs, "/var/log/iotrace",
                                 zone="highlog",
                                 flush_interval=p.bdflush_interval,
                                 owner=f"{prefix}:syslog:iotrace")
        self.update = UpdateDaemon(sim, self.fs, interval=p.update_interval,
                                   buffer_age=p.bdflush_age,
                                   owner=f"{prefix}:update")
        self.housekeeping: Optional[HousekeepingLoad] = None
        if housekeeping:
            self.housekeeping = HousekeepingLoad(
                sim, self.fs,
                [self.syslog, self.daemonlog, self.wtmplog],
                rng=streams.stream("housekeeping"),
                message_rate=housekeeping_message_rate,
                owner=prefix)
        self._bdflush_on = True
        sim.process(self._bdflush(), name=f"bdflush:{node_id}")

        self.apps_running = 0

    @property
    def disk(self) -> Disk:
        """The first physical disk (the whole device under ``single``)."""
        return self.disks[0]

    # -- instrumentation plumbing ------------------------------------------
    def _instrumentation_sink(self, nrecords: int) -> None:
        # The user-space trace reader persists drained records; those file
        # writes are themselves visible in the trace (as in the paper,
        # where "system and instrumentation logging" dominate baseline
        # writes).
        self.instlog.log(nrecords * TRACE_RECORD_BYTES)

    @property
    def trace_buffer(self):
        """User-space trace records collected so far."""
        return self.transport.user_buffer

    def trace_array(self) -> np.ndarray:
        self.transport.drain_now()
        return self.transport.user_buffer.to_array()

    def set_trace_level(self, level: TraceLevel) -> None:
        from repro.driver import HDIO_SET_TRACE
        self.driver.ioctl(HDIO_SET_TRACE, level)

    # -- file API -------------------------------------------------------------
    def effective_readahead_kb(self) -> int:
        """Read-ahead ceiling: scales up under multiprogramming.

        The paper attributes the 16-32 KB requests of the combined run to
        "an increased I/O buffer size" when several applications load the
        system; we model that as a doubling of the window ceiling once
        more than one application is resident.
        """
        scale = 2 if self.apps_running > 1 else 1
        return self.params.max_readahead_kb * scale

    def create(self, path: str, zone: str = "data"):
        """Generator: create a file; returns an open FileHandle."""
        inode = yield from self.fs.create(path, zone=zone)
        return self._handle(inode)

    def open(self, path: str) -> FileHandle:
        """Open an existing file (namespace lookup only; no disk I/O)."""
        return self._handle(self.fs.lookup(path))

    def _handle(self, inode: Inode) -> FileHandle:
        ra = ReadAheadState(block_kb=self.params.block_kb,
                            max_window_provider=self.effective_readahead_kb)
        return FileHandle(self.fs, inode, readahead=ra)

    # -- process management ----------------------------------------------
    def spawn(self, generator: Generator, name: str = "app") -> Process:
        """Run an application generator, tracking the multiprogramming level."""
        self.apps_running += 1

        def wrapper():
            try:
                result = yield from generator
            finally:
                self.apps_running -= 1
            return result

        return self.sim.process(wrapper(), name=name)

    # -- checkpoint state surface ---------------------------------------
    def snapshot_state(self) -> dict:
        """Every stateful component of this node, as one plain tree."""
        tree = {
            "streams": self.streams.snapshot_state(),
            "disks": [d.snapshot_state() for d in self.disks],
            "volume": self.volume.snapshot_state(),
            "driver": self.driver.snapshot_state(),
            "transport": self.transport.snapshot_state(),
            "cache": self.cache.snapshot_state(),
            "fs": self.fs.snapshot_state(),
            "vm": self.vm.snapshot_state(),
            "cpu": self.cpu.snapshot_state(),
            "loggers": {name: getattr(self, name).snapshot_state()
                        for name in ("syslog", "daemonlog", "wtmplog",
                                     "instlog")},
            "update": self.update.snapshot_state(),
            "housekeeping": (None if self.housekeeping is None
                             else self.housekeeping.snapshot_state()),
        }
        return tree

    def restore_state(self, state: dict) -> None:
        self.streams.restore_state(state["streams"])
        for disk, sub in zip(self.disks, state["disks"]):
            disk.restore_state(sub)
        self.volume.restore_state(state["volume"])
        self.driver.restore_state(state["driver"])
        self.transport.restore_state(state["transport"])
        self.cache.restore_state(state["cache"])
        self.fs.restore_state(state["fs"])
        self.vm.restore_state(state["vm"])
        self.cpu.restore_state(state["cpu"])
        for name, sub in state["loggers"].items():
            getattr(self, name).restore_state(sub)
        self.update.restore_state(state["update"])
        if state["housekeeping"] is not None:
            self.housekeeping.restore_state(state["housekeeping"])

    def shutdown_daemons(self) -> None:
        """Stop periodic daemons so the simulation can drain."""
        self.syslog.stop()
        self.daemonlog.stop()
        self.wtmplog.stop()
        self.instlog.stop()
        self.update.stop()
        if self.housekeeping is not None:
            self.housekeeping.stop()
        self.transport.stop()
        self.vm.stop_reclaimer()
        self._bdflush_on = False

    # -- daemons ---------------------------------------------------------------
    def _bdflush(self):
        sim = self.sim
        cache = self.cache
        interval = self.params.bdflush_interval
        age = self.params.bdflush_age
        owner = f"node{self.node_id}:bdflush"
        while self._bdflush_on:
            yield sim.tick(owner, lambda: interval)
            # ``has_aged_dirty`` is the quiescent-tick fast path: most
            # ticks have nothing old enough, and skipping the generator
            # avoids a full buffer scan per tick (it was the hottest
            # non-request path in profiles).  When it fires, flush_aged
            # does its own (identical) selection.
            if cache.has_aged_dirty(age):
                yield from cache.flush_aged(age)
