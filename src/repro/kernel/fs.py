"""A minimal ext2-like filesystem over the buffer cache.

What matters for the study is *where file bytes land on the disk* — spatial
locality in the traces is a direct image of allocation policy.  The
filesystem therefore implements real block accounting: zoned first-fit
allocation, an inode table and block bitmap living in the metadata zone
(whose write-back produces the low-sector metadata writes of the baseline),
direct + indirect block mapping, and hierarchical directories whose entry
blocks are dirtied on mutation.

File *contents* are not stored — the simulation tracks geometry and timing,
not bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.kernel.buffercache import BufferCache
from repro.kernel.params import DiskLayout

#: inodes per metadata block (128-byte on-disk inodes, 1 KB blocks)
INODES_PER_BLOCK = 8
#: direct block pointers in an inode before indirection starts
DIRECT_BLOCKS = 12
#: block pointers per 1 KB indirect block (4-byte pointers)
POINTERS_PER_INDIRECT = 256
#: directory entries per block
DENTRIES_PER_BLOCK = 32


class FsError(Exception):
    """Filesystem-level failure (missing path, no space, ...)."""


@dataclass
class Inode:
    """On-disk file metadata plus its block map."""

    ino: int
    zone: str
    is_dir: bool = False
    size_bytes: int = 0
    blocks: List[int] = field(default_factory=list)
    indirect_blocks: List[int] = field(default_factory=list)

    @property
    def nblocks(self) -> int:
        return len(self.blocks)


@dataclass
class _Dir:
    inode: Inode
    entries: Dict[str, "int"] = field(default_factory=dict)


class _ZoneAllocator:
    """First-fit block allocator inside one disk zone."""

    def __init__(self, start_block: int, nblocks: int):
        self.start = start_block
        self.end = start_block + nblocks
        self._free: List[int] = []      # returned blocks, reused first
        self._next = start_block

    @property
    def blocks_free(self) -> int:
        return len(self._free) + (self.end - self._next)

    def alloc(self) -> int:
        if self._free:
            return self._free.pop()
        if self._next >= self.end:
            raise FsError("zone full")
        block = self._next
        self._next += 1
        return block

    def free(self, block: int) -> None:
        if not (self.start <= block < self.end):
            raise FsError(f"block {block} not in zone")
        self._free.append(block)


class FileSystem:
    """Zoned mini-ext2 with real metadata I/O through the buffer cache."""

    def __init__(self, cache: BufferCache, layout: Optional[DiskLayout] = None,
                 block_kb: int = 1, max_inodes: int = 4096,
                 atime_updates: bool = False):
        self.cache = cache
        self.layout = layout or DiskLayout()
        self.block_kb = block_kb
        #: classic Unix semantics dirty the inode on every read (access
        #: time); off by default — the studied system's effect is already
        #: captured in the housekeeping calibration
        self.atime_updates = atime_updates
        self.sectors_per_block = block_kb * 1024 // 512
        self.max_inodes = max_inodes

        spb = self.sectors_per_block
        meta_start, meta_sectors = self.layout.zone("metadata")
        self._meta_first_block = meta_start // spb
        meta_blocks = meta_sectors // spb
        # metadata layout: [superblock][block bitmap][inode table]
        self.superblock_block = self._meta_first_block
        self._bitmap_blocks = 64
        self._inode_table_first = self._meta_first_block + 1 + self._bitmap_blocks
        inode_table_blocks = -(-max_inodes // INODES_PER_BLOCK)
        if 1 + self._bitmap_blocks + inode_table_blocks > meta_blocks:
            raise FsError("metadata zone too small for inode table")

        self._zones: Dict[str, _ZoneAllocator] = {}
        for name in ("log", "binary", "data", "highlog"):
            start, nsectors = self.layout.zone(name)
            self._zones[name] = _ZoneAllocator(start // spb, nsectors // spb)

        self._inodes: Dict[int, Inode] = {}
        self._next_ino = 2  # 1 reserved, 2 = root, like ext2
        self._dirs: Dict[int, _Dir] = {}
        root = self._new_inode(zone="data", is_dir=True)
        self.root_ino = root.ino
        self._dirs[root.ino] = _Dir(root)

    # -- inode / metadata helpers ------------------------------------------
    def _new_inode(self, zone: str, is_dir: bool = False) -> Inode:
        if len(self._inodes) >= self.max_inodes:
            raise FsError("out of inodes")
        if zone not in self._zones:
            raise FsError(f"unknown zone {zone!r}")
        inode = Inode(ino=self._next_ino, zone=zone, is_dir=is_dir)
        self._next_ino += 1
        self._inodes[inode.ino] = inode
        return inode

    def inode_table_block(self, ino: int) -> int:
        """Metadata block holding ``ino``'s on-disk inode."""
        return self._inode_table_first + (ino - 1) // INODES_PER_BLOCK

    def _dirty_inode(self, inode: Inode):
        yield from self.cache.write_block(self.inode_table_block(inode.ino))

    def note_dirty_inode(self, inode: Inode) -> bool:
        """Dirty the inode's table block if resident; ``False`` on a miss.

        Plain-call fast path of :meth:`_dirty_inode` (see
        :meth:`BufferCache.note_write`); on ``False`` the caller drives
        the generator instead.
        """
        return self.cache.note_write(self.inode_table_block(inode.ino))

    def _dirty_bitmap(self, block: int):
        bitmap_block = (self._meta_first_block + 1
                        + (block // (self.block_kb * 8192)) % self._bitmap_blocks)
        yield from self.cache.write_block(bitmap_block)

    # -- path handling --------------------------------------------------------
    @staticmethod
    def _split(path: str) -> List[str]:
        parts = [p for p in path.split("/") if p]
        if not parts:
            raise FsError("empty path")
        return parts

    def _walk_dir(self, parts: List[str]) -> _Dir:
        current = self._dirs[self.root_ino]
        for name in parts:
            ino = current.entries.get(name)
            if ino is None or ino not in self._dirs:
                raise FsError(f"no such directory: {name!r}")
            current = self._dirs[ino]
        return current

    def lookup(self, path: str) -> Inode:
        parts = self._split(path)
        parent = self._walk_dir(parts[:-1])
        ino = parent.entries.get(parts[-1])
        if ino is None:
            raise FsError(f"no such file: {path!r}")
        return self._inodes[ino]

    def exists(self, path: str) -> bool:
        try:
            self.lookup(path)
            return True
        except FsError:
            return False

    # -- directory operations ---------------------------------------------
    def mkdir(self, path: str):
        """Create a directory; returns its Inode."""
        parts = self._split(path)
        parent = self._walk_dir(parts[:-1])
        if parts[-1] in parent.entries:
            raise FsError(f"already exists: {path!r}")
        inode = self._new_inode(zone="data", is_dir=True)
        self._dirs[inode.ino] = _Dir(inode)
        yield from self._add_dentry(parent, parts[-1], inode.ino)
        yield from self._dirty_inode(inode)
        return inode

    def makedirs(self, path: str):
        """Create every missing directory along ``path``."""
        parts = self._split(path)
        current = self._dirs[self.root_ino]
        for name in parts:
            ino = current.entries.get(name)
            if ino is None:
                inode = self._new_inode(zone="data", is_dir=True)
                self._dirs[inode.ino] = _Dir(inode)
                yield from self._add_dentry(current, name, inode.ino)
                yield from self._dirty_inode(inode)
                current = self._dirs[inode.ino]
            elif ino in self._dirs:
                current = self._dirs[ino]
            else:
                raise FsError(f"not a directory: {name!r}")

    def listdir(self, path: str) -> List[str]:
        if path in ("/", ""):
            return sorted(self._dirs[self.root_ino].entries)
        inode = self.lookup(path)
        if not inode.is_dir:
            raise FsError(f"not a directory: {path!r}")
        return sorted(self._dirs[inode.ino].entries)

    def _add_dentry(self, parent: _Dir, name: str, ino: int):
        parent.entries[name] = ino
        # Growing past a block boundary allocates a new dentry block.
        needed_blocks = -(-len(parent.entries) // DENTRIES_PER_BLOCK)
        while parent.inode.nblocks < needed_blocks:
            yield from self._alloc_block(parent.inode)
        if parent.inode.blocks:
            dentry_block = parent.inode.blocks[
                (len(parent.entries) - 1) // DENTRIES_PER_BLOCK]
            yield from self.cache.write_block(dentry_block)
        yield from self._dirty_inode(parent.inode)

    # -- file operations --------------------------------------------------
    def create(self, path: str, zone: str = "data"):
        """Create an empty file; returns its Inode."""
        parts = self._split(path)
        parent = self._walk_dir(parts[:-1])
        if parts[-1] in parent.entries:
            raise FsError(f"already exists: {path!r}")
        inode = self._new_inode(zone=zone)
        yield from self._add_dentry(parent, parts[-1], inode.ino)
        yield from self._dirty_inode(inode)
        return inode

    def unlink(self, path: str):
        parts = self._split(path)
        parent = self._walk_dir(parts[:-1])
        ino = parent.entries.get(parts[-1])
        if ino is None:
            raise FsError(f"no such file: {path!r}")
        inode = self._inodes[ino]
        if inode.is_dir:
            raise FsError("unlink of a directory")
        zone = self._zones[inode.zone]
        for block in inode.blocks + inode.indirect_blocks:
            zone.free(block)
            yield from self._dirty_bitmap(block)
        del parent.entries[parts[-1]]
        del self._inodes[ino]
        yield from self._dirty_inode(inode)

    def _alloc_block(self, inode: Inode):
        zone = self._zones[inode.zone]
        block = zone.alloc()
        inode.blocks.append(block)
        # Every POINTERS_PER_INDIRECT data blocks past the direct region
        # consume one indirect block.
        indexed = len(inode.blocks) - DIRECT_BLOCKS
        if indexed > 0 and (indexed - 1) % POINTERS_PER_INDIRECT == 0:
            ind = zone.alloc()
            inode.indirect_blocks.append(ind)
            yield from self.cache.write_block(ind)
        yield from self._dirty_bitmap(block)
        return block

    def truncate_extend(self, inode: Inode, new_size: int):
        """Grow a file to ``new_size`` bytes, allocating blocks."""
        if new_size < inode.size_bytes:
            raise FsError("shrinking not supported")
        block_bytes = self.block_kb * 1024
        needed = -(-new_size // block_bytes)
        while inode.nblocks < needed:
            yield from self._alloc_block(inode)
        inode.size_bytes = new_size
        if not self.note_dirty_inode(inode):
            yield from self._dirty_inode(inode)

    def note_extend(self, inode: Inode, new_size: int) -> bool:
        """No-allocation fast path of :meth:`truncate_extend`.

        Succeeds only when the file already has the blocks and the inode
        table block is resident; ``False`` leaves everything untouched
        (including validation — the generator raises on a shrink).
        """
        if new_size < inode.size_bytes:
            return False
        block_bytes = self.block_kb * 1024
        if inode.nblocks < -(-new_size // block_bytes):
            return False
        if not self.cache.note_write(self.inode_table_block(inode.ino)):
            return False
        inode.size_bytes = new_size
        return True

    # -- block mapping ------------------------------------------------------
    def _indirect_block_for(self, inode: Inode, index: int) -> Optional[int]:
        if index < DIRECT_BLOCKS or not inode.indirect_blocks:
            return None
        which = (index - DIRECT_BLOCKS) // POINTERS_PER_INDIRECT
        return inode.indirect_blocks[min(which, len(inode.indirect_blocks) - 1)]

    def map_blocks(self, inode: Inode, first_index: int, nblocks: int):
        """Resolve file-relative block indices to absolute runs.

        Reads any needed indirect blocks through the cache (a real,
        traceable access), then returns ``[(abs_block, count), ...]``
        covering the requested range in order.
        """
        if first_index < 0 or nblocks < 1:
            raise FsError("bad block range")
        if first_index + nblocks > inode.nblocks:
            raise FsError(
                f"range [{first_index}, {first_index + nblocks}) beyond "
                f"file of {inode.nblocks} blocks")
        seen_indirect = set()
        for idx in range(first_index, first_index + nblocks):
            ind = self._indirect_block_for(inode, idx)
            if ind is not None and ind not in seen_indirect:
                seen_indirect.add(ind)
                yield from self.cache.read_block(ind)
        runs: List[Tuple[int, int]] = []
        for idx in range(first_index, first_index + nblocks):
            block = inode.blocks[idx]
            if runs and runs[-1][0] + runs[-1][1] == block:
                runs[-1] = (runs[-1][0], runs[-1][1] + 1)
            else:
                runs.append((block, 1))
        return runs

    def note_map_blocks(self, inode: Inode, first_index: int,
                        nblocks: int) -> Optional[List[Tuple[int, int]]]:
        """Resolve a range whose indirect blocks are all cache-resident.

        The plain-call fast path of :meth:`map_blocks`: returns the same
        runs — with the same cache-hit accounting and LRU touches, in
        the same order — or ``None``, with *no* effect at all, when any
        needed indirect block would miss (or the range is invalid); the
        caller then drives the generator.
        """
        if (first_index < 0 or nblocks < 1
                or first_index + nblocks > inode.nblocks):
            return None
        cache = self.cache
        indirects = inode.indirect_blocks
        needed: List[int] = []
        if indirects and first_index + nblocks > DIRECT_BLOCKS:
            # _indirect_block_for, inlined across the range (consecutive
            # data blocks nearly always share one indirect block)
            last_which = len(indirects) - 1
            for idx in range(max(first_index, DIRECT_BLOCKS),
                             first_index + nblocks):
                which = (idx - DIRECT_BLOCKS) // POINTERS_PER_INDIRECT
                ind = indirects[which if which < last_which else last_which]
                if ind not in needed:
                    if not cache.contains(ind):
                        return None
                    needed.append(ind)
        for ind in needed:
            cache.stats.hits += 1
            cache._touch(ind)
        runs: List[Tuple[int, int]] = []
        for idx in range(first_index, first_index + nblocks):
            block = inode.blocks[idx]
            if runs and runs[-1][0] + runs[-1][1] == block:
                runs[-1] = (runs[-1][0], runs[-1][1] + 1)
            else:
                runs.append((block, 1))
        return runs

    # -- checkpoint state surface ---------------------------------------
    def snapshot_state(self) -> dict:
        """Namespace, inode table, and allocator positions."""
        return {
            "zones": {name: {"free": list(z._free), "next": z._next}
                      for name, z in self._zones.items()},
            "inodes": {str(i.ino): {"zone": i.zone, "is_dir": i.is_dir,
                                    "size_bytes": i.size_bytes,
                                    "blocks": list(i.blocks),
                                    "indirect": list(i.indirect_blocks)}
                       for i in self._inodes.values()},
            "dirs": {str(ino): sorted(d.entries.items())
                     for ino, d in self._dirs.items()},
            "next_ino": self._next_ino,
            "root_ino": self.root_ino,
        }

    def restore_state(self, state: dict) -> None:
        for name, z in state["zones"].items():
            zone = self._zones[name]
            zone._free = [int(b) for b in z["free"]]
            zone._next = int(z["next"])
        self._inodes = {}
        for ino, rec in state["inodes"].items():
            inode = Inode(ino=int(ino), zone=rec["zone"],
                          is_dir=bool(rec["is_dir"]),
                          size_bytes=int(rec["size_bytes"]),
                          blocks=[int(b) for b in rec["blocks"]],
                          indirect_blocks=[int(b)
                                           for b in rec["indirect"]])
            self._inodes[inode.ino] = inode
        # directory records alias the freshly-built inode objects
        self._dirs = {int(ino): _Dir(self._inodes[int(ino)],
                                     {name: int(e)
                                      for name, e in entries})
                      for ino, entries in state["dirs"].items()}
        self._next_ino = int(state["next_ino"])
        self.root_ino = int(state["root_ino"])

    # -- consistency checking ---------------------------------------------
    def fsck(self) -> List[str]:
        """Consistency check; returns a list of problems (empty = clean).

        Verifies the invariants an fsck would: every block owned by at
        most one inode, blocks inside their inode's zone, sizes consistent
        with block counts, directory entries pointing at live inodes, and
        indirect-block accounting matching the file length.
        """
        problems: List[str] = []
        owner: Dict[int, int] = {}
        for inode in self._inodes.values():
            zone = self._zones.get(inode.zone)
            if zone is None and not inode.is_dir:
                problems.append(f"inode {inode.ino}: unknown zone "
                                f"{inode.zone!r}")
                continue
            for block in inode.blocks + inode.indirect_blocks:
                if block in owner:
                    problems.append(
                        f"block {block} owned by inodes {owner[block]} "
                        f"and {inode.ino}")
                owner[block] = inode.ino
                z = self._zones["data"] if inode.is_dir else zone
                if not (z.start <= block < z.end):
                    problems.append(
                        f"inode {inode.ino}: block {block} outside its "
                        f"{inode.zone!r} zone [{z.start}, {z.end})")
            needed = -(-inode.size_bytes // (self.block_kb * 1024))
            if inode.nblocks < needed:
                problems.append(
                    f"inode {inode.ino}: size {inode.size_bytes} needs "
                    f"{needed} blocks, has {inode.nblocks}")
            indexed = max(0, inode.nblocks - DIRECT_BLOCKS)
            expected_indirect = -(-indexed // POINTERS_PER_INDIRECT) \
                if indexed else 0
            if len(inode.indirect_blocks) != expected_indirect:
                problems.append(
                    f"inode {inode.ino}: {len(inode.indirect_blocks)} "
                    f"indirect blocks, expected {expected_indirect}")
        for directory in self._dirs.values():
            for name, ino in directory.entries.items():
                if ino not in self._inodes:
                    problems.append(
                        f"dentry {name!r} in dir {directory.inode.ino} "
                        f"points at missing inode {ino}")
        return problems

    # -- whole-fs operations -------------------------------------------------
    def sync_metadata(self):
        """Dirty + flush the superblock (the update daemon's heartbeat)."""
        yield from self.cache.write_block(self.superblock_block)

    def iter_inodes(self) -> Iterator[Inode]:
        return iter(self._inodes.values())

    def zone_blocks_free(self, zone: str) -> int:
        return self._zones[zone].blocks_free
