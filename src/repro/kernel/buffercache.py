"""The buffer cache: 1 KB blocks, LRU, delayed write-back.

This is the mechanism behind the paper's dominant request class: "small I/O
requests generating I/O transfers of the smallest possible physical request
size" — 1 KB, the filesystem block size.  Writes are *delayed*: they dirty a
buffer and return; a bdflush-style daemon (driven from
:class:`~repro.kernel.kernel.NodeKernel`) writes aged dirty buffers back,
merging physically contiguous ones into small multiples of 1 KB, exactly the
"few instances of small multiples of 1KB" the baseline shows.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.driver import InstrumentedIDEDriver


@dataclass
class _Buffer:
    blockno: int
    dirty: bool = False
    dirty_since: float = 0.0


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    writebacks: int = 0
    writeback_requests: int = 0
    evictions: int = 0

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class BufferCache:
    """LRU cache of fixed-size blocks over an instrumented driver.

    Block numbers are absolute (block ``b`` covers sectors
    ``[b * spb, (b+1) * spb)``).  All methods that may touch the disk are
    generators to be driven from simulation processes.
    """

    def __init__(self, sim, driver: InstrumentedIDEDriver,
                 capacity_blocks: int, sectors_per_block: int = 2,
                 cluster_blocks: int = 4):
        if capacity_blocks < 1:
            raise ValueError("capacity must be >= 1 block")
        self.sim = sim
        self.driver = driver
        self.capacity = capacity_blocks
        self.spb = sectors_per_block
        self.cluster_blocks = max(1, cluster_blocks)
        self.stats = CacheStats()
        self._buffers: "OrderedDict[int, _Buffer]" = OrderedDict()
        # Dirty-set bookkeeping so the flush daemons never walk clean
        # buffers: the dirty residents keyed by block number (membership
        # mirrors ``buf.dirty`` exactly), plus a *floor* on the dirty
        # timestamps.  ``_earliest_dirty`` may drift below the true
        # minimum after flushes (costing at most one harmless scan), but
        # is never above it — so ``has_aged_dirty() == False`` guarantees
        # an unconditional scan would have selected nothing.
        self._dirty: dict = {}
        self._earliest_dirty = float("inf")

    # -- inspection ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self._buffers)

    def contains(self, blockno: int) -> bool:
        return blockno in self._buffers

    def is_dirty(self, blockno: int) -> bool:
        buf = self._buffers.get(blockno)
        return bool(buf and buf.dirty)

    @property
    def dirty_count(self) -> int:
        return len(self._dirty)

    # -- reads ---------------------------------------------------------------
    def read_block(self, blockno: int):
        """Ensure ``blockno`` is cached, reading 1 block on a miss."""
        yield from self.read_range(blockno, 1)

    def read_range(self, start: int, nblocks: int):
        """Ensure ``[start, start+nblocks)`` cached.

        Missing *contiguous runs* are fetched with one driver request each,
        which is how read-ahead produces the large multi-KB requests the
        paper attributes to streaming reads.
        """
        if nblocks < 1:
            raise ValueError("nblocks must be >= 1")
        run_start: Optional[int] = None
        for blockno in range(start, start + nblocks):
            if blockno in self._buffers:
                self.stats.hits += 1
                self._touch(blockno)
                if run_start is not None:
                    yield from self._fetch(run_start, blockno - run_start)
                    run_start = None
            else:
                self.stats.misses += 1
                if run_start is None:
                    run_start = blockno
        if run_start is not None:
            yield from self._fetch(run_start, start + nblocks - run_start)

    # -- writes --------------------------------------------------------------
    def note_write(self, blockno: int) -> bool:
        """Dirty ``blockno`` if it is resident; ``False`` on a miss.

        The no-I/O fast path of the write syscalls: a plain call, not a
        generator, so callers only pay generator-frame overhead when a
        miss actually needs room made.  On ``False`` nothing happened —
        the caller must drive :meth:`write_block`.
        """
        buf = self._buffers.get(blockno)
        if buf is None:
            return False
        self._buffers.move_to_end(blockno)
        if not buf.dirty:
            buf.dirty = True
            now = self.sim.now
            buf.dirty_since = now
            self._dirty[blockno] = buf
            if now < self._earliest_dirty:
                self._earliest_dirty = now
        return True

    def note_write_range(self, start: int, nblocks: int) -> bool:
        """Dirty a fully-resident range; ``False`` (no effect) otherwise.

        Residency is checked for the whole range before any buffer is
        touched, so a ``False`` return leaves LRU order and dirty state
        exactly as they were.
        """
        buffers = self._buffers
        for blockno in range(start, start + nblocks):
            if blockno not in buffers:
                return False
        for blockno in range(start, start + nblocks):
            self.note_write(blockno)
        return True

    def write_block(self, blockno: int):
        """Delayed write: dirty the buffer; disk I/O happens at flush time."""
        if self.note_write(blockno):
            return
        yield from self._make_room(1)
        buf = _Buffer(blockno)
        self._buffers[blockno] = buf
        buf.dirty = True
        now = self.sim.now
        buf.dirty_since = now
        self._dirty[blockno] = buf
        if now < self._earliest_dirty:
            self._earliest_dirty = now

    def write_range(self, start: int, nblocks: int):
        if self.note_write_range(start, nblocks):
            return
        for blockno in range(start, start + nblocks):
            yield from self.write_block(blockno)

    # -- flushing ------------------------------------------------------------
    def sync(self):
        """Write back every dirty buffer."""
        yield from self._flush(list(self._dirty))

    def has_aged_dirty(self, age_limit: float) -> bool:
        """Could :meth:`flush_aged` select anything right now?

        Cheap enough for every daemon tick: when this is ``False`` a
        full scan is guaranteed to select nothing, so callers skip the
        generator entirely (the bdflush fast path).
        """
        return (bool(self._dirty)
                and self._earliest_dirty <= self.sim.now - age_limit)

    def flush_aged(self, age_limit: float):
        """Write back dirty buffers older than ``age_limit`` seconds.

        Scans the dirty set only — on a quiescent node that is a handful
        of log blocks, not the whole resident cache (``_flush`` sorts,
        so selection order does not matter).
        """
        cutoff = self.sim.now - age_limit
        if not self._dirty or self._earliest_dirty > cutoff:
            return
        aged: List[int] = []
        floor = float("inf")
        for b in self._dirty.values():
            if b.dirty_since < floor:
                floor = b.dirty_since
            if b.dirty_since <= cutoff:
                aged.append(b.blockno)
        # exact at scan time (includes buffers another in-flight flush
        # has selected but not yet written); only drifts low afterwards
        self._earliest_dirty = floor
        if aged:
            yield from self._flush(aged)

    def drop_clean(self) -> int:
        """Drop every clean buffer (cold-start; like /proc drop_caches).

        Returns the number of buffers dropped.  Dirty buffers stay; call
        :meth:`sync` first for a fully cold cache.
        """
        victims = [b for b, buf in self._buffers.items() if not buf.dirty]
        for blockno in victims:
            del self._buffers[blockno]
        return len(victims)

    def invalidate(self, blockno: int) -> None:
        """Drop a (clean) buffer; dirty buffers must be synced first."""
        buf = self._buffers.get(blockno)
        if buf is None:
            return
        if buf.dirty:
            raise ValueError(f"invalidate of dirty block {blockno}")
        del self._buffers[blockno]

    # -- checkpoint state surface ---------------------------------------
    def snapshot_state(self) -> dict:
        """Resident buffers (in LRU order), stats, and dirty bookkeeping."""
        s = self.stats
        return {
            "buffers": [(b.blockno, b.dirty, b.dirty_since)
                        for b in self._buffers.values()],
            "earliest_dirty": self._earliest_dirty,
            "stats": {"hits": s.hits, "misses": s.misses,
                      "writebacks": s.writebacks,
                      "writeback_requests": s.writeback_requests,
                      "evictions": s.evictions},
        }

    def restore_state(self, state: dict) -> None:
        self._buffers = OrderedDict()
        self._dirty = {}
        for blockno, dirty, dirty_since in state["buffers"]:
            buf = _Buffer(int(blockno), bool(dirty), float(dirty_since))
            self._buffers[buf.blockno] = buf
            if buf.dirty:
                # the dirty index must alias the resident buffer objects,
                # exactly as live bookkeeping does
                self._dirty[buf.blockno] = buf
        self._earliest_dirty = float(state["earliest_dirty"])
        st = state["stats"]
        self.stats = CacheStats(**{k: int(v) for k, v in st.items()})

    # -- internals ------------------------------------------------------------
    def _touch(self, blockno: int) -> None:
        self._buffers.move_to_end(blockno)

    def _fetch(self, start: int, nblocks: int):
        yield from self._make_room(nblocks)
        yield self.driver.read_sectors(start * self.spb, nblocks * self.spb,
                                       origin="bcache")
        for blockno in range(start, start + nblocks):
            # A concurrent fetch may have inserted it meanwhile; keep LRU.
            if blockno in self._buffers:
                self._touch(blockno)
            else:
                self._buffers[blockno] = _Buffer(blockno)

    def _make_room(self, incoming: int):
        while len(self._buffers) + incoming > self.capacity:
            victim = self._pick_victim()
            if victim is None:
                break
            buf = self._buffers[victim]
            if buf.dirty:
                yield from self._flush([victim])
            evicted = self._buffers.pop(victim, None)
            if evicted is not None:
                if evicted.dirty:
                    # re-dirtied while its flush was in flight; the write
                    # is lost with the buffer (pre-existing semantics)
                    self._dirty.pop(victim, None)
                    if not self._dirty:
                        self._earliest_dirty = float("inf")
                self.stats.evictions += 1

    def _pick_victim(self) -> Optional[int]:
        # Prefer a clean buffer, but only among the *oldest* quarter of
        # the LRU order — an unconditional clean-first policy would evict
        # freshly-fetched blocks (the only clean ones in a dirty cache)
        # ahead of stale dirty data.  Otherwise take the true LRU buffer
        # and pay the flush.
        if not self._buffers:
            return None
        window = max(4, len(self._buffers) // 4)
        oldest = None
        for i, (blockno, buf) in enumerate(self._buffers.items()):
            if i == 0:
                oldest = blockno
            if i >= window:
                break
            if not buf.dirty:
                return blockno
        return oldest

    def _flush(self, blocknos: Iterable[int]):
        buffers = self._buffers
        dirty = [b for b in blocknos
                 if b in buffers and buffers[b].dirty]
        if len(dirty) == 1:
            # the dominant bdflush case: one aged log block, no run
            # merging possible — skip the sort and the runs generator
            runs = ((dirty[0], 1),)
        else:
            runs = self._contiguous_runs(sorted(set(dirty)))
        for start, count in runs:
            yield self.driver.write_sectors(start * self.spb,
                                            count * self.spb,
                                            origin="bcache-wb")
            self.stats.writeback_requests += 1
            for blockno in range(start, start + count):
                buf = buffers.get(blockno)
                if buf is not None and buf.dirty:
                    buf.dirty = False
                    del self._dirty[blockno]
                    if not self._dirty:
                        self._earliest_dirty = float("inf")
                self.stats.writebacks += 1

    def _contiguous_runs(self, blocks: List[int]):
        """Split a sorted block list into runs of <= cluster_blocks."""
        i = 0
        while i < len(blocks):
            start = blocks[i]
            count = 1
            while (i + count < len(blocks)
                   and blocks[i + count] == start + count
                   and count < self.cluster_blocks):
                count += 1
            yield start, count
            i += count
