"""Node and disk-layout parameters, defaulted to the Beowulf prototype.

Each node of the 1995 prototype: Intel 486DX4-100, 16 MB RAM, 16 KB L1
cache, 500 MB IDE disk, Linux.  The disk layout places the filesystem
zones so that the sector bands observed in the paper's figures (system
logging at low *and* high sectors; programs, data, and swap in the low
third of the disk) come out of allocation policy, not hand-placed traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class DiskLayout:
    """Zone boundaries (in 512 B sectors) used by the filesystem allocator.

    The defaults target a ~1,024,128-sector (500 MB) disk:

    * metadata: superblock / bitmaps / inode table at the very front;
    * ``log`` zone near sector 45,000 — the paper's hottest sector band;
    * ``binary`` zone for program images;
    * ``data`` zone for user data files (just under sector 100,000 at its
      front, the paper's second-hottest band);
    * ``swap`` region above those;
    * ``highlog`` zone at the top of the disk, where instrumentation
      output lands (the paper's baseline shows activity at high sector
      numbers as well as low).
    """

    metadata_start: int = 0
    metadata_sectors: int = 4096
    log_start: int = 44_000
    log_sectors: int = 8192
    binary_start: int = 16_000
    binary_sectors: int = 24_000
    data_start: int = 96_000
    data_sectors: int = 120_000
    swap_start: int = 240_000
    swap_sectors: int = 131_072        # 64 MB of swap
    highlog_start: int = 1_000_000
    highlog_sectors: int = 16_384

    def zone(self, name: str) -> tuple[int, int]:
        """(start_sector, nsectors) of a named zone."""
        try:
            return (getattr(self, f"{name}_start"),
                    getattr(self, f"{name}_sectors"))
        except AttributeError:
            raise KeyError(f"unknown disk zone {name!r}") from None


@dataclass(frozen=True)
class NodeParams:
    """Hardware and kernel tunables of one cluster node."""

    #: megabytes of RAM (Beowulf prototype: 16)
    ram_mb: int = 16
    #: megabytes resident for kernel text/data/PVM daemons; the rest is
    #: pageable user memory + buffer cache
    kernel_resident_mb: int = 5
    #: filesystem / buffer-cache block size in KB (Linux ext2 of the era: 1)
    block_kb: int = 1
    #: VM page size in KB
    page_kb: int = 4
    #: L1 cache size in KB; bounds the read-ahead / I/O buffer window
    l1_cache_kb: int = 16
    #: disk capacity in MB
    disk_mb: int = 500
    #: relative CPU speed (1.0 = one 486DX4-100); app compute phases are
    #: expressed in seconds on this reference CPU
    cpu_speed: float = 1.0
    #: CPU scheduler timeslice in seconds
    timeslice: float = 0.05
    #: buffer cache capacity in KB
    buffer_cache_kb: int = 2048
    #: bdflush wakeup interval (seconds)
    bdflush_interval: float = 5.0
    #: dirty-buffer age before bdflush writes it back (seconds)
    bdflush_age: float = 5.0
    #: max contiguous dirty blocks merged into one write-back request;
    #: the era's bdflush wrote buffers near-individually, so small — this
    #: is what produces the "small multiples of 1 KB" the baseline shows
    writeback_cluster_blocks: int = 2
    #: read-ahead ceiling in KB (16 = L1 cache; the combined experiment
    #: observes 32 under multiprogramming buffer scaling)
    max_readahead_kb: int = 16
    #: update daemon (superblock/inode sync) period in seconds
    update_interval: float = 30.0
    #: dirty the inode on every read (classic Unix atime semantics);
    #: off by default — see FileSystem.atime_updates
    atime_updates: bool = False
    disk_layout: DiskLayout = field(default_factory=DiskLayout)

    def __post_init__(self):
        if self.page_kb % self.block_kb:
            raise ValueError("page size must be a multiple of block size")
        if self.max_readahead_kb < self.block_kb:
            raise ValueError("read-ahead window smaller than a block")
        if self.kernel_resident_mb >= self.ram_mb:
            raise ValueError("kernel larger than RAM")

    @property
    def user_frames(self) -> int:
        """Page frames available to user processes."""
        user_kb = (self.ram_mb - self.kernel_resident_mb) * 1024 \
            - self.buffer_cache_kb
        return user_kb // self.page_kb

    @property
    def blocks_per_page(self) -> int:
        return self.page_kb // self.block_kb

    @property
    def sectors_per_block(self) -> int:
        return self.block_kb * 1024 // 512
