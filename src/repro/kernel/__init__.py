"""Kernel substrate: the Linux-like machinery between applications and the
instrumented driver.

The paper attributes everything it observes at the driver to three kernel
mechanisms, all implemented here from scratch:

* 1 KB requests — the filesystem block size, moved by the **buffer cache**
  and flushed by a bdflush-style write-back daemon (:mod:`.buffercache`);
* 4 KB requests — **demand paging** against a swap region
  (:mod:`.vm`);
* ~16 KB (to 32 KB under multiprogramming) requests — sequential
  **read-ahead** whose window is bounded by the I/O buffer / cache size
  (:mod:`.readahead`).

On top sit a minimal ext2-like filesystem (:mod:`.fs`), a file syscall
layer (:mod:`.syscalls`), the kernel logger and update daemons
(:mod:`.klog`), a round-robin CPU (:mod:`.cpu`), and the
:class:`~repro.kernel.kernel.NodeKernel` facade that wires one node
together.
"""

from repro.kernel.params import DiskLayout, NodeParams
from repro.kernel.buffercache import BufferCache
from repro.kernel.fs import FileSystem, Inode
from repro.kernel.readahead import ReadAheadState
from repro.kernel.vm import AddressSpace, VirtualMemory
from repro.kernel.cpu import CPU
from repro.kernel.klog import SysLogger, UpdateDaemon
from repro.kernel.syscalls import FileHandle
from repro.kernel.kernel import NodeKernel

__all__ = [
    "AddressSpace",
    "BufferCache",
    "CPU",
    "DiskLayout",
    "FileHandle",
    "FileSystem",
    "Inode",
    "NodeKernel",
    "NodeParams",
    "ReadAheadState",
    "SysLogger",
    "UpdateDaemon",
    "VirtualMemory",
]
