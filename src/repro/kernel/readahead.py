"""Sequential read-ahead: the source of the large request class.

Per open file, the kernel watches the access pattern: sequential reads grow
the read-ahead window (doubling per sequential access) up to a ceiling set
by the node's I/O buffering — 16 KB, the L1 cache size, in the single-
application experiments, observed to scale to 32 KB under the combined
multiprogramming load.  A seek collapses the window back to one block.

The window is a *plan*; the buffer cache fetches only the blocks actually
missing, so cache hits and interfering system activity fragment the
requests — which is why the paper sees sizes "approaching" 16 KB rather
than pinned at it.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple


class ReadAheadState:
    """Sequential-access detector and window sizing for one open file."""

    def __init__(self, max_window_kb: int = 16, block_kb: int = 1,
                 max_window_provider: Optional[Callable[[], int]] = None):
        if max_window_kb < block_kb:
            raise ValueError("window ceiling below one block")
        self.block_kb = block_kb
        self._static_max_kb = max_window_kb
        self._max_provider = max_window_provider
        self._window_blocks = 1
        self._next_sequential: Optional[int] = None
        #: file block up to which data has already been fetched (exclusive)
        self._covered_end = 0
        self.sequential_runs = 0
        self.seeks = 0

    # -- checkpoint state surface ---------------------------------------
    def snapshot_state(self) -> dict:
        return {"window_blocks": self._window_blocks,
                "next_sequential": self._next_sequential,
                "covered_end": self._covered_end,
                "sequential_runs": self.sequential_runs,
                "seeks": self.seeks}

    def restore_state(self, state: dict) -> None:
        self._window_blocks = int(state["window_blocks"])
        ns = state["next_sequential"]
        self._next_sequential = None if ns is None else int(ns)
        self._covered_end = int(state["covered_end"])
        self.sequential_runs = int(state["sequential_runs"])
        self.seeks = int(state["seeks"])

    @property
    def max_window_blocks(self) -> int:
        max_kb = (self._max_provider() if self._max_provider is not None
                  else self._static_max_kb)
        return max(1, max_kb // self.block_kb)

    @property
    def window_blocks(self) -> int:
        return self._window_blocks

    def plan(self, first_block: int, nblocks: int,
             file_nblocks: int) -> Tuple[int, int]:
        """Decide the fetch span for a read of file blocks
        ``[first_block, first_block + nblocks)``.

        Returns ``(start, count)`` in file-relative blocks, clipped to the
        file end.  The span always covers the requested blocks; on a
        sequential stream it additionally extends a full window past the
        already-fetched region whenever the read nears its edge, so the
        *disk* requests (only the uncached tail of the span) grow toward
        the window ceiling.  A seek collapses the window and coverage.
        """
        if nblocks < 1:
            raise ValueError("nblocks must be >= 1")
        ceiling = self.max_window_blocks
        req_end = min(first_block + nblocks, file_nblocks)
        had_history = self._next_sequential is not None
        sequential = had_history and first_block == self._next_sequential
        self._next_sequential = first_block + nblocks
        if sequential:
            self.sequential_runs += 1
            self._window_blocks = min(self._window_blocks * 2, ceiling)
        else:
            if had_history:
                self.seeks += 1
            self._window_blocks = 1
            self._covered_end = first_block
        if req_end >= self._covered_end:
            # Ran past fetched data: fetch through the request, plus a
            # window of read-ahead when streaming.
            target_end = req_end
            if sequential:
                target_end = min(file_nblocks, req_end - 1 + self._window_blocks)
        elif sequential and req_end + self._window_blocks // 2 >= self._covered_end:
            # Nearing the edge of fetched data: extend ahead a full window.
            target_end = min(file_nblocks, self._covered_end + self._window_blocks)
        else:
            target_end = req_end
        self._covered_end = max(self._covered_end, target_end)
        return first_block, max(target_end, req_end) - first_block
