"""A time-sliced CPU shared by the applications on a node.

Applications express compute phases in seconds on a dedicated reference
CPU; when several applications run (the combined experiment) the FIFO
re-request per timeslice yields round-robin sharing, stretching each
application's phases — which is why the combined run takes ~700 s while
individual runs are shorter.
"""

from __future__ import annotations

from repro.sim import Resource, Simulator


class CPU:
    """Single execution unit with round-robin timeslicing."""

    def __init__(self, sim: Simulator, speed: float = 1.0,
                 timeslice: float = 0.05):
        if speed <= 0:
            raise ValueError("speed must be positive")
        if timeslice <= 0:
            raise ValueError("timeslice must be positive")
        self.sim = sim
        self.speed = speed
        self.timeslice = timeslice
        self._res = Resource(sim, capacity=1)
        self.busy_time = 0.0

    # -- checkpoint state surface ---------------------------------------
    def snapshot_state(self) -> dict:
        return {"busy_time": self.busy_time}

    def restore_state(self, state: dict) -> None:
        self.busy_time = float(state["busy_time"])

    @property
    def load(self) -> int:
        """Processes holding or waiting for the CPU right now."""
        return self._res.count + self._res.queue_length

    def execute(self, reference_seconds: float):
        """Burn ``reference_seconds`` of compute, shared fairly.

        A generator: acquires the CPU one timeslice at a time and re-queues
        between slices so equal-priority competitors interleave.
        """
        if reference_seconds < 0:
            raise ValueError("negative compute time")
        remaining = reference_seconds / self.speed
        while remaining > 0:
            with self._res.request() as req:
                yield req
                slice_len = min(self.timeslice, remaining)
                yield self.sim.timeout(slice_len)
                remaining -= slice_len
                self.busy_time += slice_len
