"""File syscall layer: open/read/write/seek over the FS + buffer cache.

Reads consult per-file read-ahead state so sequential streams fetch growing
multi-block spans; writes are delayed (dirty buffers) and update the inode,
so the disk sees them later from the write-back daemon.
"""

from __future__ import annotations

from typing import Optional

from repro.kernel.fs import FileSystem, FsError, Inode
from repro.kernel.readahead import ReadAheadState


class FileHandle:
    """An open file descriptor."""

    def __init__(self, fs: FileSystem, inode: Inode,
                 readahead: Optional[ReadAheadState] = None):
        self.fs = fs
        self.inode = inode
        self.readahead = readahead
        self.pos = 0
        self.closed = False

    # -- positioning --------------------------------------------------------
    def seek(self, pos: int) -> None:
        if pos < 0:
            raise ValueError("negative seek position")
        self.pos = pos

    @property
    def size(self) -> int:
        return self.inode.size_bytes

    # -- reading --------------------------------------------------------------
    def read(self, nbytes: int):
        """Read ``nbytes`` at the current position.

        Generator; returns the number of bytes actually read (clipped at
        EOF).  Misses go to disk via the buffer cache, in spans chosen by
        the read-ahead window.
        """
        self._check_open()
        if nbytes < 1:
            raise ValueError("nbytes must be >= 1")
        if self.pos >= self.inode.size_bytes:
            return 0
        nbytes = min(nbytes, self.inode.size_bytes - self.pos)
        block_bytes = self.fs.block_kb * 1024
        first = self.pos // block_bytes
        last = (self.pos + nbytes - 1) // block_bytes
        count = last - first + 1
        if self.readahead is not None:
            first, count = self.readahead.plan(first, count, self.inode.nblocks)
            count = max(count, last - first + 1)
        runs = yield from self.fs.map_blocks(self.inode, first, count)
        for abs_block, run_len in runs:
            yield from self.fs.cache.read_range(abs_block, run_len)
        if self.fs.atime_updates:
            yield from self.fs._dirty_inode(self.inode)
        self.pos += nbytes
        return nbytes

    # -- writing --------------------------------------------------------------
    def write(self, nbytes: int):
        """Write ``nbytes`` at the current position (delayed to disk).

        Generator; extends the file if writing past EOF, dirties the data
        blocks and the inode, and returns the byte count.
        """
        self._check_open()
        if nbytes < 1:
            raise ValueError("nbytes must be >= 1")
        # Each step tries its plain-call ``note_*`` fast path first and
        # only drives the generator on a miss, so the common all-resident
        # delayed write (the paper's 1 KB baseline traffic) runs without
        # a single inner generator frame.
        fs = self.fs
        inode = self.inode
        end = self.pos + nbytes
        if end > inode.size_bytes and not fs.note_extend(inode, end):
            yield from fs.truncate_extend(inode, end)
        block_bytes = fs.block_kb * 1024
        first = self.pos // block_bytes
        last = (end - 1) // block_bytes
        runs = fs.note_map_blocks(inode, first, last - first + 1)
        if runs is None:
            runs = yield from fs.map_blocks(inode, first, last - first + 1)
        cache = fs.cache
        for abs_block, run_len in runs:
            if not cache.note_write_range(abs_block, run_len):
                yield from cache.write_range(abs_block, run_len)
        if not fs.note_dirty_inode(inode):
            yield from fs._dirty_inode(inode)
        self.pos = end
        return nbytes

    def append(self, nbytes: int):
        """Write at EOF (the logging pattern)."""
        self.seek(self.inode.size_bytes)
        written = yield from self.write(nbytes)
        return written

    # -- checkpoint state surface ---------------------------------------
    def snapshot_state(self) -> dict:
        """Cursor + read-ahead window (the inode travels by path/ino)."""
        return {"ino": self.inode.ino, "pos": self.pos,
                "closed": self.closed,
                "readahead": (None if self.readahead is None
                              else self.readahead.snapshot_state())}

    def restore_state(self, state: dict) -> None:
        self.pos = int(state["pos"])
        self.closed = bool(state["closed"])
        if state["readahead"] is not None and self.readahead is not None:
            self.readahead.restore_state(state["readahead"])

    # -- lifecycle ------------------------------------------------------------
    def close(self) -> None:
        self.closed = True

    def _check_open(self) -> None:
        if self.closed:
            raise FsError("I/O on closed file")

    def __enter__(self) -> "FileHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
