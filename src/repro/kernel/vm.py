"""Virtual memory: demand paging against a raw swap region.

Page faults are the paper's 4 KB request class.  Three fault flavours exist,
matching the narrative in the paper's section 4:

* **demand load** — first touch of a file-backed page (program text, mapped
  image data) reads 4 KB from the file's disk location (the wavelet code's
  startup burst, "due to the large program space and image data
  requirements");
* **swap-in** — re-touch of a page previously evicted dirty reads 4 KB from
  its swap slot (working-set maintenance during compute);
* **zero-fill** — first touch of anonymous memory costs no I/O.

Evictions of dirty pages write 4 KB to the swap region.  Replacement is
global LRU over all address spaces on the node, so one application's memory
pressure pages out another's — the combined experiment's amplified paging.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.driver import InstrumentedIDEDriver
from repro.kernel.params import DiskLayout


class OutOfSwap(Exception):
    """The swap region is exhausted."""


@dataclass
class VMStats:
    faults: int = 0
    demand_loads: int = 0
    swap_ins: int = 0
    zero_fills: int = 0
    evictions: int = 0
    swap_outs: int = 0
    hits: int = 0
    #: evictions performed by the background reclaimer (kswapd)
    background_evictions: int = 0
    #: faults that had to reclaim synchronously (direct reclaim)
    direct_reclaims: int = 0


@dataclass
class AddressSpace:
    """Per-process page bookkeeping.

    ``file_pages`` maps a virtual page id to ``(start_sector, nsectors)``
    on disk, for pages backed by a program image or data file.
    ``swapped`` holds pages with a *valid* copy in their swap slot — the
    swap-cache semantics of real kernels: the copy survives a swap-in and
    is only invalidated when the resident page is re-dirtied, so a clean
    re-eviction is free and the next touch swap-ins again.
    """

    name: str
    file_pages: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    swapped: set = field(default_factory=set)
    resident: set = field(default_factory=set)

    @property
    def rss(self) -> int:
        """Resident set size in pages."""
        return len(self.resident)


class VirtualMemory:
    """Global frame pool + swap for one node."""

    def __init__(self, driver: InstrumentedIDEDriver, frames_total: int,
                 page_kb: int = 4, layout: Optional[DiskLayout] = None):
        if frames_total < 1:
            raise ValueError("need at least one frame")
        self.driver = driver
        self.frames_total = frames_total
        self.page_kb = page_kb
        self.sectors_per_page = page_kb * 1024 // 512
        layout = layout or DiskLayout()
        self.swap_start, swap_sectors = layout.zone("swap")
        self.swap_slots = swap_sectors // self.sectors_per_page
        self.stats = VMStats()
        # LRU of resident pages: (aspace id, page id) -> dirty flag
        self._frames: "OrderedDict[Tuple[int, int], bool]" = OrderedDict()
        self._slot_of: Dict[Tuple[int, int], int] = {}
        self._free_slots: list = []
        self._next_slot = 0
        self._spaces: Dict[int, AddressSpace] = {}
        # background reclaimer state (attach_reclaimer)
        self._reclaim_low = 0
        self._reclaim_high = 0
        self._reclaim_wakeup = None
        self._reclaimer_on = False

    # -- address-space management ------------------------------------------
    def create_space(self, name: str) -> AddressSpace:
        aspace = AddressSpace(name=name)
        self._spaces[id(aspace)] = aspace
        return aspace

    def destroy_space(self, aspace: AddressSpace) -> None:
        """Process exit: free its frames and swap slots (no I/O)."""
        key_id = id(aspace)
        for key in [k for k in self._frames if k[0] == key_id]:
            del self._frames[key]
        for key in [k for k in self._slot_of if k[0] == key_id]:
            self._free_slots.append(self._slot_of.pop(key))
        aspace.resident.clear()
        aspace.swapped.clear()
        self._spaces.pop(key_id, None)

    @property
    def frames_used(self) -> int:
        return len(self._frames)

    @property
    def frames_free(self) -> int:
        return self.frames_total - len(self._frames)

    # -- background reclaim (kswapd) -----------------------------------------
    def attach_reclaimer(self, sim, low_fraction: float = 0.02,
                         high_fraction: float = 0.06) -> None:
        """Start a kswapd-style daemon on ``sim``.

        When free frames fall below ``low_fraction`` of the pool, the
        daemon evicts (asynchronously, batching the swap-out writes)
        until ``high_fraction`` are free.  Faults then normally find a
        free frame instead of reclaiming synchronously; a fault arriving
        with nothing free still direct-reclaims, exactly as in Linux.
        """
        if self._reclaimer_on:
            raise RuntimeError("reclaimer already attached")
        if not (0 < low_fraction < high_fraction < 1):
            raise ValueError("need 0 < low < high < 1")
        self._reclaim_low = max(1, int(low_fraction * self.frames_total))
        self._reclaim_high = max(self._reclaim_low + 1,
                                 int(high_fraction * self.frames_total))
        self._reclaimer_on = True
        sim.process(self._kswapd(sim), name="kswapd")

    def stop_reclaimer(self) -> None:
        self._reclaimer_on = False
        if self._reclaim_wakeup is not None \
                and not self._reclaim_wakeup.triggered:
            self._reclaim_wakeup.succeed()

    def _kswapd(self, sim):
        while self._reclaimer_on:
            if self.frames_free >= self._reclaim_low or not self._frames:
                self._reclaim_wakeup = sim.event()
                yield self._reclaim_wakeup
                self._reclaim_wakeup = None
                if not self._reclaimer_on:
                    return
            while (self._reclaimer_on and self._frames
                   and self.frames_free < self._reclaim_high):
                yield from self._evict_one()
                self.stats.background_evictions += 1

    def _kick_reclaimer(self) -> None:
        if (self._reclaimer_on and self._reclaim_wakeup is not None
                and not self._reclaim_wakeup.triggered
                and self.frames_free < self._reclaim_low):
            self._reclaim_wakeup.succeed()

    # -- the fault path ------------------------------------------------------
    def access(self, aspace: AddressSpace, page_id: int, write: bool = False):
        """Touch one page; a generator that performs fault I/O if needed."""
        key = (id(aspace), page_id)
        if key in self._frames:
            self.stats.hits += 1
            self._frames.move_to_end(key)
            if write:
                self._frames[key] = True
                # Re-dirtying invalidates the swap copy (swap cache).
                aspace.swapped.discard(page_id)
            return
        self.stats.faults += 1
        if len(self._frames) >= self.frames_total:
            self.stats.direct_reclaims += 1
        while len(self._frames) >= self.frames_total:
            yield from self._evict_one()
        self._kick_reclaimer()
        # Bring the page in.
        if page_id in aspace.swapped:
            slot = self._slot_of[key]
            self.stats.swap_ins += 1
            yield self.driver.read_sectors(self._slot_sector(slot),
                                           self.sectors_per_page,
                                           origin=f"swapin:{aspace.name}")
            if write:
                aspace.swapped.discard(page_id)
        elif page_id in aspace.file_pages:
            sector, nsectors = aspace.file_pages[page_id]
            self.stats.demand_loads += 1
            yield self.driver.read_sectors(sector, nsectors,
                                           origin=f"demand:{aspace.name}")
        else:
            self.stats.zero_fills += 1
        self._frames[key] = write
        aspace.resident.add(page_id)

    def touch_range(self, aspace: AddressSpace, first_page: int,
                    npages: int, write: bool = False):
        """Touch ``npages`` consecutive pages (demand-loading a region)."""
        for page_id in range(first_page, first_page + npages):
            yield from self.access(aspace, page_id, write=write)

    # -- checkpoint state surface ---------------------------------------
    def space_by_name(self, name: str) -> AddressSpace:
        """Find a (restored) address space by its label."""
        for aspace in self._spaces.values():
            if aspace.name == name:
                return aspace
        raise KeyError(f"no address space named {name!r}")

    def snapshot_state(self) -> dict:
        """Frame pool, swap map, and address spaces, re-keyed by name.

        Live bookkeeping keys frames by ``id(aspace)``; ids are
        process-specific, so the snapshot uses the space *name* (unique
        per node: one space per application instance).
        """
        names = {sid: a.name for sid, a in self._spaces.items()}
        s = self.stats
        return {
            "spaces": [{"name": a.name,
                        "file_pages": [[p, sec, n] for p, (sec, n)
                                       in sorted(a.file_pages.items())],
                        "swapped": sorted(a.swapped),
                        "resident": sorted(a.resident)}
                       for a in self._spaces.values()],
            "frames": [[names[sid], page, dirty]
                       for (sid, page), dirty in self._frames.items()],
            "slots": sorted([names[sid], page, slot]
                            for (sid, page), slot in self._slot_of.items()),
            "free_slots": list(self._free_slots),
            "next_slot": self._next_slot,
            "stats": {k: getattr(s, k) for k in vars(s)},
        }

    def restore_state(self, state: dict) -> None:
        self._spaces = {}
        by_name: Dict[str, int] = {}
        for sp in state["spaces"]:
            aspace = AddressSpace(
                name=sp["name"],
                file_pages={int(p): (int(sec), int(n))
                            for p, sec, n in sp["file_pages"]},
                swapped=set(sp["swapped"]),
                resident=set(sp["resident"]))
            self._spaces[id(aspace)] = aspace
            by_name[aspace.name] = id(aspace)
        self._frames = OrderedDict(
            ((by_name[name], int(page)), bool(dirty))
            for name, page, dirty in state["frames"])
        self._slot_of = {(by_name[name], int(page)): int(slot)
                         for name, page, slot in state["slots"]}
        self._free_slots = [int(s) for s in state["free_slots"]]
        self._next_slot = int(state["next_slot"])
        self.stats = VMStats(**{k: int(v)
                                for k, v in state["stats"].items()})

    # -- internals ------------------------------------------------------------
    def _evict_one(self):
        (victim_space_id, victim_page), dirty = next(iter(self._frames.items()))
        del self._frames[(victim_space_id, victim_page)]
        self.stats.evictions += 1
        victim_space = self._spaces.get(victim_space_id)
        if victim_space is not None:
            victim_space.resident.discard(victim_page)
        if dirty:
            slot = self._ensure_slot((victim_space_id, victim_page))
            self.stats.swap_outs += 1
            name = victim_space.name if victim_space else "?"
            yield self.driver.write_sectors(self._slot_sector(slot),
                                            self.sectors_per_page,
                                            origin=f"swapout:{name}")
            if victim_space is not None:
                victim_space.swapped.add(victim_page)
        # Clean pages are simply dropped: if their swap copy is still
        # valid the next touch swap-ins; file-backed pages demand-load
        # again; pure anonymous pages zero-fill again.

    def _ensure_slot(self, key: Tuple[int, int]) -> int:
        slot = self._slot_of.get(key)
        if slot is None:
            if self._free_slots:
                slot = self._free_slots.pop()
            else:
                if self._next_slot >= self.swap_slots:
                    raise OutOfSwap(f"swap full ({self.swap_slots} slots)")
                slot = self._next_slot
                self._next_slot += 1
            self._slot_of[key] = slot
        return slot

    def _slot_sector(self, slot: int) -> int:
        return self.swap_start + slot * self.sectors_per_page
