"""Generic plugin registries for swappable simulation components.

A :class:`Registry` maps short names to component factories (disk
schedulers, drive caches, application workloads).  Modules that *own* a
component family instantiate one registry and register their built-ins;
external code can register alternatives under new names and then select
them from a :class:`~repro.config.Scenario` by name — no construction
sites need editing.

The module deliberately imports nothing from the rest of ``repro`` so
that any layer (disk, kernel, apps, config) can depend on it without
cycles.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, Optional, Tuple


class UnknownComponentError(KeyError):
    """A name was looked up that no plugin registered.

    Carries the registry ``kind``, the offending ``name``, and the valid
    ``choices`` so configuration errors can point at the exact config
    path with the full menu.
    """

    def __init__(self, kind: str, name: str, choices: Tuple[str, ...]):
        self.kind = kind
        self.name = name
        self.choices = choices
        super().__init__(
            f"unknown {kind} {name!r}; choose from {list(choices)}")

    def __str__(self) -> str:  # KeyError quotes its arg; keep it readable
        return self.args[0]


class Registry:
    """Name -> factory mapping with precise lookup errors.

    ``register`` works both as a decorator and as a plain call::

        SCHEDULERS = Registry("disk scheduler")

        @SCHEDULERS.register("fifo")
        class FIFOScheduler: ...

        SCHEDULERS.register("noop", NoopScheduler)

    Re-registering a taken name raises unless ``replace=True`` — silent
    shadowing of a built-in is almost always a bug.
    """

    def __init__(self, kind: str):
        self.kind = kind
        self._entries: Dict[str, Any] = {}

    # -- registration ------------------------------------------------------
    def register(self, name: str, obj: Optional[Any] = None, *,
                 replace: bool = False):
        if obj is None:
            def decorator(target):
                self.register(name, target, replace=replace)
                return target
            return decorator
        if not replace and name in self._entries:
            raise ValueError(
                f"{self.kind} {name!r} is already registered "
                f"({self._entries[name]!r}); pass replace=True to override")
        self._entries[name] = obj
        return obj

    # -- lookup ------------------------------------------------------------
    def get(self, name: str) -> Any:
        """The registered object, or :class:`UnknownComponentError`."""
        try:
            return self._entries[name]
        except KeyError:
            raise UnknownComponentError(self.kind, name,
                                        self.names()) from None

    def create(self, name: str, /, *args, **kwargs) -> Any:
        """Call the registered factory with the given arguments."""
        factory: Callable = self.get(name)
        return factory(*args, **kwargs)

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._entries))

    def items(self) -> Tuple[Tuple[str, Any], ...]:
        return tuple(sorted(self._entries.items()))

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return f"Registry({self.kind!r}, {list(self.names())})"
