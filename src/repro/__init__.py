"""repro — reproduction of Berry & El-Ghazawi (IPPS 1996).

"An Experimental Study of Input/Output Characteristics of NASA Earth and
Space Sciences Applications": a driver-level I/O workload characterization
of the 16-node Beowulf prototype at NASA Goddard, rebuilt end to end as a
discrete-event simulation.

Subpackages (bottom-up):

* :mod:`repro.config` — declarative :class:`~repro.config.Scenario`
  tree configuring the whole stack, component registries, grid sweeps;
* :mod:`repro.sim` — discrete-event engine;
* :mod:`repro.disk` — disk geometry / mechanics / scheduling / cache;
* :mod:`repro.driver` — the instrumented IDE driver (the measurement
  apparatus);
* :mod:`repro.kernel` — the Linux-like substrate (buffer cache, paging,
  read-ahead, filesystem, daemons);
* :mod:`repro.cluster` — Ethernet, PVM, the Beowulf builder, PIOUS;
* :mod:`repro.apps` — the PPM / wavelet / N-body workload models and
  their real compute kernels;
* :mod:`repro.core` — the characterization study itself (experiments,
  figures, Table 1, locality, claims);
* :mod:`repro.synth` — the fitted workload parameter set and what-if
  replay;
* :mod:`repro.viz` — ASCII / SVG rendering.

Start with ``repro.core.ExperimentRunner`` or ``examples/quickstart.py``.
"""

__version__ = "1.1.0"

#: the top-level package deliberately exports nothing but its version —
#: every public symbol lives in a subpackage (``repro.core``,
#: ``repro.config``, ``repro.serve``, ...); tests/test_public_api.py
#: snapshots this so the surface only changes on purpose
__all__ = ["__version__"]
