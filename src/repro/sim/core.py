"""Simulator, events, and generator-based processes.

The engine schedules ``(time, priority, seq, event)`` keys and fires them
in that total order.  Two event-queue implementations sit behind the same
``_enqueue``/``step``/``run`` API:

* ``"calendar"`` (the default) — a bucketed calendar queue
  (:class:`~repro.sim.calqueue.CalendarSimulator`) with O(1) amortised
  enqueue/dequeue and a batch-sorted drain loop;
* ``"heap"`` — the classic binary heap in this module, kept as the
  reference fallback.

Both produce *identical* event orderings (property-tested), so the choice
only affects speed.  ``Simulator(queue="heap")`` selects explicitly;
experiment drivers thread the choice through
``Scenario.engine.event_queue``.

An :class:`Event` carries callbacks; a :class:`Process` wraps a generator
and is itself an event that fires when the generator returns, so
processes compose (one process can ``yield`` another and sleep until it
finishes).
"""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import Any, Callable, Generator, Iterable, Optional

# Event priorities: URGENT events scheduled at the same instant run before
# NORMAL ones.  The engine uses URGENT internally for process resumption so
# that a process observes the state change that woke it before anything else
# scheduled at that time runs.
URGENT = 0
NORMAL = 1

#: selectable event-queue engines, best first (``Simulator(queue=...)``)
QUEUE_KINDS = ("calendar", "heap")

#: engine name -> Simulator subclass; ``calqueue`` registers on import
EVENT_QUEUES: dict = {}


class SimulationError(RuntimeError):
    """Raised for engine misuse (re-triggering events, bad yields, ...)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The interrupted process receives this exception at its current yield
    point; ``cause`` carries whatever object the interrupter supplied.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A thing that may happen at a point in simulated time.

    An event starts *pending*, becomes *triggered* once given a value (or an
    exception) and scheduled, and is *processed* after its callbacks ran.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_scheduled", "processed")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        self._scheduled = False
        self.processed = False

    @property
    def triggered(self) -> bool:
        return self._ok is not None

    @property
    def ok(self) -> bool:
        if self._ok is None:
            raise SimulationError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        if self._ok is None:
            raise SimulationError("event not yet triggered")
        return self._value

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully, firing callbacks after ``delay``."""
        if self._ok is not None:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self.sim._enqueue(delay, NORMAL, self)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event with an exception to be raised in waiters."""
        if self._ok is not None:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() needs an exception instance")
        self._ok = False
        self._value = exception
        self.sim._enqueue(delay, NORMAL, self)
        return self

    def _fire(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        for cb in callbacks:
            cb(self)
        self.processed = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at t={self.sim.now:.6g}>"


class Timeout(Event):
    """An event that fires after a fixed delay from its creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay!r}")
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        sim._enqueue(delay, NORMAL, self)


class Tick(Timeout):
    """A daemon's self-rescheduling sleep, tagged with a stable owner key.

    Ticks are the only events allowed to sit in the queue across a
    checkpoint: ``(time, priority, seq, owner)`` fully describes one, so
    the queue becomes plain data.  Periodic daemons (bdflush, update,
    syslog flush, workload chatter, ...) create them through
    :meth:`Simulator.tick` instead of :meth:`Simulator.timeout`; in an
    un-checkpointed run the two are bit-identical (same enqueue, same
    sequence numbers).
    """

    __slots__ = ("owner",)

    def __init__(self, sim: "Simulator", delay: float, owner: str,
                 value: Any = None):
        super().__init__(sim, delay, value)
        self.owner = owner


class Initialize(Event):
    """Internal event used to start a process at its spawn time."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", process: "Process"):
        super().__init__(sim)
        self.callbacks.append(process._resume)
        self._ok = True
        sim._enqueue(0.0, URGENT, self)


class Process(Event):
    """A running generator; also an event that fires when it returns.

    The generator may yield:

    * another :class:`Event` (timeout, resource request, another process) —
      the process sleeps until it triggers;
    * nothing else.  Yielding a non-event raises :class:`SimulationError`.
    """

    __slots__ = ("generator", "_target", "name", "_resume_counter")

    def __init__(self, sim: "Simulator", generator: Generator,
                 name: Optional[str] = None):
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        # Resolve the per-prefix resume counter once at spawn; _resume
        # runs tens of thousands of times per simulated second.
        instr = sim._instr
        self._resume_counter = None if instr is None else \
            instr.resumes.child(self.name.split(":", 1)[0])
        Initialize(sim, self)

    @property
    def is_alive(self) -> bool:
        return self._ok is None

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its yield point."""
        if not self.is_alive:
            raise SimulationError(f"{self.name} already terminated")
        if self._target is None:
            raise SimulationError(f"{self.name} not yet started")
        # Detach from the event we were waiting on; it may still fire but we
        # no longer care.
        target = self._target
        if target.callbacks is not None and self._resume in target.callbacks:
            target.callbacks.remove(self._resume)
        interrupt_event = Event(self.sim)
        interrupt_event.callbacks.append(self._resume)
        interrupt_event.fail(Interrupt(cause))

    def _resume(self, event: Event) -> None:
        self._target = None
        sim = self.sim
        counter = self._resume_counter
        if counter is not None:
            counter.value += 1
        sim._active_process = self
        try:
            if event._ok:
                next_event = self.generator.send(event._value)
            else:
                next_event = self.generator.throw(event._value)
        except StopIteration as stop:
            sim._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            sim._active_process = None
            if sim._fail_fast:
                raise
            self.fail(exc)
            return
        sim._active_process = None
        if not isinstance(next_event, Event):
            raise SimulationError(
                f"process {self.name!r} yielded non-event {next_event!r}")
        if next_event.sim is not sim:
            raise SimulationError("yielded event belongs to another simulator")
        self._target = next_event
        if next_event.callbacks is None:
            # Already processed: resume immediately (urgent, same timestamp).
            resumed = Event(sim)
            resumed.callbacks.append(self._resume)
            resumed._ok = next_event._ok
            resumed._value = next_event._value
            sim._enqueue(0.0, URGENT, resumed)
            self._target = resumed
        else:
            next_event.callbacks.append(self._resume)


class _SimInstruments:
    """The engine's observability instruments (only built when enabled)."""

    __slots__ = ("events", "heap_depth", "resumes",
                 "wall_seconds", "sim_seconds")

    def __init__(self, registry):
        self.events = registry.counter(
            "sim.events_processed", "events popped from the heap")
        self.heap_depth = registry.gauge(
            "sim.heap_depth", "heap size after each pop (max = high water)")
        self.resumes = registry.counter(
            "sim.process_resumes",
            "generator resumptions, by process-name prefix")
        self.wall_seconds = registry.counter(
            "sim.wall_seconds", "wall time spent inside run()")
        self.sim_seconds = registry.counter(
            "sim.sim_seconds", "simulated time advanced by run()")


class Simulator:
    """The event loop: owns simulated time and the event queue.

    ``Simulator(queue=...)`` picks the queue engine from
    :data:`QUEUE_KINDS`: the default ``"calendar"`` resolves to
    :class:`~repro.sim.calqueue.CalendarSimulator`; ``"heap"`` keeps the
    binary-heap engine implemented here.  Both fire events in the
    identical ``(time, priority, seq)`` total order.

    ``obs`` takes a :class:`~repro.obs.registry.MetricsRegistry`; when
    given (and enabled) the loop counts events, samples queue depth, and
    tracks wall time per simulated second.  The default is no
    instrumentation: the hot path then pays a single ``is None`` test.
    """

    #: which engine this class implements (subclasses override)
    queue_kind = "heap"

    def __new__(cls, fail_fast: bool = True, obs=None,
                queue: Optional[str] = None):
        if cls is Simulator:
            kind = queue if queue is not None else QUEUE_KINDS[0]
            if kind != "heap":
                engine = EVENT_QUEUES.get(kind)
                if engine is None and kind == "calendar":
                    from repro.sim import calqueue  # noqa: F401 (registers)
                    engine = EVENT_QUEUES.get(kind)
                if engine is None:
                    raise ValueError(f"unknown event queue {kind!r}; "
                                     f"choose from {QUEUE_KINDS}")
                cls = engine
        return object.__new__(cls)

    def __init__(self, fail_fast: bool = True, obs=None,
                 queue: Optional[str] = None):
        self.now: float = 0.0
        self._seq = 0
        self._active_process: Optional[Process] = None
        # fail_fast=True propagates uncaught process exceptions out of run(),
        # which is what tests and experiment drivers want.
        self._fail_fast = fail_fast
        self._instr: Optional[_SimInstruments] = None
        if obs is not None and getattr(obs, "enabled", False):
            self._instr = _SimInstruments(obs)
        #: owner -> (time, priority, seq, value): the snapshotted queue
        #: entry to replay on that owner's next tick() (restore path)
        self._tick_preloads: dict = {}
        self._init_queue()

    def _init_queue(self) -> None:
        """Build the engine's queue state (subclasses override)."""
        self._heap: list = []

    # -- construction helpers -------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        # Hand-inlined Timeout construction (one per sleep, per request,
        # per frame — the most-allocated event kind): skips the
        # Timeout.__init__ → Event.__init__ chain but produces an
        # identical object.  ``Timeout(sim, delay)`` remains supported.
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay!r}")
        event = Timeout.__new__(Timeout)
        event.sim = self
        event.callbacks = []
        event._value = value
        event._ok = True
        event._scheduled = False
        event.processed = False
        event.delay = delay
        self._enqueue(delay, NORMAL, event)
        return event

    def tick(self, owner: str, delay_fn: Callable[[], float]) -> Timeout:
        """A checkpoint-aware daemon sleep (see :class:`Tick`).

        ``delay_fn`` is called lazily — only when no preloaded tick
        exists for ``owner``.  After a restore the first sleep per owner
        replays the snapshotted queue entry (same wake time, priority,
        and sequence number) *without* re-drawing the delay, so RNG
        streams stay aligned with the uninterrupted run.  In a normal
        run this is exactly ``timeout(delay_fn())`` plus an owner tag.
        """
        pre = self._tick_preloads
        if pre:
            entry = pre.pop(owner, None)
            if entry is not None:
                time, priority, seq, value = entry
                event = Tick.__new__(Tick)
                event.sim = self
                event.callbacks = []
                event._value = value
                event._ok = True
                event._scheduled = False
                event.processed = False
                event.delay = max(0.0, time - self.now)
                event.owner = owner
                self._enqueue_exact(time, priority, seq, event)
                return event
        return Tick(self, delay_fn(), owner)

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> Event:
        from repro.sim.conditions import AllOf
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> Event:
        from repro.sim.conditions import AnyOf
        return AnyOf(self, events)

    # -- engine ---------------------------------------------------------------
    def _enqueue(self, delay: float, priority: int, event: Event) -> None:
        if event._scheduled:
            raise SimulationError("event already scheduled")
        event._scheduled = True
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, priority, self._seq, event))

    def _enqueue_exact(self, time: float, priority: int, seq: int,
                       event: Event) -> None:
        """Insert a restored queue entry under its snapshotted key.

        Restore-path only: the sequence number comes from the snapshot,
        so ``_seq`` is *not* advanced (the caller resets it separately).
        """
        event._scheduled = True
        heapq.heappush(self._heap, (time, priority, seq, event))

    def queue_items(self) -> list:
        """The queued ``(time, priority, seq, event)`` entries in firing
        order.  Checkpoint-path only — O(n log n), never on the hot path.
        """
        return sorted(self._heap)

    def settle(self, max_events: int = 5_000_000) -> float:
        """Advance to the next quiescent instant: fire events (in the
        normal total order) until every queued entry is a :class:`Tick`.

        At such an instant the event queue is pure data — every daemon
        is parked on an owner-tagged sleep and every process is either
        finished or parked on a pending (queue-absent) event — which is
        the precondition for :mod:`repro.checkpoint` capturing it.
        Returns the reached time.
        """
        budget = max_events
        while True:
            horizon = None
            for time, _prio, _seq, event in self.queue_items():
                if type(event) is not Tick:
                    horizon = time  # entries are sorted: keeps the max
            if horizon is None:
                return self.now
            # fire everything scheduled up to the horizon instant, in
            # exactly the order run() would have fired it
            while self.peek() <= horizon:
                self.step()
                budget -= 1
                if budget <= 0:
                    raise SimulationError(
                        "settle() exceeded its event budget without "
                        "reaching a tick-only queue")

    def clock_state(self) -> dict:
        """The engine-level snapshot scalars (time and sequence counter)."""
        return {"now": self.now, "seq": self._seq,
                "queue_kind": self.queue_kind}

    def restore_clock(self, state: dict) -> None:
        """Restore :meth:`clock_state` (queue entries travel separately)."""
        self.now = float(state["now"])
        self._seq = int(state["seq"])

    def schedule_callback(self, delay: float,
                          callback: Callable[[], None]) -> Event:
        """Run a plain callable at ``now + delay`` (no process needed)."""
        ev = Event(self)
        ev.callbacks.append(lambda _ev: callback())
        ev.succeed(delay=delay)
        return ev

    def peek(self) -> float:
        """Time of the next event, or ``inf`` if the heap is empty."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event (error if nothing is queued)."""
        heap = self._heap
        if not heap:
            raise SimulationError("empty event queue")
        time, _prio, _seq, event = heapq.heappop(heap)
        if time < self.now:  # pragma: no cover - heap guarantees order
            raise SimulationError("time went backwards")
        self.now = time
        instr = self._instr
        if instr is not None:
            # Inlined counter/gauge updates: this runs once per event.
            instr.events.value += 1
            depth = len(self._heap)
            gauge = instr.heap_depth
            gauge.value = depth
            if depth > gauge.max:
                gauge.max = depth
        event._fire()

    def run(self, until: Optional[float] = None,
            stop: Optional[Event] = None) -> None:
        """Run until the heap drains or simulated time reaches ``until``.

        ``stop`` — an :class:`Event` — returns as soon as it has
        triggered (checked once per processed event): the engine-level
        way to run "until this completes or the deadline passes" without
        an external step loop re-testing conditions per event.
        """
        if until is not None and until < self.now:
            raise ValueError(f"until={until} is in the past (now={self.now})")
        instr = self._instr
        if instr is None:
            self._run_loop(until, stop)
            return
        wall0, sim0 = perf_counter(), self.now
        try:
            self._run_loop_instr(until, stop)
        finally:
            instr.wall_seconds.inc(perf_counter() - wall0)
            instr.sim_seconds.inc(self.now - sim0)

    def _run_loop(self, until: Optional[float],
                  stop: Optional[Event] = None) -> None:
        while self._heap:
            if stop is not None and stop._ok is not None:
                return
            if until is not None and self._heap[0][0] > until:
                self.now = until
                return
            self.step()
        if until is not None:
            self.now = until

    def _run_loop_instr(self, until: Optional[float],
                        stop: Optional[Event] = None) -> None:
        """The run loop, specialised for instrumented runs.

        Event and heap-depth tallies accumulate in locals with a single
        write-back per ``run()`` call, so enabling observability costs
        roughly one integer increment per event instead of a handful of
        attribute round-trips.  (Direct :meth:`step` calls still count
        through their own inline path.)
        """
        instr = self._instr
        heap = self._heap
        pop = heapq.heappop
        nevents = 0
        depth_max = instr.heap_depth.max
        try:
            while heap:
                if stop is not None and stop._ok is not None:
                    return
                if until is not None and heap[0][0] > until:
                    self.now = until
                    return
                time, _prio, _seq, event = pop(heap)
                self.now = time
                nevents += 1
                depth = len(heap)
                if depth > depth_max:
                    depth_max = depth
                event._fire()
            if until is not None:
                self.now = until
        finally:
            instr.events.value += nevents
            gauge = instr.heap_depth
            gauge.value = len(heap)
            if depth_max > gauge.max:
                gauge.max = depth_max


EVENT_QUEUES["heap"] = Simulator
