"""Shared resources for processes: counted resources and object stores.

:class:`Resource` models a server with fixed capacity and a FIFO wait queue
(e.g. a disk's single actuator, a CPU).  :class:`Store` is a producer/consumer
buffer of Python objects (e.g. the /proc trace ring buffer, a message queue).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.sim.core import Event, SimulationError, Simulator


class Request(Event):
    """Pending acquisition of one unit of a :class:`Resource`.

    Use as ``req = res.request(); yield req`` then later ``res.release(req)``.
    Supports the context-manager protocol inside processes::

        with res.request() as req:
            yield req
            ...  # holding the resource
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.sim)
        self.resource = resource
        resource._queue.append(self)
        resource._dispatch()

    def cancel(self) -> None:
        """Withdraw an ungranted request from the wait queue."""
        if self.triggered:
            raise SimulationError("request already granted; release() instead")
        self.resource._queue.remove(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.triggered:
            self.resource.release(self)
        else:
            self.cancel()


class Resource:
    """``capacity`` identical units with a FIFO queue of requesters."""

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._queue: Deque[Request] = deque()

    @property
    def count(self) -> int:
        """Units currently held."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def request(self) -> Request:
        return Request(self)

    def release(self, request: Request) -> None:
        if request.resource is not self:
            raise SimulationError("request belongs to another resource")
        if not request.triggered:
            raise SimulationError("releasing an ungranted request")
        self._in_use -= 1
        self._dispatch()

    def _dispatch(self) -> None:
        while self._queue and self._in_use < self.capacity:
            req = self._queue.popleft()
            self._in_use += 1
            req.succeed(req)


class StorePut(Event):
    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any):
        super().__init__(store.sim)
        self.item = item
        store._putters.append(self)
        store._dispatch()


class StoreGet(Event):
    __slots__ = ()

    def __init__(self, store: "Store"):
        super().__init__(store.sim)
        store._getters.append(self)
        store._dispatch()


class Store:
    """FIFO buffer of objects with optional capacity.

    ``yield store.put(item)`` blocks while full; ``item = yield store.get()``
    blocks while empty.
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 or None")
        self.sim = sim
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._putters: Deque[StorePut] = deque()
        self._getters: Deque[StoreGet] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        return StorePut(self, item)

    def get(self) -> StoreGet:
        return StoreGet(self)

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            while self._putters and (
                    self.capacity is None or len(self.items) < self.capacity):
                put = self._putters.popleft()
                self.items.append(put.item)
                put.succeed()
                progress = True
            while self._getters and self.items:
                get = self._getters.popleft()
                get.succeed(self.items.popleft())
                progress = True
