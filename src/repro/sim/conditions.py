"""Composite events: wait for all or any of a set of events."""

from __future__ import annotations

from typing import Iterable

from repro.sim.core import Event, SimulationError, Simulator


class _Condition(Event):
    """Base for AllOf/AnyOf; collects child results keyed by position."""

    __slots__ = ("_events", "_pending", "_results")

    def __init__(self, sim: Simulator, events: Iterable[Event]):
        super().__init__(sim)
        self._events = list(events)
        for ev in self._events:
            if ev.sim is not sim:
                raise SimulationError("child event belongs to another simulator")
        self._pending = len(self._events)
        self._results = {}
        if not self._events:
            self.succeed({})
            return
        for i, ev in enumerate(self._events):
            if ev.callbacks is None:
                self._child_done(i, ev)
            else:
                ev.callbacks.append(lambda e, i=i: self._child_done(i, e))

    def _child_done(self, index: int, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when every child fired; value is ``{index: value}``.

    Fails fast with the first child failure.
    """

    __slots__ = ()

    def _child_done(self, index: int, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._results[index] = event._value
        self._pending -= 1
        if self._pending == 0:
            self.succeed(dict(self._results))


class AnyOf(_Condition):
    """Fires when the first child fires; value is ``(index, value)``."""

    __slots__ = ()

    def _child_done(self, index: int, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self.succeed((index, event._value))
