"""Deterministic named random streams.

Every stochastic subsystem (disk service jitter, klogd arrivals, app compute
time noise, ...) draws from its own :class:`numpy.random.Generator`, derived
from a single root seed and a stream name.  This keeps experiments
reproducible and lets one subsystem's draw count change without perturbing
the others — essential when comparing ablations.
"""

from __future__ import annotations

import hashlib

import numpy as np


class RandomStreams:
    """Factory of independent, named RNG streams under one root seed."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._cache: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same (seed, name) pair always yields an identically-seeded
        generator, regardless of creation order.
        """
        gen = self._cache.get(name)
        if gen is None:
            digest = hashlib.sha256(
                f"{self.seed}:{name}".encode()).digest()
            child_seed = int.from_bytes(digest[:8], "little")
            gen = np.random.default_rng(child_seed)
            self._cache[name] = gen
        return gen

    def spawn(self, suffix: str) -> "RandomStreams":
        """Derive a child factory (e.g. one per cluster node)."""
        digest = hashlib.sha256(
            f"{self.seed}/spawn/{suffix}".encode()).digest()
        return RandomStreams(int.from_bytes(digest[:8], "little"))

    def snapshot_state(self) -> dict:
        """Every instantiated stream's bit-generator state, by name.

        The state dicts are plain trees (PCG64: a couple of big ints),
        so they drop straight into a checkpoint.
        """
        return {"seed": self.seed,
                "streams": {name: gen.bit_generator.state
                            for name, gen in sorted(self._cache.items())}}

    def restore_state(self, state: dict) -> None:
        """Recreate the named streams and rewind them to ``state``."""
        for name, bg_state in state["streams"].items():
            self.stream(name).bit_generator.state = bg_state

    def __repr__(self) -> str:  # pragma: no cover
        return f"RandomStreams(seed={self.seed})"


def uniform_index_drawer(gen: np.random.Generator, n: int):
    """A callable equivalent to ``lambda: int(gen.integers(n))``, cheaper.

    ``Generator.integers`` costs several microseconds per scalar call,
    almost all of it argument handling.  Underneath it is Lemire's
    bounded sampler over 32-bit half-words (low half of each 64-bit
    word first, the unused high half buffered across calls): draw
    ``u``, form ``m = u * n``, redraw while the low 32 bits of ``m``
    fall under ``2**32 % n``, return ``m >> 32``.  This drawer
    reproduces that consumption directly from
    ``bit_generator.random_raw`` at a fraction of the cost.

    The fast path is *self-verifying*: at construction it replays a
    window of draws against the real ``integers`` on a state snapshot
    and silently falls back to the plain call on any mismatch (say, a
    numpy release changing the sampler), so the value stream is
    identical to scalar ``integers`` by construction, not by assumption.

    Like :class:`BatchedDraws`, only safe when this drawer is the sole
    consumer of *bounded-integer* draws on ``gen`` (whole-word draws
    such as ``random()``/``exponential()`` interleave fine: they do not
    touch the 32-bit half-word buffer).
    """
    if n < 1:
        raise ValueError("need n >= 1")
    fallback = gen.integers
    if n == 1:
        # numpy skips the stream entirely for a single-value range
        drawer = lambda: 0  # noqa: E731
        drawer.get_state = lambda: None
        drawer.set_state = lambda _state: None
        return drawer
    raw = gen.bit_generator.random_raw
    threshold = (1 << 32) % n  # Lemire rejection bound (0 for pow2 n)
    buffered = [None]

    def fast() -> int:
        while True:
            half = buffered[0]
            if half is not None:
                buffered[0] = None
                u = half
            else:
                word = int(raw())
                buffered[0] = word >> 32
                u = word & 0xFFFFFFFF
            m = u * n
            if (m & 0xFFFFFFFF) >= threshold:
                return m >> 32

    state = gen.bit_generator.state
    expected = [int(fallback(n)) for _ in range(64)]
    gen.bit_generator.state = state
    if [fast() for _ in range(64)] != expected:  # pragma: no cover - drift
        gen.bit_generator.state = state
        drawer = lambda: int(fallback(n))  # noqa: E731
        drawer.get_state = lambda: None
        drawer.set_state = lambda _state: None
        return drawer
    gen.bit_generator.state = state
    buffered[0] = None
    # The buffered half-word is RNG state the generator itself cannot
    # see; checkpoints capture it through these hooks.
    fast.get_state = lambda: buffered[0]
    fast.set_state = lambda half: buffered.__setitem__(0, half)
    return fast


class BatchedDraws:
    """Amortise per-draw RNG overhead by prefetching uniform blocks.

    ``gen.random()`` costs a full Generator round-trip per call;
    ``gen.random(n)`` costs nearly the same once for ``n`` values.  This
    wrapper prefetches blocks and hands them out one at a time, producing
    the **exact same value sequence** as repeated scalar calls on the
    same generator (NumPy fills batch output from the identical
    bit-stream — property-tested in ``tests/test_sim_calendar.py``).

    Only safe to wrap a stream with a *single* consumer: interleaving a
    wrapped and an unwrapped handle to the same generator would let the
    prefetch reorder draws.  The disk's rotational-latency stream is such
    a single-consumer stream.
    """

    __slots__ = ("_gen", "_block", "_buf", "_i")

    def __init__(self, gen: np.random.Generator, block: int = 256):
        self._gen = gen
        self._block = int(block)
        self._buf = gen.random(self._block)
        self._i = 0

    def random(self) -> float:
        """Next uniform in [0, 1) — identical to ``gen.random()``."""
        i = self._i
        buf = self._buf
        if i >= self._block:
            buf = self._buf = self._gen.random(self._block)
            i = 0
        self._i = i + 1
        return buf[i]

    def snapshot_state(self) -> dict:
        """Prefetch buffer + cursor (the generator state travels with
        its :class:`RandomStreams` owner, not here)."""
        return {"block": self._block, "buf": self._buf.copy(),
                "i": self._i}

    def restore_state(self, state: dict) -> None:
        self._block = int(state["block"])
        self._buf = state["buf"].copy()
        self._i = int(state["i"])
