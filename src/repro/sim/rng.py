"""Deterministic named random streams.

Every stochastic subsystem (disk service jitter, klogd arrivals, app compute
time noise, ...) draws from its own :class:`numpy.random.Generator`, derived
from a single root seed and a stream name.  This keeps experiments
reproducible and lets one subsystem's draw count change without perturbing
the others — essential when comparing ablations.
"""

from __future__ import annotations

import hashlib

import numpy as np


class RandomStreams:
    """Factory of independent, named RNG streams under one root seed."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._cache: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same (seed, name) pair always yields an identically-seeded
        generator, regardless of creation order.
        """
        gen = self._cache.get(name)
        if gen is None:
            digest = hashlib.sha256(
                f"{self.seed}:{name}".encode()).digest()
            child_seed = int.from_bytes(digest[:8], "little")
            gen = np.random.default_rng(child_seed)
            self._cache[name] = gen
        return gen

    def spawn(self, suffix: str) -> "RandomStreams":
        """Derive a child factory (e.g. one per cluster node)."""
        digest = hashlib.sha256(
            f"{self.seed}/spawn/{suffix}".encode()).digest()
        return RandomStreams(int.from_bytes(digest[:8], "little"))

    def __repr__(self) -> str:  # pragma: no cover
        return f"RandomStreams(seed={self.seed})"


class BatchedDraws:
    """Amortise per-draw RNG overhead by prefetching uniform blocks.

    ``gen.random()`` costs a full Generator round-trip per call;
    ``gen.random(n)`` costs nearly the same once for ``n`` values.  This
    wrapper prefetches blocks and hands them out one at a time, producing
    the **exact same value sequence** as repeated scalar calls on the
    same generator (NumPy fills batch output from the identical
    bit-stream — property-tested in ``tests/test_sim_calendar.py``).

    Only safe to wrap a stream with a *single* consumer: interleaving a
    wrapped and an unwrapped handle to the same generator would let the
    prefetch reorder draws.  The disk's rotational-latency stream is such
    a single-consumer stream.
    """

    __slots__ = ("_gen", "_block", "_buf", "_i")

    def __init__(self, gen: np.random.Generator, block: int = 256):
        self._gen = gen
        self._block = int(block)
        self._buf = gen.random(self._block)
        self._i = 0

    def random(self) -> float:
        """Next uniform in [0, 1) — identical to ``gen.random()``."""
        i = self._i
        buf = self._buf
        if i >= self._block:
            buf = self._buf = self._gen.random(self._block)
            i = 0
        self._i = i + 1
        return buf[i]
