"""Discrete-event simulation core.

A small, dependency-free process-based DES engine in the style of SimPy:
generator functions are *processes* that ``yield`` events (timeouts, resource
requests, other processes) and are resumed when those events fire.  Every
other subsystem in :mod:`repro` — disks, the kernel substrate, the cluster,
and the application workload models — is built on this engine.

Quick example::

    from repro.sim import Simulator

    sim = Simulator()

    def worker(sim, name):
        yield sim.timeout(1.0)
        print(name, "done at", sim.now)

    sim.process(worker(sim, "a"))
    sim.run()
"""

from repro.sim.core import (
    EVENT_QUEUES,
    QUEUE_KINDS,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Tick,
    Timeout,
)
from repro.sim.calqueue import CalendarSimulator
from repro.sim.conditions import AllOf, AnyOf
from repro.sim.resources import Resource, Store
from repro.sim.rng import (BatchedDraws, RandomStreams,
                           uniform_index_drawer)

__all__ = [
    "AllOf",
    "AnyOf",
    "BatchedDraws",
    "CalendarSimulator",
    "EVENT_QUEUES",
    "Event",
    "Interrupt",
    "Process",
    "QUEUE_KINDS",
    "RandomStreams",
    "Resource",
    "SimulationError",
    "Simulator",
    "Store",
    "Tick",
    "uniform_index_drawer",
    "Timeout",
]
