"""Calendar-queue event scheduling: O(1) amortised enqueue/dequeue.

A calendar queue (Brown, CACM 1988) hashes events into an array of
buckets by time — bucket ``int(t / width) & mask`` — exactly like days
on a wall calendar: each bucket holds one *virtual day* (a ``width``-wide
time window) per lap around the array (a *year*).  Enqueue is a plain
``list.append``; dequeue drains one virtual day at a time into a sorted
run and pops from the front of that run, so the common case is an index
into a presorted list instead of an O(log n) sift.

The engine behind :class:`CalendarSimulator` differs from the textbook
structure in two ways that matter here:

* **ordering is bit-identical to the binary heap** — events fire in the
  exact ``(time, priority, seq)`` total order the heap engine uses.
  Same-window inserts (a callback scheduling at ``now``) are merged into
  the current sorted run with ``bisect.insort`` so urgent resumptions
  still overtake same-timestamp callbacks;
* **the run loop is batch-oriented** — :meth:`run` consumes whole sorted
  runs with the event-firing inlined, cutting the per-event Python
  overhead well below the heap loop's pop-per-event cost.  This is where
  the bulk of the ``tools/bench_core.py`` speedup comes from.

Bucket count doubles/halves with the population (rebuilds are deferred to
window boundaries so a rebuild never invalidates a drain in progress) and
the width is re-estimated from the queued time span at each rebuild.  A
full scan of the calendar without finding an in-window event triggers a
direct jump to the earliest populated window, so sparse stretches cost
O(n) once instead of spinning over empty virtual days.
"""

from __future__ import annotations

from bisect import insort
from typing import Any, Optional

import numpy as np

from repro.sim.core import (EVENT_QUEUES, NORMAL, Event, SimulationError,
                            Simulator, Timeout)


class CalendarSimulator(Simulator):
    """The calendar-queue engine (``Simulator(queue="calendar")``).

    Same public surface and event ordering as the heap engine; only the
    queue data structure and the run-loop mechanics differ.
    """

    queue_kind = "calendar"

    #: bucket-array bounds; resizes double/halve between them
    _MIN_BUCKETS = 16
    _MAX_BUCKETS = 1 << 18
    #: target mean events per virtual day when estimating the width
    _EVENTS_PER_DAY = 128.0

    def _init_queue(self) -> None:
        self._nbuckets = self._MIN_BUCKETS
        self._mask = self._nbuckets - 1
        self._buckets: list = [[] for _ in range(self._nbuckets)]
        self._width = 1.0
        #: virtual day currently being drained; every queued item has
        #: ``int(time / width) >= _cur_vb``
        self._cur_vb = 0
        #: the current day's events, sorted ascending by (time, prio, seq)
        self._drain: list = []
        #: next index to pop from ``_drain``
        self._di = 0
        self._count = 0
        #: set by _enqueue when the population outgrew the calendar;
        #: the rebuild itself waits for the next window boundary
        self._grow = False
        #: latest event time ever queued — lets _advance prove that no
        #: bucket holds items from a future lap (the single-lap fast path)
        self._max_time = 0.0

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        # The base class already hand-inlines Timeout construction; this
        # override additionally fuses the calendar insert (the object is
        # fresh, so the ``_scheduled`` re-check and the _enqueue call
        # frame are pure overhead).  One timeout per sleep, per request,
        # per frame makes this the hottest allocation site in a run.
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay!r}")
        event = Timeout.__new__(Timeout)
        event.sim = self
        event.callbacks = []
        event._value = value
        event._ok = True
        event._scheduled = True
        event.processed = False
        event.delay = delay
        self._seq = seq = self._seq + 1
        time = self.now + delay
        item = (time, NORMAL, seq, event)
        if time > self._max_time:
            self._max_time = time
        vb = int(time / self._width)
        if vb <= self._cur_vb:
            insort(self._drain, item, lo=self._di)
        else:
            self._buckets[vb & self._mask].append(item)
        count = self._count + 1
        self._count = count
        if count > (self._nbuckets << 3):
            self._grow = True
        return event

    # -- engine ---------------------------------------------------------------
    def _enqueue(self, delay: float, priority: int, event: Event) -> None:
        if event._scheduled:
            raise SimulationError("event already scheduled")
        event._scheduled = True
        self._seq += 1
        time = self.now + delay
        item = (time, priority, self._seq, event)
        if time > self._max_time:
            self._max_time = time
        vb = int(time / self._width)
        if vb <= self._cur_vb:
            # lands in the day being drained: merge into the sorted run
            # past the already-consumed prefix
            insort(self._drain, item, lo=self._di)
        else:
            self._buckets[vb & self._mask].append(item)
        count = self._count + 1
        self._count = count
        if count > (self._nbuckets << 3):
            self._grow = True

    def _enqueue_exact(self, time: float, priority: int, seq: int,
                       event: Event) -> None:
        """Insert a restored queue entry under its snapshotted key.

        Restore-path only — ``_seq`` is untouched (the caller resets it
        from the snapshot).  The entry lands wherever the current
        calendar geometry hashes it; ordering is driven entirely by the
        ``(time, priority, seq)`` key, so the bucket layout need not
        match the snapshotted simulator's.
        """
        event._scheduled = True
        item = (time, priority, seq, event)
        if time > self._max_time:
            self._max_time = time
        vb = int(time / self._width)
        if vb <= self._cur_vb:
            insort(self._drain, item, lo=self._di)
        else:
            self._buckets[vb & self._mask].append(item)
        count = self._count + 1
        self._count = count
        if count > (self._nbuckets << 3):
            self._grow = True

    def queue_items(self) -> list:
        """The queued ``(time, priority, seq, event)`` entries in firing
        order.  Checkpoint-path only — O(n log n), never on the hot path.
        """
        items = list(self._drain[self._di:])
        for bucket in self._buckets:
            items.extend(bucket)
        items.sort()
        return items

    def peek(self) -> float:
        """Time of the next event, or ``inf`` if nothing is queued."""
        if self._di < len(self._drain):
            return self._drain[self._di][0]
        if self._count == 0:
            return float("inf")
        self._advance()
        return self._drain[0][0]

    def step(self) -> None:
        """Process exactly one event (error if nothing is queued)."""
        di = self._di
        drain = self._drain
        if di >= len(drain):
            if self._count == 0:
                raise SimulationError("empty event queue")
            self._advance()
            di = 0
        item = drain[di]
        time = item[0]
        if time < self.now:  # pragma: no cover - windows are in order
            raise SimulationError("time went backwards")
        self._di = di + 1
        self._count -= 1
        self.now = time
        instr = self._instr
        if instr is not None:
            instr.events.value += 1
            depth = self._count
            gauge = instr.heap_depth
            gauge.value = depth
            if depth > gauge.max:
                gauge.max = depth
        item[3]._fire()

    def _run_loop(self, until: Optional[float],
                  stop: Optional[Event] = None) -> None:
        drain = self._drain
        if until is None and stop is None:
            # Hottest path: consume whole sorted runs with the firing
            # inlined (Event._fire's body).  ``self._di`` is published
            # before each fire so same-window enqueues insort into the
            # unconsumed suffix; the loop re-reads len(drain) because
            # those insorts grow the run under it.
            while True:
                start = i = self._di
                if i >= len(drain):
                    if self._count == 0:
                        return
                    self._advance()
                    start = i = 0
                try:
                    n = len(drain)
                    while i < n:
                        time, _, _, event = drain[i]
                        i += 1
                        self.now = time
                        callbacks = event.callbacks
                        event.callbacks = None
                        if callbacks:
                            # only a callback can enqueue, so only then
                            # must _di be current (insort's lo bound) —
                            # and only a callback can grow the run
                            self._di = i
                            for cb in callbacks:
                                cb(event)
                            n = len(drain)
                        event.processed = True
                finally:
                    # reconcile even when a fail-fast callback raises out
                    # of run(): _di/count must stay exact for _advance
                    self._di = i
                    self._count -= i - start
            return
        while True:
            di = self._di
            if di >= len(drain):
                if self._count == 0:
                    break
                self._advance()
                di = 0
            if stop is not None and stop._ok is not None:
                return
            item = drain[di]
            if until is not None and item[0] > until:
                self.now = until
                return
            self._di = di + 1
            self._count -= 1
            self.now = item[0]
            event = item[3]
            callbacks = event.callbacks
            event.callbacks = None
            for cb in callbacks:
                cb(event)
            event.processed = True
        if until is not None:
            self.now = until

    def _run_loop_instr(self, until: Optional[float],
                        stop: Optional[Event] = None) -> None:
        """The run loop with event/depth tallies held in locals (one
        write-back per :meth:`run`), mirroring the heap engine's
        instrumented specialisation."""
        instr = self._instr
        drain = self._drain
        nevents = 0
        depth_max = instr.heap_depth.max
        try:
            while True:
                di = self._di
                if di >= len(drain):
                    if self._count == 0:
                        break
                    self._advance()
                    di = 0
                if stop is not None and stop._ok is not None:
                    return
                item = drain[di]
                if until is not None and item[0] > until:
                    self.now = until
                    return
                self._di = di + 1
                count = self._count - 1
                self._count = count
                nevents += 1
                if count > depth_max:
                    depth_max = count
                self.now = item[0]
                event = item[3]
                callbacks = event.callbacks
                event.callbacks = None
                for cb in callbacks:
                    cb(event)
                event.processed = True
            if until is not None:
                self.now = until
        finally:
            instr.events.value += nevents
            gauge = instr.heap_depth
            gauge.value = self._count
            if depth_max > gauge.max:
                gauge.max = depth_max

    # -- calendar mechanics ---------------------------------------------------
    def _advance(self) -> None:
        """Refill ``_drain`` with the next populated virtual day, sorted.

        Precondition: the current drain is fully consumed and
        ``_count > 0``.  Deferred resizes happen here — at a window
        boundary no drain indices are live, so a rebuild is safe.
        """
        count = self._count
        nbuckets = self._nbuckets
        if self._grow:
            self._grow = False
            target = self._target_nbuckets(count)
            if target > nbuckets:
                self._rebuild(target)
                if self._di < len(self._drain):
                    return
        elif count < (nbuckets >> 2) and nbuckets > self._MIN_BUCKETS:
            target = self._target_nbuckets(count)
            if target < nbuckets:
                self._rebuild(target)
                if self._di < len(self._drain):
                    return
        buckets = self._buckets
        mask = self._mask
        width = self._width
        nbuckets = self._nbuckets
        drain = self._drain
        del drain[:]
        self._di = 0
        cur = self._cur_vb
        # when even the latest queued event is less than one lap ahead,
        # every non-empty bucket holds exactly one window's items: take
        # it whole, no per-item window filtering (the common case — the
        # rebuild sizes the calendar so a year covers the queued span)
        single_lap = int(self._max_time / width) <= cur + nbuckets
        scanned = 0
        while True:
            cur += 1
            bucket = buckets[cur & mask]
            if bucket:
                if single_lap:
                    bucket.sort()
                    drain[:] = bucket
                    del bucket[:]
                    self._cur_vb = cur
                    return
                take = [it for it in bucket if int(it[0] / width) == cur]
                if take:
                    if len(take) == len(bucket):
                        del bucket[:]
                    else:
                        bucket[:] = [it for it in bucket
                                     if int(it[0] / width) != cur]
                    take.sort()
                    drain[:] = take
                    self._cur_vb = cur
                    return
            scanned += 1
            if scanned >= nbuckets:
                # a whole lap without an in-window event: jump straight
                # to the earliest populated day (sparse stretch)
                cur = min(it[0] for b in buckets for it in b)
                cur = int(cur / width) - 1
                scanned = 0

    def _target_nbuckets(self, count: int) -> int:
        """Bucket count sized to the population in one step (resizing by
        single doublings would leave a mass-enqueued queue quadratically
        underbucketed): the power of two at or above
        ``count / events-per-day``, clamped to the configured bounds.
        Rounding *up* makes a year cover the whole queued span, which is
        what arms _advance's single-lap fast path."""
        days = max(1, count // int(self._EVENTS_PER_DAY))
        target = 1 << (days - 1).bit_length()
        return max(self._MIN_BUCKETS, min(self._MAX_BUCKETS, target))

    def _rebuild(self, nbuckets: int) -> None:
        """Resize the calendar to ``nbuckets`` and re-estimate the width.

        Every queued item is redistributed; items landing in the (new)
        current day go back to the sorted drain.  O(n + buckets), called
        only when the population doubled or collapsed.
        """
        items = self._drain[self._di:]
        for bucket in self._buckets:
            items.extend(bucket)
        nbuckets = max(self._MIN_BUCKETS, min(self._MAX_BUCKETS, nbuckets))
        self._nbuckets = nbuckets
        self._mask = mask = nbuckets - 1
        self._buckets = buckets = [[] for _ in range(nbuckets)]
        times = np.fromiter((item[0] for item in items), np.float64,
                            count=len(items))
        self._width = width = self._estimate_width(times)
        if len(times):
            # tightens the single-lap test to the *live* population
            # (drained history can only have inflated it)
            self._max_time = float(times.max())
        self._cur_vb = cur = int(self.now / width)
        drain = self._drain
        del drain[:]
        self._di = 0
        # float64 division + int64 truncation match the scalar
        # ``int(t / width)`` in _enqueue/_advance bit for bit
        vbs = (times / width).astype(np.int64).tolist()
        for item, vb in zip(items, vbs):
            if vb <= cur:
                drain.append(item)
            else:
                buckets[vb & mask].append(item)
        drain.sort()

    def _estimate_width(self, times: np.ndarray) -> float:
        """Day width aiming for ~:data:`_EVENTS_PER_DAY` events per day."""
        if len(times) < 2:
            return self._width
        span = float(times.max() - times.min())
        if span <= 0.0:
            return self._width
        return span * self._EVENTS_PER_DAY / len(times)


EVENT_QUEUES["calendar"] = CalendarSimulator
