"""The persistent experiment service: jobs, workers, HTTP queries.

``repro.serve`` turns the one-shot CLI stack into a long-lived,
shared daemon — the "serve many users" layer over :class:`RunCatalog`
and the cached :class:`AnalysisEngine`:

* a **durable job store** (:class:`JobStore`): one JSON state file per
  job, atomic renames, simexpal-style lifecycle states
  (``queued → running → finished/failed/cancelled``), crash-safe reload
  on daemon restart;
* a **worker pool** (:class:`WorkerPool`): spawn-based processes
  executing submitted experiments and grid sweeps through the existing
  :meth:`ExperimentRunner.run` / :func:`run_sweep` fan-out into
  multi-tenant catalog roots;
* an **HTTP/JSON API** (:class:`ExperimentService`): submit and track
  jobs, browse catalogs, and answer analysis queries from the
  signature-guarded ``analysis.json`` cache with ETag/304 revalidation
  — no re-simulation, ever;
* a **client** (:class:`ServeClient`) and the ``repro-serve`` CLI.

Everything is stdlib-only (``http.server``, ``json``,
``multiprocessing``), matching the rest of the stack.
"""

from repro.serve.api import ApiError, ExperimentService
from repro.serve.client import AnalysisAnswer, ServeClient, ServeError
from repro.serve.jobs import (
    ACTIVE_STATES,
    Job,
    JobError,
    JobStore,
    STATES,
    TERMINAL_STATES,
    render_jobs_table,
)
from repro.serve.pool import (
    DEFAULT_CATALOG,
    WorkerPool,
    catalog_root,
    execute_job,
)

__all__ = [
    "ACTIVE_STATES",
    "AnalysisAnswer",
    "ApiError",
    "DEFAULT_CATALOG",
    "ExperimentService",
    "Job",
    "JobError",
    "JobStore",
    "STATES",
    "ServeClient",
    "ServeError",
    "TERMINAL_STATES",
    "WorkerPool",
    "catalog_root",
    "execute_job",
    "render_jobs_table",
]
