"""The persistent experiment service: jobs, workers, HTTP queries.

``repro.serve`` turns the one-shot CLI stack into a long-lived,
shared daemon — the "serve many users" layer over :class:`RunCatalog`
and the cached :class:`AnalysisEngine`:

* a **durable job store** (:class:`JobStore`): one JSON state file per
  job, atomic renames, simexpal-style lifecycle states
  (``queued → running → finished/failed/cancelled/blocked``),
  crash-safe reload on daemon restart;
* a **DAG scheduler** over a **worker pool** (:class:`WorkerPool`):
  spawn-based processes executing submitted experiments and grid
  sweeps — highest ``priority`` first, jobs held until their
  ``depends_on`` dependencies finish, dependents of a failed job
  settled to ``blocked``;
* **live progress**: workers append ``started``/``point``/terminal
  events (with achieved events/sec) to a per-job :class:`EventLog`,
  streamed by the API as Server-Sent Events and by
  :meth:`ServeClient.events`;
* **tenants** (:class:`Tenants`): a ``tenants.toml`` mapping bearer
  tokens to tenants with queued/running/disk quotas, enforced at
  ``POST /v1/jobs`` (401/403/429) and in the scheduler;
* an **HTTP/JSON API** (:class:`ExperimentService`): submit and track
  jobs, browse catalogs, and answer analysis queries from the
  signature-guarded ``analysis.json`` cache with ETag/304 revalidation
  — no re-simulation, ever;
* a **client** (:class:`ServeClient`) raising the typed
  :class:`ServeError` hierarchy, and the ``repro-serve`` CLI.

Everything is stdlib-only (``http.server``, ``json``,
``multiprocessing``), matching the rest of the stack.
"""

from repro.serve.api import ApiError, ExperimentService
from repro.serve.client import AnalysisAnswer, ServeClient
from repro.serve.errors import (
    AuthError,
    DependencyCycle,
    JobNotFound,
    QuotaExceeded,
    ServeError,
)
from repro.serve.events import EventLog
from repro.serve.jobs import (
    ACTIVE_STATES,
    Job,
    JobError,
    JobStore,
    STATES,
    TERMINAL_STATES,
    render_jobs_table,
)
from repro.serve.pool import (
    DEFAULT_CATALOG,
    WorkerPool,
    catalog_root,
    execute_job,
)
from repro.serve.tenants import Tenant, Tenants

__all__ = [
    "ACTIVE_STATES",
    "AnalysisAnswer",
    "ApiError",
    "AuthError",
    "DEFAULT_CATALOG",
    "DependencyCycle",
    "EventLog",
    "ExperimentService",
    "Job",
    "JobError",
    "JobNotFound",
    "JobStore",
    "QuotaExceeded",
    "STATES",
    "ServeClient",
    "ServeError",
    "TERMINAL_STATES",
    "Tenant",
    "Tenants",
    "WorkerPool",
    "catalog_root",
    "execute_job",
    "render_jobs_table",
]
