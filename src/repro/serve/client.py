"""A zero-dependency client for the ``repro-serve`` HTTP API.

:class:`ServeClient` wraps :mod:`urllib.request` with the service's
conventions: JSON bodies both ways, bearer-token tenancy
(``ServeClient(url, token=...)``), job polling with
:meth:`~ServeClient.wait`, live progress streaming with
:meth:`~ServeClient.events` (Server-Sent Events, ``Last-Event-ID``
resume), and ETag-aware analysis queries — :meth:`~ServeClient.analysis`
remembers the last ETag per query and sends ``If-None-Match``, so a
repeated query on an unchanged run is answered ``304`` and returns the
locally-held result.

Failures raise the typed :mod:`repro.serve.errors` hierarchy: the
server's JSON error bodies carry a machine ``code``, and the client
re-raises the matching class — :class:`JobNotFound`,
:class:`AuthError`, :class:`QuotaExceeded`, :class:`DependencyCycle` —
with plain :class:`ServeError` as the catch-all base.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.serve.errors import (
    AuthError,
    DependencyCycle,
    JobNotFound,
    QuotaExceeded,
    ServeError,
    error_for,
)
from repro.serve.jobs import TERMINAL_STATES

__all__ = ["AnalysisAnswer", "AuthError", "DependencyCycle",
           "JobNotFound", "QuotaExceeded", "ServeClient", "ServeError"]


class AnalysisAnswer:
    """One analysis response: the payload plus its cache provenance."""

    __slots__ = ("payload", "etag", "from_cache")

    def __init__(self, payload: dict, etag: Optional[str],
                 from_cache: bool):
        self.payload = payload
        self.etag = etag
        #: True when the server answered 304 and this is the held copy
        self.from_cache = from_cache

    @property
    def result(self):
        return self.payload.get("result")


class ServeClient:
    """Talks to one ``repro-serve`` daemon at ``base_url``.

    ``token`` is the tenant bearer token sent as ``Authorization``;
    leave it ``None`` against an open (tenant-less) daemon.
    """

    def __init__(self, base_url: str, timeout: float = 60.0,
                 token: Optional[str] = None):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.token = token
        #: (path, query) -> (etag, payload) for If-None-Match reuse
        self._etags: Dict[str, Tuple[str, dict]] = {}

    # -- raw transport ----------------------------------------------------------
    def _headers(self, extra: Optional[dict] = None) -> dict:
        headers = {"Content-Type": "application/json"}
        if self.token:
            headers["Authorization"] = f"Bearer {self.token}"
        headers.update(extra or {})
        return headers

    def request(self, method: str, path: str,
                body: Optional[dict] = None,
                headers: Optional[dict] = None
                ) -> Tuple[int, Optional[dict], dict]:
        """One request; returns ``(status, json_or_None, headers)``."""
        data = json.dumps(body).encode() if body is not None else None
        request = urllib.request.Request(
            self.base_url + path, data=data, method=method,
            headers=self._headers(headers))
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                raw = response.read()
                kind = response.headers.get("Content-Type", "")
                if raw.strip() and "json" in kind:
                    payload = json.loads(raw)
                elif raw.strip():
                    payload = raw.decode()       # e.g. ?format=text tables
                else:
                    payload = None
                return response.status, payload, dict(response.headers)
        except urllib.error.HTTPError as exc:
            if exc.code == 304:
                return 304, None, dict(exc.headers)
            code = None
            try:
                error = json.loads(exc.read())
                message = error.get("error", str(exc))
                code = error.get("code")
            except ValueError:
                message = str(exc)
            raise error_for(exc.code, message, code) from None
        except urllib.error.URLError as exc:
            raise ServeError(f"cannot reach {self.base_url}: "
                             f"{exc.reason}", status=0) from None

    # -- jobs --------------------------------------------------------------------
    def submit(self, scenario=None, experiment: str = "baseline",
               duration: Optional[float] = None,
               grid: Optional[List[str]] = None,
               catalog: Optional[str] = None,
               parallel: bool = False,
               workers: Optional[int] = None,
               priority: int = 0,
               depends_on: Optional[Sequence[str]] = None) -> dict:
        """Submit a job; ``grid`` axes make it a sweep.  Returns the job.

        ``priority`` orders dispatch (higher first); ``depends_on`` job
        ids hold the job until those jobs finish.
        """
        body: dict = {"experiment": experiment}
        if scenario is not None:
            body["scenario"] = scenario if isinstance(scenario, (dict, str)) \
                else scenario.to_dict()
        if duration is not None:
            body["duration"] = duration
        if grid:
            body["grid"] = list(grid)
            body["parallel"] = parallel
            if workers is not None:
                body["workers"] = workers
        if catalog is not None:
            body["catalog"] = catalog
        if priority:
            body["priority"] = int(priority)
        if depends_on:
            body["depends_on"] = list(depends_on)
        _, payload, _ = self.request("POST", "/v1/jobs", body=body)
        return payload

    def jobs(self, state: Optional[str] = None) -> List[dict]:
        path = "/v1/jobs" + (f"?state={state}" if state else "")
        _, payload, _ = self.request("GET", path)
        return payload["jobs"]

    def job(self, job_id: str) -> dict:
        _, payload, _ = self.request("GET", f"/v1/jobs/{job_id}")
        return payload

    def cancel(self, job_id: str) -> dict:
        _, payload, _ = self.request("POST", f"/v1/jobs/{job_id}/cancel")
        return payload

    def wait(self, job_id: str, timeout: float = 300.0,
             poll: float = 0.2) -> dict:
        """Poll until the job reaches a terminal state; returns it."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["state"] in TERMINAL_STATES:
                return job
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {job['state']} "
                    f"after {timeout:.0f}s")
            time.sleep(poll)

    def events(self, job_id: str, after: int = 0,
               timeout: Optional[float] = None) -> Iterator[dict]:
        """Stream a job's progress events live (Server-Sent Events).

        Yields each event as its ``data:`` JSON dict (``id``, ``event``,
        ``time``, plus kind-specific fields such as ``k``/``n``/
        ``events_per_sec`` on sweep ``point`` events).  The stream ends
        when the job reaches a terminal state.  ``after`` resumes past
        already-seen event ids via ``Last-Event-ID``.
        """
        request = urllib.request.Request(
            self.base_url + f"/v1/jobs/{job_id}/events",
            headers=self._headers(
                {"Last-Event-ID": str(after)} if after else {}))
        try:
            response = urllib.request.urlopen(
                request, timeout=timeout or self.timeout)
        except urllib.error.HTTPError as exc:
            code = None
            try:
                error = json.loads(exc.read())
                message = error.get("error", str(exc))
                code = error.get("code")
            except ValueError:
                message = str(exc)
            raise error_for(exc.code, message, code) from None
        except urllib.error.URLError as exc:
            raise ServeError(f"cannot reach {self.base_url}: "
                             f"{exc.reason}", status=0) from None
        with response:
            data_lines: List[str] = []
            for raw in response:
                line = raw.decode().rstrip("\n")
                if line.startswith("data:"):
                    data_lines.append(line[5:].strip())
                elif line == "" and data_lines:
                    try:
                        yield json.loads("\n".join(data_lines))
                    except ValueError:
                        pass
                    data_lines = []

    # -- runs and analysis ---------------------------------------------------------
    def runs(self, catalog: Optional[str] = None) -> Dict[str, list]:
        path = "/v1/runs" + (f"?catalog={catalog}" if catalog else "")
        _, payload, _ = self.request("GET", path)
        return payload["catalogs"]

    def analysis(self, run_id: str, pipeline: str = "metrics",
                 catalog: Optional[str] = None,
                 **predicates) -> AnalysisAnswer:
        """One cached analysis query, transparently ETag-revalidated.

        ``predicates`` may set ``t0``/``t1``/``node``/``rw``
        (``rw="reads"|"writes"``), pushed down to the engine's chunk
        index server-side.
        """
        query = []
        if catalog:
            query.append(f"catalog={catalog}")
        for key in ("t0", "t1", "node", "rw"):
            if predicates.get(key) is not None:
                query.append(f"{key}={predicates[key]}")
        path = f"/v1/analysis/{run_id}/{pipeline}" + \
            ("?" + "&".join(query) if query else "")
        held = self._etags.get(path)
        headers = {"If-None-Match": held[0]} if held else {}
        status, payload, response_headers = self.request(
            "GET", path, headers=headers)
        etag = response_headers.get("ETag")
        if status == 304:
            return AnalysisAnswer(held[1], etag or held[0],
                                  from_cache=True)
        if etag:
            self._etags[path] = (etag, payload)
        return AnalysisAnswer(payload, etag, from_cache=False)

    # -- service ---------------------------------------------------------------------
    def status(self) -> dict:
        _, payload, _ = self.request("GET", "/v1/status")
        return payload

    def metrics(self) -> dict:
        _, payload, _ = self.request("GET", "/v1/metrics")
        return payload
