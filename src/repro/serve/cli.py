"""``repro-serve``: run and talk to the experiment service.

Subcommands::

    repro-serve serve   --root DIR [--host H] [--port P] [--workers N]
                        [--tenants FILE]
    repro-serve submit  --url URL [--scenario FILE] [--on NAME]
                        [--duration S] [--grid AXIS=V1,V2]...
                        [--priority N] [--after JOB_ID]... [--wait]
    repro-serve status  --url URL [JOB_ID] [--json] [--state S]
    repro-serve events  --url URL JOB_ID [--after N] [--json]
    repro-serve analyze --url URL RUN [--pipeline NAME] [--json]
    repro-serve cancel  --url URL JOB_ID

``serve`` is the daemon (Ctrl-C to stop; jobs and catalogs persist under
``--root`` and reload on the next start; a ``tenants.toml`` in the root
switches on per-tenant auth/quotas).  Everything else is a thin client
over the HTTP/JSON API — see ``repro.serve.api`` for the routes.  The
client commands take ``--token`` (or ``$REPRO_SERVE_TOKEN``) against a
tenant-enforcing daemon.

Errors are one-liners on stderr, never tracebacks: user errors (unknown
job id, dependency cycle, bad request) exit 2; environmental failures
(unreachable daemon, auth, quota, server-side) exit 1.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import List, Optional

from repro.serve.client import ServeClient
from repro.serve.errors import DependencyCycle, JobNotFound, ServeError
from repro.serve.jobs import Job, render_jobs_table


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Persistent experiment service: queue experiment and "
                    "sweep jobs with priorities and dependencies, stream "
                    "live progress, browse run catalogs, and query cached "
                    "analyses over HTTP.")
    sub = parser.add_subparsers(dest="command", required=True)

    p_serve = sub.add_parser("serve", help="run the daemon")
    p_serve.add_argument("--root", type=Path, default=Path("serve-root"),
                         help="service root (jobs/ + catalogs/; "
                              "default ./serve-root)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8642,
                         help="TCP port (0 picks an ephemeral one; "
                              "default 8642)")
    p_serve.add_argument("--workers", type=int, default=2,
                         help="concurrent job processes (0 = accept "
                              "only; default 2)")
    p_serve.add_argument("--tenants", type=Path, default=None,
                         metavar="FILE",
                         help="tenants.toml enforcing per-tenant "
                              "auth/quotas (default ROOT/tenants.toml "
                              "when present)")

    p_submit = sub.add_parser("submit", help="submit a job")
    _add_url(p_submit)
    p_submit.add_argument("--scenario", type=Path, default=None,
                          metavar="FILE",
                          help="base scenario as TOML or JSON")
    p_submit.add_argument("--on", default="baseline", metavar="NAME",
                          help="experiment to run (default baseline)")
    p_submit.add_argument("--duration", type=float, default=None,
                          help="baseline observation window (seconds)")
    p_submit.add_argument("--grid", action="append", default=[],
                          metavar="AXIS=V1,V2",
                          help="sweep axis (repeatable); any --grid "
                               "makes the job a sweep")
    p_submit.add_argument("--catalog", default=None, metavar="NAME",
                          help="tenant catalog to run into "
                               "(default: the tenant's own, else "
                               "'default')")
    p_submit.add_argument("--parallel", action="store_true",
                          help="sweep jobs: fan grid points out across "
                               "processes inside the worker")
    p_submit.add_argument("--priority", type=int, default=0,
                          metavar="N",
                          help="dispatch priority (higher runs first; "
                               "default 0)")
    p_submit.add_argument("--after", action="append", default=[],
                          metavar="JOB_ID", dest="after",
                          help="dependency job id (repeatable): hold "
                               "this job until it finishes")
    p_submit.add_argument("--wait", action="store_true",
                          help="stream live progress until the job is "
                               "terminal; exit non-zero unless it "
                               "finished")
    p_submit.add_argument("--timeout", type=float, default=600.0,
                          help="--wait limit in seconds (default 600)")

    p_status = sub.add_parser("status",
                              help="job table, or one job's record")
    _add_url(p_status)
    p_status.add_argument("job", nargs="?", default=None,
                          help="job id (default: every job)")
    p_status.add_argument("--state", default=None,
                          help="filter the table by state "
                               "(queued/running/finished/failed/"
                               "cancelled/blocked/active)")
    p_status.add_argument("--json", action="store_true")

    p_events = sub.add_parser(
        "events", help="stream a job's live progress events")
    _add_url(p_events)
    p_events.add_argument("job", help="job id")
    p_events.add_argument("--after", type=int, default=0, metavar="N",
                          help="resume after event id N")
    p_events.add_argument("--json", action="store_true",
                          help="raw JSON lines instead of one-liners")

    p_analyze = sub.add_parser(
        "analyze", help="query a cached analysis for a stored run")
    _add_url(p_analyze)
    p_analyze.add_argument("run", help="catalog run id (see runs)")
    p_analyze.add_argument("--pipeline", default="metrics",
                           help="pipeline name (default metrics)")
    p_analyze.add_argument("--catalog", default=None, metavar="NAME")
    p_analyze.add_argument("--json", action="store_true",
                           help="print the full JSON payload")

    p_runs = sub.add_parser("runs", help="browse the stored runs")
    _add_url(p_runs)
    p_runs.add_argument("--catalog", default=None, metavar="NAME")
    p_runs.add_argument("--json", action="store_true")

    p_cancel = sub.add_parser("cancel", help="cancel a job")
    _add_url(p_cancel)
    p_cancel.add_argument("job")
    return parser


def _add_url(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--url", default="http://127.0.0.1:8642",
                        help="daemon base URL "
                             "(default http://127.0.0.1:8642)")
    parser.add_argument("--token", default=None,
                        help="tenant bearer token (default "
                             "$REPRO_SERVE_TOKEN)")


def _client(args) -> ServeClient:
    token = args.token or os.environ.get("REPRO_SERVE_TOKEN")
    return ServeClient(args.url, token=token)


# -- subcommands -----------------------------------------------------------------
def cmd_serve(args) -> int:
    from repro.serve.api import ExperimentService
    service = ExperimentService(args.root, host=args.host, port=args.port,
                                workers=args.workers,
                                tenants=args.tenants)
    queued = service.store.counts()["queued"]
    reloaded = f" ({queued} queued job(s) reloaded)" if queued else ""
    gated = ", tenants enforced" if service.tenants.enforced else ""
    print(f"repro-serve: listening on {service.url} "
          f"(root {service.root}, {args.workers} worker(s){gated})"
          f"{reloaded}",
          file=sys.stderr, flush=True)
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        print("repro-serve: shutting down (jobs persist; restart to "
              "resume the queue)", file=sys.stderr)
    return 0


def _event_line(record: dict) -> str:
    kind = record.get("event", "?")
    if kind == "point":
        k, n = record.get("k"), record.get("n")
        eps = record.get("events_per_sec")
        rate = f" ({eps:,.0f} events/s)" if eps else ""
        return (f"point {k}/{n} done: "
                f"{record.get('label')} -> {record.get('run_id')}{rate}")
    if kind == "finished":
        runs = ", ".join(record.get("run_ids") or []) or "-"
        return f"finished -> {runs}"
    if kind in ("failed", "blocked"):
        return f"{kind}: {record.get('error') or record.get('dependency')}"
    return kind


def cmd_submit(args) -> int:
    client = _client(args)
    scenario = None
    if args.scenario:
        from repro.config import Scenario
        scenario = Scenario.load(args.scenario).to_dict()
    job = client.submit(scenario=scenario, experiment=args.on,
                        duration=args.duration, grid=args.grid or None,
                        catalog=args.catalog, parallel=args.parallel,
                        priority=args.priority,
                        depends_on=args.after or None)
    line = f"{job['id']} {job['state']} ({job['kind']}: " \
           f"{job['spec'].get('experiment')})"
    if job.get("depends_on"):
        line += " after " + ",".join(job["depends_on"])
    print(line)
    if not args.wait:
        return 0
    # live status: render each progress event as it streams in
    try:
        for record in client.events(job["id"], timeout=args.timeout):
            print(f"{job['id']} {_event_line(record)}", file=sys.stderr,
                  flush=True)
    except (ServeError, OSError):
        pass                          # fall back to polling below
    final = client.wait(job["id"], timeout=args.timeout)
    line = f"{final['id']} {final['state']}"
    if final.get("run_ids"):
        line += " -> " + ", ".join(final["run_ids"])
    if final.get("error"):
        line += f" ({final['error']})"
    print(line)
    return 0 if final["state"] == "finished" else 1


def cmd_status(args) -> int:
    client = _client(args)
    if args.job:
        job = client.job(args.job)
        if args.json:
            json.dump(job, sys.stdout, indent=2)
            print()
        else:
            print(render_jobs_table([Job.from_dict(job)]))
            if job.get("error"):
                print(f"error: {job['error']}")
        return 0
    jobs = client.jobs(state=args.state)
    if args.json:
        json.dump(jobs, sys.stdout, indent=2)
        print()
    else:
        print(render_jobs_table([Job.from_dict(j) for j in jobs]))
    return 0


def cmd_events(args) -> int:
    client = _client(args)
    for record in client.events(args.job, after=args.after):
        if args.json:
            print(json.dumps(record), flush=True)
        else:
            print(f"{record.get('id', '-')}  {_event_line(record)}",
                  flush=True)
    return 0


def cmd_runs(args) -> int:
    client = _client(args)
    catalogs = client.runs(catalog=args.catalog)
    if args.json:
        json.dump(catalogs, sys.stdout, indent=2)
        print()
        return 0
    if not any(catalogs.values()):
        print("no runs stored", file=sys.stderr)
        return 1
    print(f"{'catalog':<12} {'run':<28} {'nodes':>5} {'records':>10} "
          f"{'duration':>9}  fingerprint")
    for name, rows in catalogs.items():
        for row in rows:
            duration = row.get("duration")
            print(f"{name:<12} {row['run']:<28} "
                  f"{row.get('nnodes') or '-':>5} "
                  f"{row.get('records', 0):>10,} "
                  f"{f'{duration:.0f} s' if duration else '-':>9}  "
                  f"{row.get('fingerprint') or '-'}")
    return 0


def cmd_analyze(args) -> int:
    client = _client(args)
    answer = client.analysis(args.run, pipeline=args.pipeline,
                             catalog=args.catalog)
    if args.json:
        json.dump(answer.payload, sys.stdout, indent=2)
        print()
        return 0
    print(f"{args.run} · {args.pipeline} "
          f"(etag {answer.etag}, "
          f"{'revalidated 304' if answer.from_cache else 'fresh'})")
    result = answer.result
    if isinstance(result, dict):
        for key, value in result.items():
            if isinstance(value, (int, float, str)) or value is None:
                print(f"  {key:<24} {value}")
            else:
                print(f"  {key:<24} {json.dumps(value)[:60]}")
    else:
        print(f"  {result}")
    return 0


def cmd_cancel(args) -> int:
    job = _client(args).cancel(args.job)
    print(f"{job['id']} {job['state']}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {"serve": cmd_serve, "submit": cmd_submit,
               "status": cmd_status, "events": cmd_events,
               "runs": cmd_runs, "analyze": cmd_analyze,
               "cancel": cmd_cancel}[args.command]
    try:
        return handler(args)
    except ServeError as exc:
        print(f"repro-serve: error: {exc}", file=sys.stderr)
        # user errors exit 2, environmental failures exit 1
        if isinstance(exc, (JobNotFound, DependencyCycle)) or \
                exc.status == 400:
            return 2
        return 1
    except TimeoutError as exc:
        print(f"repro-serve: error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"repro-serve: error: {exc.filename}: no such file",
              file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
