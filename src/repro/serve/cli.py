"""``repro-serve``: run and talk to the experiment service.

Subcommands::

    repro-serve serve   --root DIR [--host H] [--port P] [--workers N]
    repro-serve submit  --url URL [--scenario FILE] [--on NAME]
                        [--duration S] [--grid AXIS=V1,V2]... [--wait]
    repro-serve status  --url URL [JOB_ID] [--json] [--watch]
    repro-serve analyze --url URL RUN [--pipeline NAME] [--json]
    repro-serve cancel  --url URL JOB_ID

``serve`` is the daemon (Ctrl-C to stop; jobs and catalogs persist under
``--root`` and reload on the next start).  Everything else is a thin
client over the HTTP/JSON API — see ``repro.serve.api`` for the routes.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.serve.client import ServeClient, ServeError
from repro.serve.jobs import Job, render_jobs_table


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Persistent experiment service: queue experiment and "
                    "sweep jobs, browse run catalogs, and query cached "
                    "analyses over HTTP.")
    sub = parser.add_subparsers(dest="command", required=True)

    p_serve = sub.add_parser("serve", help="run the daemon")
    p_serve.add_argument("--root", type=Path, default=Path("serve-root"),
                         help="service root (jobs/ + catalogs/; "
                              "default ./serve-root)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8642,
                         help="TCP port (0 picks an ephemeral one; "
                              "default 8642)")
    p_serve.add_argument("--workers", type=int, default=2,
                         help="concurrent job processes (0 = accept "
                              "only; default 2)")

    p_submit = sub.add_parser("submit", help="submit a job")
    _add_url(p_submit)
    p_submit.add_argument("--scenario", type=Path, default=None,
                          metavar="FILE",
                          help="base scenario as TOML or JSON")
    p_submit.add_argument("--on", default="baseline", metavar="NAME",
                          help="experiment to run (default baseline)")
    p_submit.add_argument("--duration", type=float, default=None,
                          help="baseline observation window (seconds)")
    p_submit.add_argument("--grid", action="append", default=[],
                          metavar="AXIS=V1,V2",
                          help="sweep axis (repeatable); any --grid "
                               "makes the job a sweep")
    p_submit.add_argument("--catalog", default=None, metavar="NAME",
                          help="tenant catalog to run into "
                               "(default 'default')")
    p_submit.add_argument("--parallel", action="store_true",
                          help="sweep jobs: fan grid points out across "
                               "processes inside the worker")
    p_submit.add_argument("--wait", action="store_true",
                          help="block until the job is terminal; exit "
                               "non-zero unless it finished")
    p_submit.add_argument("--timeout", type=float, default=600.0,
                          help="--wait limit in seconds (default 600)")

    p_status = sub.add_parser("status",
                              help="job table, or one job's record")
    _add_url(p_status)
    p_status.add_argument("job", nargs="?", default=None,
                          help="job id (default: every job)")
    p_status.add_argument("--state", default=None,
                          help="filter the table by state "
                               "(queued/running/finished/failed/"
                               "cancelled/active)")
    p_status.add_argument("--json", action="store_true")

    p_analyze = sub.add_parser(
        "analyze", help="query a cached analysis for a stored run")
    _add_url(p_analyze)
    p_analyze.add_argument("run", help="catalog run id (see runs)")
    p_analyze.add_argument("--pipeline", default="metrics",
                           help="pipeline name (default metrics)")
    p_analyze.add_argument("--catalog", default=None, metavar="NAME")
    p_analyze.add_argument("--json", action="store_true",
                           help="print the full JSON payload")

    p_runs = sub.add_parser("runs", help="browse the stored runs")
    _add_url(p_runs)
    p_runs.add_argument("--catalog", default=None, metavar="NAME")
    p_runs.add_argument("--json", action="store_true")

    p_cancel = sub.add_parser("cancel", help="cancel a job")
    _add_url(p_cancel)
    p_cancel.add_argument("job")
    return parser


def _add_url(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--url", default="http://127.0.0.1:8642",
                        help="daemon base URL "
                             "(default http://127.0.0.1:8642)")


# -- subcommands -----------------------------------------------------------------
def cmd_serve(args) -> int:
    from repro.serve.api import ExperimentService
    service = ExperimentService(args.root, host=args.host, port=args.port,
                                workers=args.workers)
    queued = service.store.counts()["queued"]
    reloaded = f" ({queued} queued job(s) reloaded)" if queued else ""
    print(f"repro-serve: listening on {service.url} "
          f"(root {service.root}, {args.workers} worker(s)){reloaded}",
          file=sys.stderr, flush=True)
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        print("repro-serve: shutting down (jobs persist; restart to "
              "resume the queue)", file=sys.stderr)
    return 0


def cmd_submit(args) -> int:
    client = ServeClient(args.url)
    scenario = None
    if args.scenario:
        from repro.config import Scenario
        scenario = Scenario.load(args.scenario).to_dict()
    job = client.submit(scenario=scenario, experiment=args.on,
                        duration=args.duration, grid=args.grid or None,
                        catalog=args.catalog, parallel=args.parallel)
    print(f"{job['id']} {job['state']} ({job['kind']}: "
          f"{job['spec'].get('experiment')})")
    if not args.wait:
        return 0
    final = client.wait(job["id"], timeout=args.timeout)
    line = f"{final['id']} {final['state']}"
    if final.get("run_ids"):
        line += " -> " + ", ".join(final["run_ids"])
    if final.get("error"):
        line += f" ({final['error']})"
    print(line)
    return 0 if final["state"] == "finished" else 1


def cmd_status(args) -> int:
    client = ServeClient(args.url)
    if args.job:
        job = client.job(args.job)
        if args.json:
            json.dump(job, sys.stdout, indent=2)
            print()
        else:
            print(render_jobs_table([Job.from_dict(job)]))
            if job.get("error"):
                print(f"error: {job['error']}")
        return 0
    jobs = client.jobs(state=args.state)
    if args.json:
        json.dump(jobs, sys.stdout, indent=2)
        print()
    else:
        print(render_jobs_table([Job.from_dict(j) for j in jobs]))
    return 0


def cmd_runs(args) -> int:
    client = ServeClient(args.url)
    catalogs = client.runs(catalog=args.catalog)
    if args.json:
        json.dump(catalogs, sys.stdout, indent=2)
        print()
        return 0
    if not any(catalogs.values()):
        print("no runs stored", file=sys.stderr)
        return 1
    print(f"{'catalog':<12} {'run':<28} {'nodes':>5} {'records':>10} "
          f"{'duration':>9}  fingerprint")
    for name, rows in catalogs.items():
        for row in rows:
            duration = row.get("duration")
            print(f"{name:<12} {row['run']:<28} "
                  f"{row.get('nnodes') or '-':>5} "
                  f"{row.get('records', 0):>10,} "
                  f"{f'{duration:.0f} s' if duration else '-':>9}  "
                  f"{row.get('fingerprint') or '-'}")
    return 0


def cmd_analyze(args) -> int:
    client = ServeClient(args.url)
    answer = client.analysis(args.run, pipeline=args.pipeline,
                             catalog=args.catalog)
    if args.json:
        json.dump(answer.payload, sys.stdout, indent=2)
        print()
        return 0
    print(f"{args.run} · {args.pipeline} "
          f"(etag {answer.etag}, "
          f"{'revalidated 304' if answer.from_cache else 'fresh'})")
    result = answer.result
    if isinstance(result, dict):
        for key, value in result.items():
            if isinstance(value, (int, float, str)) or value is None:
                print(f"  {key:<24} {value}")
            else:
                print(f"  {key:<24} {json.dumps(value)[:60]}")
    else:
        print(f"  {result}")
    return 0


def cmd_cancel(args) -> int:
    job = ServeClient(args.url).cancel(args.job)
    print(f"{job['id']} {job['state']}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {"serve": cmd_serve, "submit": cmd_submit,
               "status": cmd_status, "runs": cmd_runs,
               "analyze": cmd_analyze, "cancel": cmd_cancel}[args.command]
    try:
        return handler(args)
    except ServeError as exc:
        print(f"repro-serve: error: {exc}", file=sys.stderr)
        return 1
    except TimeoutError as exc:
        print(f"repro-serve: error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"repro-serve: error: {exc.filename}: no such file",
              file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
