"""Per-job progress events: an append-only JSONL file per job.

Workers append one JSON object per line to ``jobs/<id>.events.jsonl``
while a job runs — ``started``, one ``point`` per finished grid point
(with the live events/sec the simulator achieved), and a terminal
``finished``/``failed``/``cancelled``/``blocked``.  Every event carries
a monotonically increasing ``id`` starting at 1, which is what the SSE
endpoint emits as the ``id:`` field and what ``Last-Event-ID`` resumes
from.

Appends are a single ``write()`` on an ``O_APPEND`` descriptor, so the
daemon and a spawned worker can both append without tearing a line; the
next id is re-derived from the file on every append, so it stays
correct across processes and daemon restarts.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Iterator, List, Optional, Union

#: event kinds that end a stream (the job will emit nothing further)
TERMINAL_EVENTS = ("finished", "failed", "cancelled", "blocked")


class EventLog:
    """One job's append-only progress stream."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)

    def append(self, event: str, **data) -> dict:
        """Durably append one event; returns it with its ``id`` set."""
        record = {"id": len(self.read()) + 1, "event": event,
                  "time": time.time(), **data}
        line = json.dumps(record, separators=(",", ":")) + "\n"
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(self.path, os.O_CREAT | os.O_WRONLY | os.O_APPEND,
                     0o644)
        try:
            os.write(fd, line.encode())
        finally:
            os.close(fd)
        return record

    def read(self, after: int = 0) -> List[dict]:
        """Every event with ``id > after``, in order."""
        try:
            text = self.path.read_text()
        except FileNotFoundError:
            return []
        out = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue              # torn trailing line mid-append
            if record.get("id", 0) > after:
                out.append(record)
        return out

    def follow(self, after: int = 0, poll: float = 0.2,
               timeout: Optional[float] = None,
               done=None) -> Iterator[dict]:
        """Yield events live until a terminal one (or ``done()`` says so).

        ``done`` is an optional zero-argument callable consulted between
        polls — the SSE endpoint passes "is the job file terminal", so a
        stream over a job whose worker died without a terminal event
        still ends.
        """
        deadline = (time.monotonic() + timeout) if timeout else None
        last = after
        while True:
            fresh = self.read(after=last)
            for record in fresh:
                last = record["id"]
                yield record
                if record.get("event") in TERMINAL_EVENTS:
                    return
            if done is not None and done():
                # drain anything written between read() and done()
                for record in self.read(after=last):
                    last = record["id"]
                    yield record
                return
            if deadline and time.monotonic() >= deadline:
                return
            time.sleep(poll)
