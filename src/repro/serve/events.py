"""Per-job progress events: an append-only JSONL file per job.

Workers append one JSON object per line to ``jobs/<id>.events.jsonl``
while a job runs — ``started``, one ``point`` per finished grid point
(with the live events/sec the simulator achieved), and a terminal
``finished``/``failed``/``cancelled``/``blocked``.  :meth:`EventLog.
read` stamps every event with a monotonically increasing ``id``
starting at 1, which is what the SSE endpoint emits as the ``id:``
field and what ``Last-Event-ID`` resumes from.

Appends are a single ``write()`` on an ``O_APPEND`` descriptor, so the
daemon and a spawned worker can both append without tearing a line.
Ids are **not** persisted: they are derived from line position at read
time, so two processes appending concurrently can never mint the same
id (and appending stays O(1) — no re-read of the log per event).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Iterator, List, Optional, Union

#: event kinds that end a stream (the job will emit nothing further)
TERMINAL_EVENTS = ("finished", "failed", "cancelled", "blocked")


class EventLog:
    """One job's append-only progress stream."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)

    def append(self, event: str, **data) -> dict:
        """Durably append one event; returns the written record.

        The record carries no ``id`` on disk — ids are assigned by
        line position in :meth:`read`, which keeps them unique even
        when several processes append concurrently.
        """
        record = {"event": event, "time": time.time(), **data}
        line = json.dumps(record, separators=(",", ":")) + "\n"
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(self.path, os.O_CREAT | os.O_WRONLY | os.O_APPEND,
                     0o644)
        try:
            os.write(fd, line.encode())
        finally:
            os.close(fd)
        return record

    def read(self, after: int = 0) -> List[dict]:
        """Every event with ``id > after``, in order.

        ``id`` is the event's 1-based position among the parseable
        lines of the file.  Once written a line never moves, so ids are
        stable across reads, processes, and daemon restarts (any ``id``
        persisted by an older release is overridden by position — the
        two agree, since old appenders were sequential).
        """
        try:
            text = self.path.read_text()
        except FileNotFoundError:
            return []
        out = []
        position = 0
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue              # torn trailing line mid-append
            position += 1
            record["id"] = position
            if position > after:
                out.append(record)
        return out

    def follow(self, after: int = 0, poll: float = 0.2,
               timeout: Optional[float] = None,
               done=None) -> Iterator[dict]:
        """Yield events live until a terminal one (or ``done()`` says so).

        ``done`` is an optional zero-argument callable consulted between
        polls — the SSE endpoint passes "is the job file terminal", so a
        stream over a job whose worker died without a terminal event
        still ends.
        """
        deadline = (time.monotonic() + timeout) if timeout else None
        last = after
        while True:
            for record in self.read(after=last):
                last = record["id"]
                yield record
                if record.get("event") in TERMINAL_EVENTS:
                    return
            if done is not None and done():
                # the writer may have marked the job file terminal just
                # before appending the terminal event: drain, give it
                # one poll interval of grace, and drain again so the
                # stream still carries the event consumers key off
                terminal_seen = False
                for record in self.read(after=last):
                    last = record["id"]
                    yield record
                    terminal_seen = record.get("event") in TERMINAL_EVENTS
                if not terminal_seen:
                    time.sleep(poll)
                    for record in self.read(after=last):
                        last = record["id"]
                        yield record
                return
            if deadline and time.monotonic() >= deadline:
                return
            time.sleep(poll)
