"""Durable experiment jobs: one JSON state file per job, atomic renames.

A :class:`Job` is one submitted unit of work — a single experiment or a
grid sweep — moving through the simexpal-style lifecycle::

    queued ──> running ──> finished
                  │    └─> failed
                  └──────> cancelled        (queued jobs cancel directly)

The :class:`JobStore` keeps every job as ``jobs/<id>.json`` under the
service root.  All writes go through a per-process temp file and
``os.replace``, so a crash at any instant leaves either the old state or
the new state on disk — never a torn file.  Two processes legitimately
write job files (the daemon owns submission/cancellation, the spawned
worker owns the running→terminal edge); atomic whole-file replacement is
what makes that safe.

On daemon restart :meth:`JobStore.recover` reloads the directory:
``queued`` jobs re-enter the queue untouched, and ``running`` jobs whose
worker process no longer exists (the daemon died mid-run) are re-queued
— a submitted job is never silently lost.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

JOB_FORMAT = "repro-serve-job-v1"

#: lifecycle states, in order of appearance
STATES = ("queued", "running", "finished", "failed", "cancelled")
#: states a job can still move out of
ACTIVE_STATES = ("queued", "running")
#: states a job never leaves
TERMINAL_STATES = ("finished", "failed", "cancelled")

#: legal lifecycle edges (anything else is a store bug)
_TRANSITIONS = {
    "queued": {"running", "cancelled", "failed"},
    "running": {"finished", "failed", "cancelled", "queued"},  # requeue
}


class JobError(ValueError):
    """An illegal job operation (bad state transition, unknown id)."""


@dataclass
class Job:
    """One submitted unit of work and its durable state."""

    id: str
    kind: str                    # "experiment" | "sweep"
    state: str = "queued"
    #: what to run: scenario dict, experiment name, duration, grid
    #: specs, catalog name, parallelism — see ``repro.serve.pool``
    spec: Dict[str, object] = field(default_factory=dict)
    created: float = 0.0         # epoch seconds
    started: Optional[float] = None
    finished: Optional[float] = None
    pid: Optional[int] = None    # worker process while running
    error: Optional[str] = None
    #: catalog run ids this job produced (one per grid point)
    run_ids: List[str] = field(default_factory=list)
    #: summary metrics (experiment) or per-point dicts (sweep)
    result: Optional[object] = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_dict(self) -> dict:
        out = asdict(self)
        out["format"] = JOB_FORMAT
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Job":
        if data.get("format") not in (None, JOB_FORMAT):
            raise JobError(f"not a {JOB_FORMAT} record")
        fields = {k: v for k, v in data.items() if k != "format"}
        job = cls(**fields)
        if job.state not in STATES:
            raise JobError(f"job {job.id}: unknown state {job.state!r}")
        return job


def _pid_alive(pid: Optional[int]) -> bool:
    if not pid:
        return False
    try:
        os.kill(pid, 0)
    except (OSError, ProcessLookupError):
        return False
    return True


class JobStore:
    """The ``jobs/`` directory: create, persist, and reload jobs."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)

    # -- creation -------------------------------------------------------------
    def create(self, kind: str, spec: Optional[dict] = None) -> Job:
        """Claim the next free job id and persist it as ``queued``.

        ``O_CREAT|O_EXCL`` is the atomic primitive: whichever process
        creates ``<id>.json`` first owns that id, so concurrent
        submissions never collide.
        """
        if kind not in ("experiment", "sweep"):
            raise JobError(f"unknown job kind {kind!r}")
        self.root.mkdir(parents=True, exist_ok=True)
        existing = self.ids()
        n = 1 + (int(existing[-1].rpartition("-")[2]) if existing else 0)
        while True:
            job_id = f"job-{n:06d}"
            path = self._path(job_id)
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                n += 1
                continue
            job = Job(id=job_id, kind=kind, spec=dict(spec or {}),
                      created=time.time())
            payload = json.dumps(job.to_dict(), indent=2)
            try:
                os.write(fd, payload.encode())
            finally:
                os.close(fd)
            return job

    # -- persistence ----------------------------------------------------------
    def save(self, job: Job) -> Path:
        """Atomically (re)write one job's state file."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(job.id)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(job.to_dict(), indent=2))
        os.replace(tmp, path)
        return path

    def load(self, job_id: str) -> Job:
        path = self._path(job_id)
        try:
            return Job.from_dict(json.loads(path.read_text()))
        except FileNotFoundError:
            raise JobError(f"no job {job_id!r} under {self.root}") from None

    def ids(self) -> List[str]:
        if not self.root.is_dir():
            return []
        return sorted(p.stem for p in self.root.glob("job-*.json"))

    def jobs(self, state: Optional[str] = None) -> List[Job]:
        """Every stored job (optionally one state), sorted by id."""
        out = []
        for job_id in self.ids():
            try:
                job = self.load(job_id)
            except (JobError, ValueError):
                continue          # torn by hand-editing; never by us
            if state is None or job.state == state:
                out.append(job)
        return out

    # -- lifecycle ------------------------------------------------------------
    def transition(self, job_id: str, state: str, **fields) -> Job:
        """Load, legally transition, stamp timestamps, save, return."""
        job = self.load(job_id)
        allowed = _TRANSITIONS.get(job.state, set())
        if state not in allowed:
            raise JobError(f"job {job_id}: cannot go "
                           f"{job.state} -> {state}")
        job.state = state
        for name, value in fields.items():
            setattr(job, name, value)
        if state == "running" and job.started is None:
            job.started = time.time()
        if state in TERMINAL_STATES and job.finished is None:
            job.finished = time.time()
        if state == "queued":     # requeued after a daemon crash
            job.pid = None
            job.started = None
        self.save(job)
        return job

    def recover(self) -> List[Job]:
        """Reload after a restart; returns the jobs ready to execute.

        ``queued`` jobs pass through untouched.  ``running`` jobs whose
        recorded worker pid is gone are re-queued (the daemon died under
        them; the simulation is deterministic, so re-running is safe —
        the partially-written catalog run keeps its own directory and a
        fresh one is claimed).  Running jobs whose pid is still alive are
        left alone: their worker will write the terminal state itself.
        """
        ready: List[Job] = []
        for job in self.jobs():
            if job.state == "queued":
                ready.append(job)
            elif job.state == "running" and not _pid_alive(job.pid):
                ready.append(self.transition(job.id, "queued"))
        return ready

    def counts(self) -> Dict[str, int]:
        """Jobs per state (zero-filled), for status endpoints and obs."""
        out = {state: 0 for state in STATES}
        for job in self.jobs():
            out[job.state] += 1
        return out

    # -- internals ------------------------------------------------------------
    def _path(self, job_id: str) -> Path:
        if not job_id.startswith("job-") or "/" in job_id or "\\" in job_id:
            raise JobError(f"bad job id {job_id!r}")
        return self.root / f"{job_id}.json"


# -- presentation --------------------------------------------------------------
def render_jobs_table(jobs: Sequence[Job]) -> str:
    """Fixed-width status table, simexpal-style: one line per job."""
    if not jobs:
        return "no jobs"
    headers = ("job", "kind", "experiment", "state", "runs", "info")
    rows = []
    for job in jobs:
        experiment = str(job.spec.get("experiment", "baseline"))
        if job.kind == "sweep":
            grid = job.spec.get("grid") or []
            experiment += f" x {len(grid)} axis" + \
                ("es" if len(grid) != 1 else "")
        info = job.error or ""
        if job.state == "finished" and job.started and job.finished:
            info = f"{job.finished - job.started:.1f}s"
        rows.append((job.id, job.kind, experiment, job.state,
                     str(len(job.run_ids)) if job.run_ids else "-",
                     info))
    widths = [max(len(h), *(len(r[i]) for r in rows))
              for i, h in enumerate(headers)]

    def line(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    bar = tuple("-" * w for w in widths)
    return "\n".join([line(headers), line(bar)] + [line(r) for r in rows])
