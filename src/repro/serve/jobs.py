"""Durable experiment jobs: one JSON state file per job, atomic renames.

A :class:`Job` is one submitted unit of work — a single experiment or a
grid sweep — moving through the simexpal-style lifecycle::

    queued ──> running ──> finished
        │         │    └─> failed
        │         └──────> cancelled        (queued jobs cancel directly)
        └────────────────> blocked          (a dependency failed)

Jobs form a DAG: each carries an integer ``priority`` (higher runs
first) and a ``depends_on`` list of job ids.  A job is *runnable* only
once every dependency is ``finished``; a dependency that ends
``failed``/``cancelled``/``blocked`` transitions its dependents to the
``blocked`` terminal state instead — the cascade is **derived from
dependency states on disk**, never from in-memory bookkeeping, so it
is exactly as crash-safe as the job files themselves.

The :class:`JobStore` keeps every job as ``jobs/<id>.json`` under the
service root.  All writes go through a per-process temp file and
``os.replace``, so a crash at any instant leaves either the old state or
the new state on disk — never a torn file.  Two processes legitimately
write job files (the daemon owns submission/cancellation, the spawned
worker owns the running→terminal edge); atomic whole-file replacement is
what makes that safe.

On daemon restart :meth:`JobStore.recover` reloads the directory:
``queued`` jobs re-enter the queue (jobs whose dependencies already
failed are settled to ``blocked`` immediately), and ``running`` jobs
whose worker process no longer exists (the daemon died mid-run) are
re-queued — a submitted job is never silently lost, and a half-
dispatched DAG resumes exactly where it stopped.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.serve.errors import DependencyCycle
from repro.serve.events import EventLog

JOB_FORMAT = "repro-serve-job-v1"

#: lifecycle states, in order of appearance
STATES = ("queued", "running", "finished", "failed", "cancelled",
          "blocked")
#: states a job can still move out of
ACTIVE_STATES = ("queued", "running")
#: states a job never leaves
TERMINAL_STATES = ("finished", "failed", "cancelled", "blocked")

#: legal lifecycle edges (anything else is a store bug)
_TRANSITIONS = {
    "queued": {"running", "cancelled", "failed", "blocked"},
    "running": {"finished", "failed", "cancelled", "queued"},  # requeue
}

#: dependency states that doom a dependent (vs. merely holding it)
_DOOMED_DEP_STATES = ("failed", "cancelled", "blocked")


class JobError(ValueError):
    """An illegal job operation (bad state transition, unknown id)."""


@dataclass
class Job:
    """One submitted unit of work and its durable state."""

    id: str
    kind: str                    # "experiment" | "sweep"
    state: str = "queued"
    #: what to run: scenario dict, experiment name, duration, grid
    #: specs, catalog name, parallelism — see ``repro.serve.pool``
    spec: Dict[str, object] = field(default_factory=dict)
    created: float = 0.0         # epoch seconds
    started: Optional[float] = None
    finished: Optional[float] = None
    pid: Optional[int] = None    # worker process while running
    error: Optional[str] = None
    #: catalog run ids this job produced (one per grid point)
    run_ids: List[str] = field(default_factory=list)
    #: summary metrics (experiment) or per-point dicts (sweep)
    result: Optional[object] = None
    #: dispatch order: higher runs first, ties break by job id
    priority: int = 0
    #: job ids that must reach ``finished`` before this one starts
    depends_on: List[str] = field(default_factory=list)
    #: owning tenant name (None on an open, tenant-less daemon)
    tenant: Optional[str] = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_dict(self) -> dict:
        out = asdict(self)
        out["format"] = JOB_FORMAT
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Job":
        if data.get("format") not in (None, JOB_FORMAT):
            raise JobError(f"not a {JOB_FORMAT} record")
        fields = {k: v for k, v in data.items() if k != "format"}
        job = cls(**fields)
        if job.state not in STATES:
            raise JobError(f"job {job.id}: unknown state {job.state!r}")
        return job


def _pid_alive(pid: Optional[int]) -> bool:
    if not pid:
        return False
    try:
        os.kill(pid, 0)
    except (OSError, ProcessLookupError):
        return False
    return True


class JobStore:
    """The ``jobs/`` directory: create, persist, and reload jobs."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)

    # -- creation -------------------------------------------------------------
    def create(self, kind: str, spec: Optional[dict] = None, *,
               priority: int = 0,
               depends_on: Optional[Sequence[str]] = None,
               tenant: Optional[str] = None) -> Job:
        """Claim the next free job id and persist it as ``queued``.

        ``O_CREAT|O_EXCL`` is the atomic primitive: whichever process
        creates ``<id>.json`` first owns that id, so concurrent
        submissions never collide.  ``depends_on`` ids must name
        existing jobs, and the dependency closure must be acyclic —
        a cycle is rejected here, at submit time, before anything is
        persisted.
        """
        if kind not in ("experiment", "sweep"):
            raise JobError(f"unknown job kind {kind!r}")
        depends_on = [str(d) for d in (depends_on or [])]
        self.check_dependencies(depends_on)
        self.root.mkdir(parents=True, exist_ok=True)
        existing = self.ids()
        n = 1 + (int(existing[-1].rpartition("-")[2]) if existing else 0)
        while True:
            job_id = f"job-{n:06d}"
            path = self._path(job_id)
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                n += 1
                continue
            job = Job(id=job_id, kind=kind, spec=dict(spec or {}),
                      created=time.time(), priority=int(priority),
                      depends_on=depends_on, tenant=tenant)
            payload = json.dumps(job.to_dict(), indent=2)
            try:
                os.write(fd, payload.encode())
            finally:
                os.close(fd)
            return job

    def check_dependencies(self, depends_on: Sequence[str]) -> None:
        """Reject unknown dependency ids and dependency cycles.

        A job submitted through the API can only depend on jobs that
        already exist, so the API alone can never close a cycle — but
        hand-edited job files (or direct store use) can, and a cyclic
        DAG would hold its members ``queued`` forever.  Walking the
        closure here turns that silent hang into a submit-time error.
        """
        seen: Dict[str, int] = {}      # id -> 0 visiting, 1 done

        def visit(job_id: str, trail: Tuple[str, ...]) -> None:
            mark = seen.get(job_id)
            if mark == 1:
                return
            if mark == 0:
                cycle = trail[trail.index(job_id):] + (job_id,)
                raise DependencyCycle(
                    "dependency cycle: " + " -> ".join(cycle))
            seen[job_id] = 0
            for dep in self.load(job_id).depends_on:
                visit(dep, trail + (job_id,))
            seen[job_id] = 1

        for dep in depends_on:
            if not self._path(dep).exists():
                raise JobError(f"unknown dependency {dep!r}")
        for dep in depends_on:
            visit(dep, ())

    # -- persistence ----------------------------------------------------------
    def save(self, job: Job) -> Path:
        """Atomically (re)write one job's state file."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(job.id)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(job.to_dict(), indent=2))
        os.replace(tmp, path)
        return path

    def load(self, job_id: str) -> Job:
        path = self._path(job_id)
        try:
            return Job.from_dict(json.loads(path.read_text()))
        except FileNotFoundError:
            raise JobError(f"no job {job_id!r} under {self.root}") from None

    def ids(self) -> List[str]:
        if not self.root.is_dir():
            return []
        return sorted(p.stem for p in self.root.glob("job-*.json"))

    def jobs(self, state: Optional[str] = None) -> List[Job]:
        """Every stored job (optionally one state), sorted by id."""
        out = []
        for job_id in self.ids():
            try:
                job = self.load(job_id)
            except (JobError, ValueError):
                continue          # torn by hand-editing; never by us
            if state is None or job.state == state:
                out.append(job)
        return out

    def events(self, job_id: str) -> EventLog:
        """The job's progress-event log (exists once anything ran)."""
        path = self._path(job_id)          # validates the id
        return EventLog(path.with_name(f"{job_id}.events.jsonl"))

    # -- lifecycle ------------------------------------------------------------
    def transition(self, job_id: str, state: str, **fields) -> Job:
        """Load, legally transition, stamp timestamps, save, return."""
        job = self.load(job_id)
        allowed = _TRANSITIONS.get(job.state, set())
        if state not in allowed:
            raise JobError(f"job {job_id}: cannot go "
                           f"{job.state} -> {state}")
        job.state = state
        for name, value in fields.items():
            setattr(job, name, value)
        if state == "running" and job.started is None:
            job.started = time.time()
        if state in TERMINAL_STATES and job.finished is None:
            job.finished = time.time()
        if state == "queued":     # requeued after a daemon crash
            job.pid = None
            job.started = None
        self.save(job)
        return job

    # -- scheduling -----------------------------------------------------------
    def readiness(self, job: Job,
                  cache: Optional[Dict[str, str]] = None
                  ) -> Tuple[str, Optional[str]]:
        """Is a queued job dispatchable?  ``(verdict, blocking_dep)``.

        * ``("ready", None)`` — every dependency is ``finished``;
        * ``("held", dep_id)`` — some dependency is still active;
        * ``("doomed", dep_id)`` — a dependency failed / was cancelled /
          is itself blocked: the job should transition to ``blocked``.

        ``cache`` memoizes dependency states across one scheduling pass
        (id -> state) so a pass over N dependents costs one load per
        distinct dependency, not one per edge.
        """
        cache = cache if cache is not None else {}
        for dep_id in job.depends_on:
            state = cache.get(dep_id)
            if state is None:
                try:
                    state = self.load(dep_id).state
                except JobError:
                    state = "failed"       # dep file vanished: doomed
                cache[dep_id] = state
            if state in _DOOMED_DEP_STATES:
                return "doomed", dep_id
            if state != "finished":
                return "held", dep_id
        return "ready", None

    def completed_run_ids(self, job_id: str) -> List[str]:
        """Catalog run ids of grid points a (possibly dead) worker
        finished, from the job's event log — one ``point`` event lands
        per completed point, so the log is the durable progress record
        even when the worker never wrote a terminal state."""
        out: List[str] = []
        for record in self.events(job_id).read():
            if record.get("event") == "point" and record.get("run_id"):
                run_id = str(record["run_id"])
                if run_id not in out:
                    out.append(run_id)
        return out

    def block(self, job_id: str, dep_id: str) -> Job:
        """Settle a queued job whose dependency failed, with an event.

        The event lands before the terminal state write so a follower
        closing on "job is terminal" still sees it.
        """
        self.events(job_id).append("blocked", job=job_id,
                                   dependency=dep_id)
        return self.transition(
            job_id, "blocked",
            error=f"dependency {dep_id} did not finish")

    def recover(self) -> List[Job]:
        """Reload after a restart; returns the jobs ready to schedule.

        ``queued`` jobs pass through (ones whose dependencies already
        failed are settled to ``blocked`` here — the cascade survives
        the daemon that should have applied it).  ``running`` jobs whose
        recorded worker pid is gone are re-queued (the daemon died under
        them; re-running is safe — the worker's periodic checkpoints
        let the new run resume rather than start over, and the
        partially-written catalog run keeps its own directory).  The
        run ids of grid points the dead worker already completed are
        harvested from the job's event log onto the job file, so the
        progress survives the requeue and the resumed sweep skips those
        points.  Running jobs whose pid is still alive are left alone:
        their worker will write the terminal state itself.  The
        returned jobs may still be *held* by unfinished dependencies —
        the scheduler re-derives readiness per pass.
        """
        requeued = []
        for job in self.jobs():
            if job.state == "running" and not _pid_alive(job.pid):
                run_ids = self.completed_run_ids(job.id)
                requeued.append(self.transition(job.id, "queued",
                                                run_ids=run_ids))
        ready: List[Job] = []
        dep_states: Dict[str, str] = {}
        for job in self.jobs("queued"):
            verdict, dep = self.readiness(job, dep_states)
            if verdict == "doomed":
                self.block(job.id, dep)
            else:
                ready.append(job)
        return ready

    def counts(self) -> Dict[str, int]:
        """Jobs per state (zero-filled), for status endpoints and obs."""
        out = {state: 0 for state in STATES}
        for job in self.jobs():
            out[job.state] += 1
        return out

    # -- internals ------------------------------------------------------------
    def _path(self, job_id: str) -> Path:
        if not job_id.startswith("job-") or "/" in job_id or "\\" in job_id:
            raise JobError(f"bad job id {job_id!r}")
        return self.root / f"{job_id}.json"


# -- presentation --------------------------------------------------------------
def render_jobs_table(jobs: Sequence[Job]) -> str:
    """Fixed-width status table, simexpal-style: one line per job."""
    if not jobs:
        return "no jobs"
    headers = ("job", "kind", "experiment", "state", "pri", "deps",
               "runs", "info")
    rows = []
    for job in jobs:
        experiment = str(job.spec.get("experiment", "baseline"))
        if job.kind == "sweep":
            grid = job.spec.get("grid") or []
            experiment += f" x {len(grid)} axis" + \
                ("es" if len(grid) != 1 else "")
        info = job.error or ""
        if job.state == "finished" and job.started and job.finished:
            info = f"{job.finished - job.started:.1f}s"
        deps = ",".join(d.rpartition("-")[2].lstrip("0") or "0"
                        for d in job.depends_on) or "-"
        rows.append((job.id, job.kind, experiment, job.state,
                     str(job.priority), deps,
                     str(len(job.run_ids)) if job.run_ids else "-",
                     info))
    widths = [max(len(h), *(len(r[i]) for r in rows))
              for i, h in enumerate(headers)]

    def line(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    bar = tuple("-" * w for w in widths)
    return "\n".join([line(headers), line(bar)] + [line(r) for r in rows])
