"""The worker pool: a priority/DAG scheduler over spawned processes.

Each job runs in its own ``multiprocessing`` (spawn) process so a
simulation crash, a hard kill, or an out-of-memory death never takes the
daemon down.  The worker owns the ``running -> finished/failed`` edge of
the job file (written durably via :class:`~repro.serve.jobs.JobStore`);
the pool's scheduler thread only spawns, reaps, and reconciles — if a
worker vanishes without writing a terminal state, the pool records
``failed`` (or ``cancelled`` when the pool itself terminated it).

Scheduling is not FIFO: each pass dispatches the highest-``priority``
*runnable* queued job (ties break by job id, i.e. submit order).  A job
with ``depends_on`` is held until every dependency is ``finished``; a
dependency that ends ``failed``/``cancelled``/``blocked`` transitions
the dependent to ``blocked`` (see :meth:`JobStore.readiness` — the
verdict is re-derived from job files each pass, so a daemon crash
between passes loses nothing).  Tenants with a ``max_running`` limit
are likewise held, not rejected, while at their concurrency cap.

While a job runs its worker appends progress events — ``started``, one
``point`` per grid point with the simulator's achieved events/sec, and
a terminal ``finished``/``failed`` — to the job's
:class:`~repro.serve.events.EventLog`, which the API streams as
Server-Sent Events.

Execution reuses the existing fan-out machinery unchanged:

* ``kind == "experiment"`` — :meth:`repro.core.ExperimentRunner.run`
  with the job's scenario, streaming the capture into the job's
  multi-tenant catalog root;
* ``kind == "sweep"`` — :func:`repro.config.run_sweep` over the job's
  grid axes, every grid point cataloged; the stamped
  ``SweepResult.run_id``s map points back to stored runs.
"""

from __future__ import annotations

import multiprocessing as mp
import threading
import time
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple, Union

from repro.serve.jobs import Job, JobError, JobStore

#: subdirectory of the service root holding per-tenant run catalogs
CATALOGS_DIR = "catalogs"
#: subdirectory of the service root holding job state files
JOBS_DIR = "jobs"
#: subdirectory of the service root holding per-job checkpoint files
CHECKPOINTS_DIR = "checkpoints"
DEFAULT_CATALOG = "default"
#: simulated seconds between worker checkpoints (spec key
#: ``checkpoint_every`` overrides; 0/false disables)
DEFAULT_CHECKPOINT_EVERY = 60.0


def catalog_root(root: Union[str, Path], name: str = DEFAULT_CATALOG) -> Path:
    """The run-catalog directory of one tenant under a service root."""
    if not name or not all(c.isalnum() or c in "-_." for c in name):
        raise JobError(f"bad catalog name {name!r}")
    return Path(root) / CATALOGS_DIR / name


def execute_job(job: Job, root: Union[str, Path],
                progress: Optional[Callable[..., object]] = None) -> dict:
    """Run one job's work in-process; returns ``{summary, run_ids}``.

    Top-level and importable so both the spawned worker and direct
    callers (tests, a future synchronous mode) share one code path.
    ``progress(event, **data)`` is called per grid point (and per
    experiment completion) when given — the worker wires it to the
    job's event log.

    Workers checkpoint periodically (every ``checkpoint_every``
    simulated seconds from the spec, default
    :data:`DEFAULT_CHECKPOINT_EVERY`; 0 disables) into
    ``<root>/checkpoints/<job-id>/``.  A job re-queued after a worker
    death resumes from those files: an experiment continues
    bit-identically from its last checkpoint, a sweep skips its
    finished points and resumes the interrupted one.  The directory is
    removed once the job finishes.
    """
    import shutil
    from time import perf_counter

    from repro.config import Scenario, parse_axis_spec, run_sweep
    from repro.core.experiments import ExperimentRunner
    from repro.obs.recorder import events_per_second

    emit = progress or (lambda event, **data: None)
    spec = job.spec
    scenario = Scenario.from_dict(spec["scenario"]) \
        if spec.get("scenario") else Scenario()
    experiment = spec.get("experiment", "baseline")
    duration = spec.get("duration")
    sink = catalog_root(root, spec.get("catalog", DEFAULT_CATALOG))
    sink.mkdir(parents=True, exist_ok=True)
    every = spec.get("checkpoint_every", DEFAULT_CHECKPOINT_EVERY) or None
    ckdir = Path(root) / CHECKPOINTS_DIR / job.id

    if job.kind == "sweep":
        axes = [parse_axis_spec(s) for s in spec.get("grid", [])]
        if not axes:
            raise JobError("sweep job lists no grid axes")

        def on_point(done, total, result, eps):
            emit("point", k=done, n=total, label=result.label,
                 run_id=result.run_id, events_per_sec=eps,
                 metrics={k: result.metrics.get(k) for k in
                          ("total_requests", "requests_per_second")})

        results = run_sweep(scenario, axes, experiment=experiment,
                            duration=duration, sink=str(sink),
                            parallel=bool(spec.get("parallel", False)),
                            workers=spec.get("workers"),
                            obs=True, on_point=on_point,
                            checkpoint_every=every,
                            checkpoint_dir=str(ckdir) if every else None)
        shutil.rmtree(ckdir, ignore_errors=True)
        return {"summary": [r.to_dict() for r in results],
                "run_ids": [r.run_id for r in results if r.run_id]}

    runner = ExperimentRunner(scenario=scenario, sink=sink, obs=True)
    resume_from = next(ckdir.glob("*.ckpt"), None) if every else None
    wall = perf_counter()
    if resume_from is not None:
        result = runner.run(experiment, resume_from=resume_from)
    else:
        result = runner.run(experiment, duration=duration,
                            checkpoint_every=every,
                            checkpoint_dir=ckdir if every else None)
    wall = perf_counter() - wall
    shutil.rmtree(ckdir, ignore_errors=True)
    run_dir = getattr(runner, "last_run_dir", None)
    emit("point", k=1, n=1, label=experiment,
         run_id=run_dir.name if run_dir else None,
         events_per_sec=events_per_second(result.obs, wall),
         metrics={"total_requests": result.metrics.total_requests})
    return {"summary": result.metrics.to_dict(),
            "run_ids": [run_dir.name] if run_dir else []}


def _job_main(root: str, job_id: str) -> None:
    """Worker process entry point (top level: must pickle under spawn)."""
    store = JobStore(Path(root) / JOBS_DIR)
    try:
        job = store.transition(job_id, "running",
                               pid=mp.current_process().pid)
    except JobError:
        return                    # cancelled between spawn and start
    log = store.events(job_id)
    log.append("started", job=job_id, kind=job.kind,
               experiment=job.spec.get("experiment", "baseline"),
               pid=job.pid)
    # terminal events go into the log *before* the terminal job-file
    # write: SSE followers close once the job file is terminal, so the
    # reverse order could end a stream without its terminal event
    try:
        outcome = execute_job(job, root,
                              progress=lambda event, **data:
                              log.append(event, job=job_id, **data))
    except Exception as exc:
        error = f"{type(exc).__name__}: {exc}"
        log.append("failed", job=job_id, error=error)
        try:
            store.transition(job_id, "failed", error=error)
        except JobError:
            pass                  # cancelled underneath us; keep that
        return
    log.append("finished", job=job_id, run_ids=outcome["run_ids"])
    try:
        store.transition(job_id, "finished",
                         result=outcome["summary"],
                         run_ids=outcome["run_ids"])
    except JobError:
        pass                      # cancelled in the final instants


class WorkerPool:
    """Runs up to ``workers`` concurrent job processes off the DAG.

    ``workers=0`` makes an accept-only pool: jobs queue durably but
    nothing executes — the mode a drained or restarting daemon uses, and
    what the restart-survival tests exercise.  ``tenants`` (a
    :class:`~repro.serve.tenants.Tenants`) supplies per-tenant
    ``max_running`` concurrency caps.
    """

    def __init__(self, root: Union[str, Path], store: JobStore,
                 workers: int = 2, obs=None, poll: float = 0.05,
                 tenants=None):
        self.root = Path(root)
        self.store = store
        self.workers = max(int(workers), 0)
        self.poll = poll
        self.tenants = tenants
        if obs is None:
            from repro.obs import NULL_REGISTRY
            obs = NULL_REGISTRY
        self.registry = obs
        self._ctx = mp.get_context("spawn")
        #: queued job id -> (priority, depends_on, tenant)
        self._queue: Dict[str, Tuple[int, Tuple[str, ...],
                                     Optional[str]]] = {}
        self._procs: Dict[str, object] = {}
        #: running job id -> tenant (for max_running accounting)
        self._proc_tenants: Dict[str, Optional[str]] = {}
        self._cancelling: set = set()
        self._cond = threading.Condition()
        self._stopping = False
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> "WorkerPool":
        """Recover durable state and start the scheduler thread."""
        for job in self.store.recover():
            with self._cond:
                self._enqueue(job)
        self._observe_depth()
        if self.workers > 0:
            self._thread = threading.Thread(target=self._run,
                                            name="repro-serve-pool",
                                            daemon=True)
            self._thread.start()
        return self

    def stop(self, wait: bool = True, timeout: float = 30.0) -> None:
        """Stop scheduling; optionally wait for running jobs to finish."""
        with self._cond:
            self._stopping = True
            self._cond.notify_all()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
        if wait:
            for proc in list(self._procs.values()):
                proc.join(timeout=timeout)
            self._reap()

    # -- queue ----------------------------------------------------------------
    def submit(self, job_id: str) -> None:
        with self._cond:
            self._enqueue(self.store.load(job_id))
            self._cond.notify_all()
        self._observe_depth()

    def cancel(self, job_id: str) -> Job:
        """Cancel a queued or running job; returns its new state."""
        job = self.store.load(job_id)
        if job.terminal:
            raise JobError(f"job {job_id} already {job.state}")
        with self._cond:
            self._queue.pop(job_id, None)
            proc = self._procs.get(job_id)
            if proc is not None:
                self._cancelling.add(job_id)
                proc.terminate()
        if proc is None:
            # not started (or a worker that just exited): mark directly
            # (event before state — see _job_main on ordering)
            self.store.events(job_id).append("cancelled", job=job_id)
            job = self.store.transition(job_id, "cancelled")
            self._count_terminal("cancelled")
        else:
            proc.join(timeout=10.0)
            job = self._reconcile(job_id, cancelled=True)
        self._observe_depth()
        return job

    def depth(self) -> int:
        with self._cond:
            return len(self._queue)

    def running(self) -> int:
        with self._cond:
            return len(self._procs)

    def drain(self, timeout: float = 120.0) -> None:
        """Block until queue and workers are empty (tests, shutdown)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._cond:
                if not self._queue and not self._procs:
                    return
            time.sleep(self.poll)
        raise TimeoutError("worker pool did not drain in time")

    # -- scheduler ------------------------------------------------------------
    def _enqueue(self, job: Job) -> None:
        """Record a queued job's dispatch metadata (under the lock)."""
        self._queue[job.id] = (job.priority, tuple(job.depends_on),
                               job.tenant)

    def _pick_ready(self) -> Optional[str]:
        """Highest-priority runnable queued job; settles doomed ones.

        Called under the lock.  Jobs whose dependencies failed are
        transitioned to ``blocked`` right here (and dropped from the
        queue), so the cascade happens on the next scheduler pass after
        the dependency settles — and is re-derived from job files after
        a crash (see :meth:`JobStore.recover`).
        """
        dep_states: Dict[str, str] = {}
        order = sorted(self._queue,
                       key=lambda jid: (-self._queue[jid][0], jid))
        for job_id in order:
            priority, depends_on, tenant = self._queue[job_id]
            try:
                job = self.store.load(job_id)
            except JobError:
                del self._queue[job_id]
                continue
            if job.state != "queued":     # cancelled under us
                del self._queue[job_id]
                continue
            verdict, dep = self.store.readiness(job, dep_states)
            if verdict == "doomed":
                del self._queue[job_id]
                self.store.block(job_id, dep)
                self._count_terminal("blocked")
                continue
            if verdict == "held":
                continue
            limit = self.tenants.running_limit(tenant) \
                if self.tenants is not None else 0
            if limit and sum(1 for t in self._proc_tenants.values()
                             if t == tenant) >= limit:
                continue                  # at the tenant's running cap
            return job_id
        return None

    def _run(self) -> None:
        while True:
            with self._cond:
                if self._stopping:
                    return
                while len(self._procs) < self.workers:
                    job_id = self._pick_ready()
                    if job_id is None:
                        break
                    _, _, tenant = self._queue.pop(job_id)
                    proc = self._ctx.Process(
                        target=_job_main, args=(str(self.root), job_id),
                        name=f"repro-serve-{job_id}", daemon=True)
                    proc.start()
                    self._procs[job_id] = proc
                    self._proc_tenants[job_id] = tenant
                self._cond.wait(timeout=self.poll)
            self._reap()
            self._observe_depth()

    def _reap(self) -> None:
        with self._cond:
            done = [(job_id, proc) for job_id, proc in self._procs.items()
                    if not proc.is_alive()]
            for job_id, _ in done:
                del self._procs[job_id]
                self._proc_tenants.pop(job_id, None)
        for job_id, proc in done:
            proc.join()
            self._reconcile(job_id,
                            cancelled=job_id in self._cancelling,
                            exitcode=proc.exitcode)
            self._cancelling.discard(job_id)

    def _reconcile(self, job_id: str, cancelled: bool = False,
                   exitcode: Optional[int] = None) -> Job:
        """After a worker exits, settle the durable state.

        The worker normally wrote ``finished``/``failed`` itself; if the
        file still says ``queued``/``running`` the process died first —
        record ``cancelled`` (we terminated it) or ``failed``.
        """
        with self._cond:
            self._procs.pop(job_id, None)
            self._proc_tenants.pop(job_id, None)
        job = self.store.load(job_id)
        if job.terminal:
            self._count_terminal(job.state)
            return job
        if cancelled:
            self.store.events(job_id).append("cancelled", job=job_id)
            job = self.store.transition(job_id, "cancelled")
        else:
            error = f"worker died (exit code {exitcode})"
            self.store.events(job_id).append("failed", job=job_id,
                                             error=error)
            job = self.store.transition(job_id, "failed", error=error)
        self._count_terminal(job.state)
        return job

    # -- observability ---------------------------------------------------------
    def _observe_depth(self) -> None:
        with self._cond:
            depth, running = len(self._queue), len(self._procs)
        self.registry.gauge("serve.queue_depth").set(depth)
        self.registry.gauge("serve.jobs_running").set(running)

    def _count_terminal(self, state: str) -> None:
        self.registry.counter("serve.jobs_completed").child(state).inc()
