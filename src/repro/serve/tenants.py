"""Per-tenant authentication and quotas for a shared daemon.

A ``tenants.toml`` in the service root turns an open daemon into a
multi-tenant one::

    [tenants.team-a]
    token = "a-very-secret-token"
    max_queued = 8        # queued jobs at once (0 = unlimited)
    max_running = 2       # concurrent running jobs (0 = unlimited)
    quota_mb = 512        # catalog disk budget in MB (0 = unlimited)
    catalogs = ["team-a", "scratch"]   # optional; default [tenant name]

    [tenants.team-b]
    token = "another-token"
    max_queued = 1

When the file exists, every ``/v1/jobs`` route — and the catalog read
routes ``/v1/runs`` and ``/v1/analysis/...`` — requires
``Authorization: Bearer <token>``: an unknown or missing token is 401,
submitting into or reading a catalog the tenant does not own — or
reading, cancelling, or streaming another tenant's job — is 403, and a
hit limit (queued jobs, catalog megabytes) is 429 — all as JSON bodies
carrying the error ``code``.  ``max_running`` is enforced by the
scheduler instead: excess jobs queue normally and dispatch as the
tenant's running jobs drain.  Without the file every request passes —
exactly the single-user behaviour of earlier releases.

Token comparison uses :func:`hmac.compare_digest`; tokens never appear
in job files, logs, or metrics (tenants are named by their table key).
"""

from __future__ import annotations

import hmac
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.serve.errors import AuthError, QuotaExceeded


@dataclass(frozen=True)
class Tenant:
    """One tenant: its token, limits, and the catalogs it may use."""

    name: str
    token: str
    max_queued: int = 0          # 0 = unlimited
    max_running: int = 0         # 0 = unlimited
    quota_mb: float = 0.0        # 0 = unlimited
    catalogs: Tuple[str, ...] = ()

    @property
    def default_catalog(self) -> str:
        return self.catalogs[0] if self.catalogs else self.name

    def owns_catalog(self, name: str) -> bool:
        return name in (self.catalogs or (self.name,))


@dataclass
class Tenants:
    """The tenant registry: parse, authenticate, enforce quotas."""

    tenants: Dict[str, Tenant] = field(default_factory=dict)
    path: Optional[Path] = None

    @property
    def enforced(self) -> bool:
        """True when a tenants file gates submissions."""
        return bool(self.tenants)

    # -- loading --------------------------------------------------------------
    @classmethod
    def load(cls, path: Union[str, Path],
             required: bool = False) -> "Tenants":
        """Parse ``tenants.toml``; a missing file means an open daemon.

        With ``required=True`` a missing file raises instead — the mode
        for an *explicitly named* path (CLI ``--tenants``), where a typo
        silently starting an unauthenticated daemon would be a
        dangerous fail-open.
        """
        path = Path(path)
        try:
            text = path.read_text()
        except FileNotFoundError:
            if required:
                raise
            return cls(path=path)
        return cls.parse(text, path=path)

    @classmethod
    def parse(cls, text: str, path: Optional[Path] = None) -> "Tenants":
        try:
            import tomllib
        except ImportError:                       # Python < 3.11
            import tomli as tomllib          # type: ignore[no-redef]
        data = tomllib.loads(text)
        tenants: Dict[str, Tenant] = {}
        for name, entry in (data.get("tenants") or {}).items():
            if not isinstance(entry, dict) or not entry.get("token"):
                raise ValueError(
                    f"tenants.{name}: needs a 'token' string")
            catalogs = tuple(str(c) for c in
                             entry.get("catalogs") or (name,))
            tenants[name] = Tenant(
                name=name,
                token=str(entry["token"]),
                max_queued=int(entry.get("max_queued", 0)),
                max_running=int(entry.get("max_running", 0)),
                quota_mb=float(entry.get("quota_mb", 0.0)),
                catalogs=catalogs)
        return cls(tenants=tenants, path=path)

    # -- authentication -------------------------------------------------------
    def authenticate(self, authorization: Optional[str]
                     ) -> Optional[Tenant]:
        """Resolve an ``Authorization`` header to a tenant.

        Returns ``None`` on an open (tenant-less) daemon.  Raises
        :class:`AuthError` (401) for a missing, malformed, or unknown
        token.
        """
        if not self.enforced:
            return None
        if not authorization:
            raise AuthError("missing Authorization: Bearer <token> "
                            "header (this daemon enforces tenants)",
                            status=401)
        scheme, _, token = authorization.partition(" ")
        token = token.strip()
        if scheme.lower() != "bearer" or not token:
            raise AuthError("malformed Authorization header; expected "
                            "'Bearer <token>'", status=401)
        for tenant in self.tenants.values():
            if hmac.compare_digest(tenant.token, token):
                return tenant
        raise AuthError("unknown token", status=401)

    # -- enforcement ----------------------------------------------------------
    def authorize_submit(self, tenant: Optional[Tenant], catalog: str,
                         queued: int, catalog_bytes: int) -> None:
        """Gate one ``POST /v1/jobs``; raises 403/429 on violation.

        ``queued`` is the tenant's current count of queued jobs and
        ``catalog_bytes`` the on-disk size of the target catalog.
        """
        if tenant is None:
            return
        if not tenant.owns_catalog(catalog):
            raise AuthError(
                f"tenant {tenant.name!r} may not submit into catalog "
                f"{catalog!r} (allowed: "
                f"{', '.join(tenant.catalogs or (tenant.name,))})",
                status=403)
        if tenant.max_queued and queued >= tenant.max_queued:
            raise QuotaExceeded(
                f"tenant {tenant.name!r} already has {queued} queued "
                f"job(s) (max_queued {tenant.max_queued})", status=429)
        if tenant.quota_mb and \
                catalog_bytes >= tenant.quota_mb * 1024 * 1024:
            raise QuotaExceeded(
                f"catalog {catalog!r} holds "
                f"{catalog_bytes / 1048576:.1f} MB "
                f"(quota_mb {tenant.quota_mb:g})", status=429)

    def authorize_read(self, tenant: Optional[Tenant],
                       catalog: str) -> None:
        """Gate one catalog read (runs index / analysis); 403 foreign.

        Read routes call this *before* touching the catalog, so a
        foreign name 403s whether or not it exists — no probing a
        shared daemon for other tenants' catalog names.
        """
        if tenant is None:
            return
        if not tenant.owns_catalog(catalog):
            raise AuthError(
                f"tenant {tenant.name!r} may not read catalog "
                f"{catalog!r} (allowed: "
                f"{', '.join(tenant.catalogs or (tenant.name,))})",
                status=403)

    def running_limit(self, tenant_name: Optional[str]) -> int:
        """The tenant's ``max_running`` (0 = unlimited / unknown)."""
        tenant = self.tenants.get(tenant_name or "")
        return tenant.max_running if tenant else 0


def directory_bytes(root: Union[str, Path]) -> int:
    """Total size of every regular file under ``root`` (0 if absent)."""
    total = 0
    root = Path(root)
    if not root.is_dir():
        return 0
    for path in root.rglob("*"):
        try:
            if path.is_file():
                total += path.stat().st_size
        except OSError:
            continue
    return total
