"""The HTTP/JSON face of the experiment service (stdlib only).

:class:`ExperimentService` ties the durable :class:`JobStore`, the
spawn-based :class:`WorkerPool`, per-tenant :class:`RunCatalog` roots,
and cached :class:`AnalysisEngine`\\ s behind a small REST surface on a
:class:`ThreadingHTTPServer`:

====================================  ========================================
``POST /v1/jobs``                     submit a job (priority, depends_on)
``GET /v1/jobs``                      job table (``?state=``, ``?format=text``)
``GET /v1/jobs/{id}``                 one job's durable state
``GET /v1/jobs/{id}/events``          live progress as Server-Sent Events
``POST /v1/jobs/{id}/cancel``         cancel a queued or running job
``GET /v1/runs``                      browse catalog runs (``?catalog=``)
``GET /v1/analysis/{run}/{pipeline}`` cached analysis query (ETag / 304)
``GET /v1/metrics``                   the service's obs snapshot
``GET /v1/status``                    daemon health + job counts
====================================  ========================================

Analysis queries never re-simulate: they are answered from the
signature-guarded ``analysis.json`` cache next to each run manifest, and
the response carries a strong ETag derived from the engine's cache
signature (trace chunk CRCs + scenario fingerprint) plus the pipeline
name/version and any pushdown predicates.  A repeat request with
``If-None-Match`` on an unchanged run is a ``304 Not Modified`` that
touches only file headers.

The events route is a plain-``ThreadingHTTPServer`` SSE stream: one
``id:``/``event:``/``data:`` frame per progress event off the job's
append-only event log, resumable via ``Last-Event-ID`` (or ``?after=``),
closed when the job reaches a terminal state.  When a ``tenants.toml``
exists in the service root, **every** ``/v1/jobs`` route — and the
catalog read routes ``/v1/runs`` and ``/v1/analysis/...`` —
authenticates ``Authorization: Bearer`` tokens: submission enforces
per-tenant quotas, the job table and the runs index are scoped to the
caller's own jobs and catalogs, and reading, cancelling, or streaming
a job — or reading a catalog — another tenant owns is 403 — see
:mod:`repro.serve.tenants`.
"""

from __future__ import annotations

import hashlib
import json
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, Optional, Union
from urllib.parse import parse_qs, urlsplit

from repro.serve.errors import AuthError, ServeError
from repro.serve.jobs import (
    ACTIVE_STATES,
    Job,
    JobError,
    JobStore,
    STATES,
    render_jobs_table,
)
from repro.serve.pool import (
    CATALOGS_DIR,
    DEFAULT_CATALOG,
    JOBS_DIR,
    WorkerPool,
    catalog_root,
)
from repro.serve.tenants import Tenants, directory_bytes

SERVER_NAME = "repro-serve/1"
#: filename in the service root that switches tenant enforcement on
TENANTS_FILE = "tenants.toml"
#: concurrent SSE streams; each pins one server thread until terminal
MAX_EVENT_STREAMS = 32
#: floor/ceiling for the ``?poll=`` follow interval (seconds)
MIN_EVENT_POLL, MAX_EVENT_POLL = 0.05, 5.0


class ApiError(Exception):
    """An error with an HTTP status (and machine code) attached."""

    def __init__(self, status: int, message: str, code: str = "error"):
        super().__init__(message)
        self.status = status
        self.code = code


class ExperimentService:
    """One daemon: a service root, its jobs, workers, and HTTP server.

    The service root contains ``jobs/`` (durable job state) and
    ``catalogs/<tenant>/`` (one :class:`RunCatalog` per tenant).  State
    is all on disk: stopping the daemon and starting a new one on the
    same root reloads every job — queued work is never lost.
    """

    def __init__(self, root: Union[str, Path], host: str = "127.0.0.1",
                 port: int = 0, workers: int = 2, obs=None,
                 tenants: Optional[Union[str, Path, Tenants]] = None):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        (self.root / JOBS_DIR).mkdir(exist_ok=True)
        (self.root / CATALOGS_DIR).mkdir(exist_ok=True)
        if obs is None:
            from repro.obs import MetricsRegistry
            obs = MetricsRegistry()
        self.registry = obs
        if isinstance(tenants, Tenants):
            self.tenants = tenants
        else:
            # an explicitly named tenants file must exist: a typo'd
            # path silently starting an open daemon would fail open
            self.tenants = Tenants.load(tenants or
                                        self.root / TENANTS_FILE,
                                        required=tenants is not None)
        self.store = JobStore(self.root / JOBS_DIR)
        self.pool = WorkerPool(self.root, self.store, workers=workers,
                               obs=self.registry, tenants=self.tenants)
        self.started_at = time.time()
        self._engines: Dict[str, object] = {}
        self._engines_lock = threading.Lock()
        self._stream_slots = threading.BoundedSemaphore(MAX_EVENT_STREAMS)
        handler = type("BoundHandler", (_Handler,), {"service": self})
        self.httpd = ThreadingHTTPServer((host, port), handler)
        self.httpd.daemon_threads = True
        self.host, self.port = self.httpd.server_address[:2]
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ------------------------------------------------------------
    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ExperimentService":
        """Start pool + HTTP server on background threads (non-blocking)."""
        self.pool.start()
        self._thread = threading.Thread(target=self.httpd.serve_forever,
                                        name="repro-serve-http",
                                        daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Blocking variant for the CLI daemon."""
        self.pool.start()
        try:
            self.httpd.serve_forever()
        finally:
            self.pool.stop(wait=False)

    def shutdown(self, wait_jobs: bool = False) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        self.pool.stop(wait=wait_jobs)

    # -- shared backends ------------------------------------------------------
    def catalog(self, name: str = DEFAULT_CATALOG):
        from repro.store import RunCatalog
        return RunCatalog(catalog_root(self.root, name))

    def engine(self, name: str = DEFAULT_CATALOG):
        """One cached :class:`AnalysisEngine` per tenant catalog."""
        with self._engines_lock:
            engine = self._engines.get(name)
            if engine is None:
                from repro.analysis import AnalysisEngine
                engine = AnalysisEngine(self.catalog(name), workers=1,
                                        cache=True, obs=self.registry)
                self._engines[name] = engine
            return engine

    def catalogs(self) -> list:
        base = self.root / CATALOGS_DIR
        return sorted(p.name for p in base.iterdir() if p.is_dir()) \
            if base.is_dir() else []

    # -- operations (HTTP-independent, reused by tests) -----------------------
    def submit(self, payload: dict, tenant=None) -> Job:
        """Validate a submission payload, persist it, queue it.

        ``tenant`` is the authenticated :class:`~repro.serve.tenants.
        Tenant` (or ``None`` on an open daemon): its catalog ownership
        and queued/disk quotas gate the submission, and its name is
        stamped on the job for the scheduler's ``max_running`` cap.
        """
        if not isinstance(payload, dict):
            raise ApiError(400, "body must be a JSON object")
        from repro.config import ConfigError, Scenario
        grid = payload.get("grid") or []
        if not isinstance(grid, list) or \
                not all(isinstance(g, str) for g in grid):
            raise ApiError(400, "grid must be a list of 'axis=v1,v2' "
                                "strings")
        kind = payload.get("kind") or ("sweep" if grid else "experiment")
        if kind not in ("experiment", "sweep"):
            raise ApiError(400, f"unknown job kind {kind!r}")
        if kind == "sweep" and not grid:
            raise ApiError(400, "sweep jobs need at least one grid axis")
        depends_on = payload.get("depends_on") or []
        if not isinstance(depends_on, list) or \
                not all(isinstance(d, str) for d in depends_on):
            raise ApiError(400, "depends_on must be a list of job ids")
        scenario_data = payload.get("scenario")
        try:
            if isinstance(scenario_data, str):       # TOML text
                scenario = Scenario.from_toml(scenario_data)
            elif scenario_data is not None:
                scenario = Scenario.from_dict(scenario_data)
            else:
                scenario = Scenario()
            default_catalog = tenant.default_catalog if tenant \
                else DEFAULT_CATALOG
            catalog = str(payload.get("catalog") or default_catalog)
            catalog_root(self.root, catalog)         # validates the name
            experiment = str(payload.get("experiment") or "baseline")
            from repro.core.experiments import EXPERIMENTS
            if experiment not in EXPERIMENTS + ("serial",):
                raise ApiError(400,
                               f"unknown experiment {experiment!r}")
            duration = payload.get("duration")
            if duration is not None:
                duration = float(duration)
            priority = int(payload.get("priority") or 0)
            if kind == "sweep":
                from repro.config import parse_axis_spec, expand_grid
                expand_grid(scenario,
                            [parse_axis_spec(s) for s in grid])
        except ConfigError as exc:
            raise ApiError(400, f"bad scenario: {exc}") from exc
        except JobError as exc:
            raise ApiError(400, str(exc)) from exc
        except (TypeError, ValueError) as exc:
            raise ApiError(400, str(exc)) from exc
        self._authorize_submit(tenant, catalog)
        spec = {"scenario": scenario.to_dict(),
                "experiment": experiment,
                "duration": duration,
                "catalog": catalog}
        if kind == "sweep":
            spec["grid"] = list(grid)
            spec["parallel"] = bool(payload.get("parallel", False))
            if payload.get("workers") is not None:
                spec["workers"] = int(payload["workers"])
        try:
            job = self.store.create(
                kind, spec, priority=priority, depends_on=depends_on,
                tenant=tenant.name if tenant else None)
        except JobError as exc:      # unknown dependency id
            raise ApiError(400, str(exc)) from exc
        self.store.events(job.id).append(
            "queued", job=job.id, kind=kind, priority=priority,
            depends_on=list(depends_on))
        self.pool.submit(job.id)
        self.registry.counter("serve.jobs_submitted").child(kind).inc()
        if tenant is not None:
            self.registry.counter("serve.tenant.jobs_submitted") \
                .child(tenant.name).inc()
        return job

    def _authorize_submit(self, tenant, catalog: str) -> None:
        """Enforce the tenant's catalog ownership and quotas (403/429)."""
        if tenant is None:
            return
        queued = sum(1 for job in self.store.jobs("queued")
                     if job.tenant == tenant.name)
        usage = directory_bytes(catalog_root(self.root, catalog))
        self.registry.gauge("serve.tenant.catalog_bytes") \
            .child(tenant.name).set(usage)
        try:
            self.tenants.authorize_submit(tenant, catalog, queued, usage)
        except ServeError as exc:
            reason = "catalog" if exc.status == 403 else "quota"
            self.registry.counter("serve.tenant.rejected") \
                .child(reason).inc()
            raise

    def cancel(self, job_id: str) -> Job:
        try:
            return self.pool.cancel(job_id)
        except JobError as exc:
            message = str(exc)
            if "no job" in message:
                raise ApiError(404, message,
                               code="job_not_found") from exc
            raise ApiError(409, message) from exc

    def status(self) -> dict:
        counts = self.store.counts()
        return {"server": SERVER_NAME,
                "root": str(self.root),
                "uptime_seconds": round(time.time() - self.started_at, 3),
                "workers": self.pool.workers,
                "queue_depth": self.pool.depth(),
                "running": self.pool.running(),
                "jobs": counts,
                "tenants": sorted(self.tenants.tenants)
                if self.tenants.enforced else None,
                "catalogs": self.catalogs()}

    def runs_index(self, catalog: Optional[str] = None) -> dict:
        names = [catalog] if catalog else self.catalogs()
        out = {}
        for name in names:
            cat = self.catalog(name)
            rows = []
            for run_id in cat.runs():
                manifest = cat.manifest(run_id)
                rows.append({
                    "run": run_id,
                    "name": manifest.get("name", run_id),
                    "nnodes": manifest.get("nnodes"),
                    "seed": manifest.get("seed"),
                    "records": manifest.get("records", 0),
                    "duration": manifest.get("duration"),
                    "fingerprint": _scenario_fingerprint(manifest),
                })
            out[name] = rows
        return {"catalogs": out}

    def analysis_etag(self, catalog: str, run_id: str, pipeline,
                      predicates: dict) -> str:
        """Strong ETag: engine cache signature + pipeline + predicates."""
        signature = self.engine(catalog).signature(run_id)
        pred = ",".join(f"{k}={v}" for k, v in sorted(predicates.items())
                        if v is not None)
        seed = f"{signature}|{pipeline.name}@v{pipeline.version}|{pred}"
        return '"' + hashlib.sha1(seed.encode()).hexdigest()[:20] + '"'


def _scenario_fingerprint(manifest: dict) -> Optional[str]:
    data = manifest.get("scenario")
    if not data:
        return None
    try:
        from repro.config import Scenario
        return Scenario.from_dict(data, validate=False).fingerprint()
    except Exception:
        return None


# -- request handling -----------------------------------------------------------
_ROUTES = (
    ("GET", re.compile(r"^/v1/status/?$"), "_get_status"),
    ("GET", re.compile(r"^/v1/metrics/?$"), "_get_metrics"),
    ("GET", re.compile(r"^/v1/jobs/?$"), "_get_jobs"),
    ("POST", re.compile(r"^/v1/jobs/?$"), "_post_jobs"),
    ("GET", re.compile(r"^/v1/jobs/(?P<job_id>[\w.-]+)/?$"), "_get_job"),
    ("GET", re.compile(r"^/v1/jobs/(?P<job_id>[\w.-]+)/events/?$"),
     "_get_job_events"),
    ("POST", re.compile(r"^/v1/jobs/(?P<job_id>[\w.-]+)/cancel/?$"),
     "_post_cancel"),
    ("GET", re.compile(r"^/v1/runs/?$"), "_get_runs"),
    ("GET", re.compile(r"^/v1/analysis/(?P<run_id>[\w@,=.+-]+)/"
                       r"(?P<pipeline>[\w-]+)/?$"), "_get_analysis"),
)


class _Handler(BaseHTTPRequestHandler):
    """Routes ``/v1/*`` onto the bound :class:`ExperimentService`."""

    service: ExperimentService          # bound by ExperimentService
    server_version = SERVER_NAME
    protocol_version = "HTTP/1.1"

    # -- plumbing -------------------------------------------------------------
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass                               # quiet; obs counts requests

    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        split = urlsplit(self.path)
        self.query = {k: v[-1] for k, v in
                      parse_qs(split.query).items()}
        started = time.perf_counter()
        route = "unmatched"
        registry = self.service.registry
        try:
            for verb, pattern, handler_name in _ROUTES:
                match = pattern.match(split.path)
                if match:
                    if verb != method:
                        continue
                    route = handler_name.strip("_")
                    getattr(self, handler_name)(**match.groupdict())
                    break
            else:
                raise ApiError(404, f"no route {method} {split.path}")
        except ApiError as exc:
            self._send_json({"error": str(exc), "code": exc.code},
                            status=exc.status)
        except ServeError as exc:
            # the typed hierarchy (auth, quota, cycle): status + code
            self._send_json({"error": exc.message, "code": exc.code},
                            status=exc.status or 500)
        except BrokenPipeError:
            pass
        except Exception as exc:           # never take the daemon down
            registry.counter("serve.errors").inc()
            self._send_json(
                {"error": f"{type(exc).__name__}: {exc}"}, status=500)
        finally:
            registry.counter("serve.requests").child(route).inc()
            registry.histogram("serve.request_seconds").child(route) \
                .observe(time.perf_counter() - started)

    def _send_json(self, payload, status: int = 200,
                   headers: Optional[dict] = None) -> None:
        body = json.dumps(payload, indent=2).encode() + b"\n"
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, text: str, status: int = 200) -> None:
        body = text.encode() + b"\n"
        self.send_response(status)
        self.send_header("Content-Type", "text/plain; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ApiError(400, "empty request body")
        try:
            return json.loads(raw)
        except ValueError as exc:
            raise ApiError(400, f"bad JSON body: {exc}") from exc

    # -- routes ---------------------------------------------------------------
    def _get_status(self) -> None:
        self._send_json(self.service.status())

    def _get_metrics(self) -> None:
        self._send_json(self.service.registry.snapshot())

    def _tenant(self):
        """Authenticate the request (None on an open daemon).

        Every ``/v1/jobs`` route calls this: on a tenants-enforcing
        daemon a missing, malformed, or unknown bearer token is a 401
        no matter the verb — listing, reading, streaming, and
        cancelling jobs are as gated as submitting them.
        """
        return self.service.tenants.authenticate(
            self.headers.get("Authorization"))

    def _get_jobs(self) -> None:
        tenant = self._tenant()
        state = self.query.get("state")
        if state is not None and state not in STATES + ("active",):
            raise ApiError(400, f"unknown state {state!r}; choose from "
                                f"{', '.join(STATES)}")
        jobs = self.service.store.jobs()
        if tenant is not None:
            # scope the table to the caller's own jobs (plus un-owned
            # ones submitted before tenancy was switched on)
            jobs = [j for j in jobs if j.tenant in (None, tenant.name)]
        if state == "active":
            jobs = [j for j in jobs if j.state in ACTIVE_STATES]
        elif state:
            jobs = [j for j in jobs if j.state == state]
        if self.query.get("format") == "text":
            self._send_text(render_jobs_table(jobs))
        else:
            self._send_json({"jobs": [j.to_dict() for j in jobs]})

    def _post_jobs(self) -> None:
        job = self.service.submit(self._read_body(),
                                  tenant=self._tenant())
        self._send_json(job.to_dict(), status=201,
                        headers={"Location": f"/v1/jobs/{job.id}"})

    def _load_job(self, job_id: str) -> Job:
        """Authenticate, load, and authorize one job (401/404/403)."""
        tenant = self._tenant()
        try:
            job = self.service.store.load(job_id)
        except JobError as exc:
            raise ApiError(404, str(exc), code="job_not_found") from exc
        if tenant is not None and job.tenant not in (None, tenant.name):
            raise AuthError(f"job {job_id} belongs to another tenant",
                            status=403)
        return job

    def _get_job(self, job_id: str) -> None:
        self._send_json(self._load_job(job_id).to_dict())

    def _get_job_events(self, job_id: str) -> None:
        """Stream a job's progress events as Server-Sent Events.

        Resumable: ``Last-Event-ID`` (per the SSE spec) or ``?after=N``
        skips already-seen events.  The stream ends — and the connection
        closes, which is what delimits the body — once the job is
        terminal and its log is drained.  ``?poll=`` tunes the follow
        latency for tests (clamped to [``MIN_EVENT_POLL``,
        ``MAX_EVENT_POLL``] so ``poll=0`` cannot busy-spin a server
        thread); at most ``MAX_EVENT_STREAMS`` streams run at once
        (503 beyond that), since each pins one server thread.
        """
        job = self._load_job(job_id)
        try:
            after = max(int(self.headers.get("Last-Event-ID")
                            or self.query.get("after") or 0), 0)
            poll = float(self.query.get("poll") or 0.2)
        except ValueError as exc:
            raise ApiError(400, f"bad event cursor: {exc}") from exc
        poll = min(max(poll, MIN_EVENT_POLL), MAX_EVENT_POLL)
        if not self.service._stream_slots.acquire(blocking=False):
            raise ApiError(503, "too many concurrent event streams",
                           code="busy")
        try:
            self._stream_job_events(job, job_id, after, poll)
        finally:
            self.service._stream_slots.release()

    def _stream_job_events(self, job: Job, job_id: str,
                           after: int, poll: float) -> None:
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        self.end_headers()
        self.close_connection = True
        self.service.registry.counter("serve.event_streams").inc()
        log = self.service.store.events(job_id)

        def job_terminal() -> bool:
            try:
                return self.service.store.load(job_id).terminal
            except JobError:
                return True
        sent = 0
        try:
            for record in log.follow(after=after, poll=poll,
                                     done=job_terminal):
                frame = (f"id: {record['id']}\n"
                         f"event: {record['event']}\n"
                         f"data: {json.dumps(record)}\n\n")
                self.wfile.write(frame.encode())
                self.wfile.flush()
                sent += 1
                self.service.registry.counter("serve.events_sent").inc()
        except (BrokenPipeError, ConnectionResetError):
            return                    # client went away mid-stream
        if sent == 0 and job.terminal and not log.read():
            # a job that never ran (e.g. cancelled pre-start on an old
            # root) has no event log at all: synthesize its terminal
            # event so such streams still end with one
            frame = (f"event: {job.state}\n"
                     f"data: {json.dumps({'job': job_id, 'event': job.state})}"
                     "\n\n")
            self.wfile.write(frame.encode())
            self.wfile.flush()

    def _post_cancel(self, job_id: str) -> None:
        self._load_job(job_id)        # 401/404/403 before any action
        self._send_json(self.service.cancel(job_id).to_dict())

    def _get_runs(self) -> None:
        tenant = self._tenant()
        catalog = self.query.get("catalog")
        if catalog is not None:
            # authorization before existence: a foreign catalog 403s
            # whether or not it exists (no probing for names)
            if tenant is not None:
                self.service.tenants.authorize_read(tenant, catalog)
            if catalog not in self.service.catalogs():
                raise ApiError(404, f"no catalog {catalog!r}")
            self._send_json(self.service.runs_index(catalog))
            return
        if tenant is None:
            self._send_json(self.service.runs_index())
            return
        # no explicit catalog on a tenants-enforcing daemon: index only
        # the caller's own catalogs
        catalogs: dict = {}
        for name in self.service.catalogs():
            if tenant.owns_catalog(name):
                catalogs.update(
                    self.service.runs_index(name)["catalogs"])
        self._send_json({"catalogs": catalogs})

    def _get_analysis(self, run_id: str, pipeline: str) -> None:
        from repro.analysis import make_pipelines
        tenant = self._tenant()
        try:
            pipe = make_pipelines([pipeline])[0]
        except ValueError as exc:
            raise ApiError(404, str(exc)) from exc
        catalog = self.query.get("catalog")
        if catalog is None:
            catalog = tenant.default_catalog if tenant is not None \
                else DEFAULT_CATALOG
        if tenant is not None:
            self.service.tenants.authorize_read(tenant, catalog)
        predicates = self._predicates()
        service = self.service
        try:
            etag = service.analysis_etag(catalog, run_id, pipe,
                                         predicates)
        except FileNotFoundError as exc:
            raise ApiError(
                404, f"no run {run_id!r} in catalog {catalog!r}") from exc
        if self._etag_matches(etag):
            service.registry.counter("serve.analysis_304s").inc()
            self.send_response(304)
            self.send_header("ETag", etag)
            self.end_headers()
            return
        engine = service.engine(catalog)
        result = engine.analyze(run_id, [pipe], **predicates)[pipe.name]
        payload = {
            "run": run_id,
            "catalog": catalog,
            "pipeline": pipe.name,
            "version": pipe.version,
            "predicates": {k: v for k, v in predicates.items()
                           if v is not None},
            "result": None if result is None else pipe.to_json(result),
        }
        self._send_json(payload, headers={"ETag": etag})

    # -- helpers --------------------------------------------------------------
    def _predicates(self) -> dict:
        query = self.query
        try:
            t0 = float(query["t0"]) if "t0" in query else None
            t1 = float(query["t1"]) if "t1" in query else None
            node = int(query["node"]) if "node" in query else None
        except ValueError as exc:
            raise ApiError(400, f"bad predicate: {exc}") from exc
        write: Optional[bool] = None
        rw = query.get("rw")
        if rw == "reads":
            write = False
        elif rw == "writes":
            write = True
        elif rw is not None:
            raise ApiError(400, "rw must be 'reads' or 'writes'")
        return {"t0": t0, "t1": t1, "node": node, "write": write}

    def _etag_matches(self, etag: str) -> bool:
        header = self.headers.get("If-None-Match")
        if not header:
            return False
        candidates = [c.strip() for c in header.split(",")]
        return "*" in candidates or etag in candidates
