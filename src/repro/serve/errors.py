"""One exception hierarchy for the experiment service.

Every failure the service reports — server-side at the API boundary,
client-side out of :class:`~repro.serve.client.ServeClient` — is a
:class:`ServeError`.  Each subclass carries a machine-readable ``code``
(sent in JSON error bodies and used by the client to re-raise the same
class on its side of the wire) and a default HTTP status:

=========================  ====================  ======
:class:`JobNotFound`       ``job_not_found``     404
:class:`AuthError`         ``auth``              401
:class:`QuotaExceeded`     ``quota``             429
:class:`DependencyCycle`   ``dependency_cycle``  400
=========================  ====================  ======

The CLI maps these onto its exit-code convention: user errors
(:class:`JobNotFound`, :class:`DependencyCycle`, any 400) exit 2,
environmental failures (unreachable daemon, :class:`AuthError`,
:class:`QuotaExceeded`, 5xx) exit 1 — always as a one-line
``repro-serve: error: ...`` on stderr, never a traceback.
"""

from __future__ import annotations

from typing import Optional


class ServeError(RuntimeError):
    """A service failure, carrying an HTTP status and error code.

    ``status`` is 0 for transport-level failures that never got an HTTP
    response (daemon unreachable).  ``str(exc)`` is the one-line message
    the CLI prints.
    """

    #: machine-readable code, mirrored in JSON error bodies
    code = "error"
    #: the HTTP status this error maps to when none is given
    default_status = 500

    def __init__(self, message: str, status: Optional[int] = None):
        self.status = self.default_status if status is None else status
        self.message = message
        super().__init__(f"HTTP {self.status}: {message}"
                         if self.status else message)


class JobNotFound(ServeError):
    """The named job id does not exist on this daemon."""

    code = "job_not_found"
    default_status = 404


class AuthError(ServeError):
    """Missing/unknown token (401) or a tenant overreach (403)."""

    code = "auth"
    default_status = 401


class QuotaExceeded(ServeError):
    """A tenant limit was hit: queued jobs or catalog megabytes."""

    code = "quota"
    default_status = 429


class DependencyCycle(ServeError):
    """``depends_on`` edges close a cycle; the DAG would never run."""

    code = "dependency_cycle"
    default_status = 400


#: code -> class, for the client to re-raise what the server raised
ERROR_CODES = {cls.code: cls for cls in
               (JobNotFound, AuthError, QuotaExceeded, DependencyCycle)}


def error_for(status: int, message: str, code: Optional[str] = None
              ) -> ServeError:
    """Build the most specific :class:`ServeError` for a wire error."""
    cls = ERROR_CODES.get(code or "")
    if cls is None:
        cls = {401: AuthError, 403: AuthError, 404: ServeError,
               429: QuotaExceeded}.get(status, ServeError)
    return cls(message, status=status)
