"""The instrumented IDE block driver.

Wraps a :class:`~repro.disk.Disk` — or a
:class:`~repro.disk.volume.LogicalVolume` multiplexing several disks —
with read/write handlers that emit one trace record per *physical*
request — *(timestamp, sector, rw flag, pending count)* plus size and
node id — and exposes ``ioctl`` control of the instrumentation level so
tracing can be toggled without "rebooting" the simulated node, exactly
as in the paper.

When the device is a volume, a logical request that maps to several
members produces one trace record per member sub-request (addressed in
that member's local sector space, with that member's own pending
count), so striped and mirrored traffic keeps per-physical-disk trace
identity.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Any, Optional

from repro.disk import Disk, IORequest, SECTOR_BYTES
from repro.driver.procfs import ProcTraceTransport
from repro.driver.trace import TraceRecord
from repro.sim import Event, Simulator


class TraceLevel(IntEnum):
    """Instrumentation levels selectable via ioctl."""

    OFF = 0
    #: one record per request at submission (the paper's level)
    BASIC = 1
    #: submission + completion records (completion has pending *after* it)
    VERBOSE = 2


#: ioctl command numbers (shaped like HDIO_* constants for flavour)
HDIO_SET_TRACE = 0x32A
HDIO_GET_TRACE = 0x32B


class InstrumentedIDEDriver:
    """Block driver front-end with request-level instrumentation."""

    def __init__(self, sim: Simulator, disk: Disk, node_id: int = 0,
                 transport: Optional[ProcTraceTransport] = None,
                 level: TraceLevel = TraceLevel.BASIC,
                 max_retries: int = 4):
        self.sim = sim
        self.disk = disk
        self.node_id = node_id
        # volume-vs-bare-disk dispatch resolved once: the per-request
        # path then skips a getattr per submit (the device behind a
        # driver never changes after construction)
        self._map_extents = getattr(disk, "map_extents", None)
        self.transport = transport or ProcTraceTransport(sim)
        self.level = TraceLevel(level)
        #: experiment-start offset subtracted from record timestamps
        self.time_origin = 0.0
        #: soft media errors are retried this many times before the
        #: request is failed up to the caller (classic IDE driver policy)
        self.max_retries = max_retries
        self.requests_issued = 0
        self.retries = 0
        self.hard_failures = 0

    @property
    def level(self) -> TraceLevel:
        """Instrumentation level; setting it refreshes the cached flags."""
        return self._level

    @level.setter
    def level(self, value) -> None:
        self._level = TraceLevel(value)
        # plain-bool level tests: IntEnum comparisons cost a dunder
        # dispatch each, and the submit path asks twice per request
        self._basic = self._level >= TraceLevel.BASIC
        self._verbose = self._level >= TraceLevel.VERBOSE

    # -- ioctl ---------------------------------------------------------------
    def ioctl(self, cmd: int, arg: Any = None) -> Any:
        """Driver control: set/get the instrumentation level."""
        if cmd == HDIO_SET_TRACE:
            self.level = TraceLevel(arg)
            return 0
        if cmd == HDIO_GET_TRACE:
            return int(self.level)
        raise ValueError(f"unknown ioctl command {cmd:#x}")

    def reset_clock(self) -> None:
        """Make subsequent records' timestamps relative to *now*."""
        self.time_origin = self.sim.now

    # -- checkpoint state surface ---------------------------------------
    def snapshot_state(self) -> dict:
        return {"level": int(self._level),
                "time_origin": self.time_origin,
                "requests_issued": self.requests_issued,
                "retries": self.retries,
                "hard_failures": self.hard_failures}

    def restore_state(self, state: dict) -> None:
        self.level = TraceLevel(int(state["level"]))
        self.time_origin = float(state["time_origin"])
        self.requests_issued = int(state["requests_issued"])
        self.retries = int(state["retries"])
        self.hard_failures = int(state["hard_failures"])

    # -- request handlers ------------------------------------------------
    def read_sectors(self, sector: int, nsectors: int,
                     origin: Any = None) -> Event:
        """The driver's read handler: trace then submit."""
        return self._handle(sector, nsectors, is_write=False, origin=origin)

    def write_sectors(self, sector: int, nsectors: int,
                      origin: Any = None) -> Event:
        """The driver's write handler: trace then submit."""
        return self._handle(sector, nsectors, is_write=True, origin=origin)

    def read_bytes(self, offset: int, nbytes: int, origin: Any = None) -> Event:
        """Byte-addressed convenience wrapper (sector-aligned rounding)."""
        sector, nsectors = self._byte_span(offset, nbytes)
        return self.read_sectors(sector, nsectors, origin=origin)

    def write_bytes(self, offset: int, nbytes: int, origin: Any = None) -> Event:
        sector, nsectors = self._byte_span(offset, nbytes)
        return self.write_sectors(sector, nsectors, origin=origin)

    # -- internals ---------------------------------------------------------
    @staticmethod
    def _byte_span(offset: int, nbytes: int) -> tuple[int, int]:
        if nbytes < 1:
            raise ValueError("nbytes must be >= 1")
        first = offset // SECTOR_BYTES
        last = (offset + nbytes - 1) // SECTOR_BYTES
        return first, last - first + 1

    def _handle(self, sector: int, nsectors: int, is_write: bool,
                origin: Any) -> Event:
        if self.disk.media_error_rate > 0.0:
            # retry path: each (re)submission is its own traced request
            outcome = self.sim.event()
            self.sim.process(
                self._submit_with_retries(sector, nsectors, is_write,
                                          origin, outcome),
                name="ide-retry")
            return outcome
        return self._submit_once(sector, nsectors, is_write, origin)

    def _targets(self, sector: int, nsectors: int,
                 is_write: bool) -> tuple:
        """The physical ``(disk, sector, nsectors)`` parts of one span.

        A bare :class:`Disk` is its own single target; a logical volume
        resolves the span through its policy's address math.
        """
        mapper = self._map_extents
        if mapper is None:
            return ((self.disk, sector, nsectors),)
        disks = self.disk.disks
        return tuple((disks[i], s, n)
                     for i, s, n in mapper(sector, nsectors, is_write))

    def _submit_part(self, disk, sector: int, nsectors: int,
                     is_write: bool, origin: Any):
        """Trace and submit one physical request; returns (request, event)."""
        # IORequest construction, fused: same field defaults and the same
        # validation as the dataclass __init__/__post_init__, minus their
        # call frames (one request object per trace record makes this the
        # driver's hottest allocation)
        if sector < 0:
            raise ValueError(f"negative sector {sector}")
        if nsectors < 1:
            raise ValueError(
                f"request must cover >= 1 sector, got {nsectors}")
        request = IORequest.__new__(IORequest)
        request.sector = sector
        request.nsectors = nsectors
        request.is_write = is_write
        request.submit_time = 0.0
        request.complete_time = None
        request.origin = origin
        request.done = None
        request.failed = False
        request.seq = 0
        self.requests_issued += 1
        if self._basic:
            # Pending count *includes* this request, i.e. "remaining I/O
            # requests to be processed" as logged by the paper's driver.
            # Pushed as a raw schema row (TraceRecord.as_tuple layout):
            # the ring only ever feeds the structured-array drain, and a
            # frozen-dataclass construction per request is the single
            # most expensive step of the trace fast path.
            self.transport.push((
                self.sim.now - self.time_origin,
                sector,
                int(is_write),
                disk.queue_depth + 1,
                nsectors * SECTOR_BYTES / 1024.0,
                self.node_id,
            ))
        done = disk.submit(request)
        if self._verbose:
            done.callbacks.append(lambda ev: self.transport.push(TraceRecord(
                time=self.sim.now - self.time_origin,
                sector=sector,
                write=is_write,
                pending=disk.queue_depth,
                size_kb=nsectors * SECTOR_BYTES / 1024.0,
                node=self.node_id,
            )))
        return request, done

    def _submit_once(self, sector: int, nsectors: int, is_write: bool,
                     origin: Any) -> Event:
        parts = self._targets(sector, nsectors, is_write)
        if len(parts) == 1:
            disk, psector, pnsectors = parts[0]
            _, done = self._submit_part(disk, psector, pnsectors,
                                        is_write, origin)
            return done
        # A striped/mirrored span: one logical completion event that
        # fires when every member's sub-request has completed.
        logical = IORequest(sector=sector, nsectors=nsectors,
                            is_write=is_write, origin=origin)
        logical.submit_time = self.sim.now
        done = self.sim.event()
        logical.done = done
        state = {"remaining": len(parts), "failed": False}

        def finish(sub: IORequest) -> None:
            state["remaining"] -= 1
            if sub.failed:
                state["failed"] = True
            if state["remaining"] == 0:
                logical.complete_time = self.sim.now
                logical.failed = state["failed"]
                done.succeed(logical)

        for disk, psector, pnsectors in parts:
            sub, ev = self._submit_part(disk, psector, pnsectors,
                                        is_write, origin)
            ev.callbacks.append(lambda _ev, sub=sub: finish(sub))
        return done

    def _submit_with_retries(self, sector: int, nsectors: int,
                             is_write: bool, origin: Any, outcome: Event):
        for attempt in range(1 + self.max_retries):
            if attempt:
                self.retries += 1
            request = yield self._submit_once(sector, nsectors, is_write,
                                              origin)
            if not request.failed:
                outcome.succeed(request)
                return
        self.hard_failures += 1
        outcome.fail(IOError(
            f"{self.disk.name}: unrecoverable media error at sector "
            f"{sector} after {self.max_retries} retries"))
