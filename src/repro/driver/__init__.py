"""Instrumented block device driver.

Reproduces the paper's measurement apparatus: the IDE driver's read and
write handlers are instrumented so that every physical request generates a
trace entry *(timestamp, sector, read/write flag, pending-request count)*;
entries are buffered through a simulated ``/proc`` kernel message facility
and the instrumentation level is switched with an ``ioctl``.
"""

from repro.driver.trace import TRACE_DTYPE, TraceBuffer, TraceRecord
from repro.driver.procfs import ProcTraceTransport
from repro.driver.ide import (
    HDIO_GET_TRACE,
    HDIO_SET_TRACE,
    InstrumentedIDEDriver,
    TraceLevel,
)

__all__ = [
    "HDIO_GET_TRACE",
    "HDIO_SET_TRACE",
    "InstrumentedIDEDriver",
    "ProcTraceTransport",
    "TRACE_DTYPE",
    "TraceBuffer",
    "TraceLevel",
    "TraceRecord",
]
