"""Trace record schema and an append-optimised buffer.

One record per physical disk request, matching the paper's driver
instrumentation: timestamp, sector number, read/write flag, and the count of
pending requests.  We additionally carry the request size (the paper's
figures plot request sizes, derived from the sector count) and the node id
(the paper aggregates per-node traces).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

#: numpy schema shared by the driver, trace files, and the analysis layer.
TRACE_DTYPE = np.dtype([
    ("time", "f8"),      # seconds since experiment start
    ("sector", "u8"),    # first sector of the request
    ("write", "u1"),     # 1 = write, 0 = read
    ("pending", "u2"),   # requests still queued at the device
    ("size_kb", "f4"),   # request size in KB
    ("node", "u2"),      # cluster node the disk belongs to
])


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One instrumentation entry, in object form (handy for tests/streams).

    Slotted: every traced request allocates one of these on the submit
    path, so construction cost is part of the request hot path.
    """

    time: float
    sector: int
    write: bool
    pending: int
    size_kb: float
    node: int = 0

    def as_tuple(self) -> tuple:
        return (self.time, self.sector, int(self.write), self.pending,
                self.size_kb, self.node)


class TraceBuffer:
    """Growable, numpy-backed store of trace records.

    Appends are O(1) amortised (doubling array); :meth:`to_array` yields a
    structured array view of exactly the written records for vectorised
    analysis.
    """

    def __init__(self, initial_capacity: int = 1024):
        if initial_capacity < 1:
            raise ValueError("initial capacity must be >= 1")
        self._data = np.zeros(initial_capacity, dtype=TRACE_DTYPE)
        self._len = 0

    def __len__(self) -> int:
        return self._len

    def append(self, record: TraceRecord) -> None:
        if self._len == len(self._data):
            grown = np.zeros(len(self._data) * 2, dtype=TRACE_DTYPE)
            grown[:self._len] = self._data
            self._data = grown
        self._data[self._len] = record.as_tuple()
        self._len += 1

    def append_array(self, records: np.ndarray) -> None:
        """Bulk append a structured array in one vectorised copy."""
        records = np.asarray(records)
        if records.dtype != TRACE_DTYPE:
            raise TypeError(f"expected trace dtype, got {records.dtype}")
        n = len(records)
        if n == 0:
            return
        needed = self._len + n
        if needed > len(self._data):
            capacity = len(self._data)
            while capacity < needed:
                capacity *= 2
            grown = np.zeros(capacity, dtype=TRACE_DTYPE)
            grown[:self._len] = self._data[:self._len]
            self._data = grown
        self._data[self._len:needed] = records
        self._len = needed

    def extend(self, records) -> None:
        """Append many records at once (vectorised via a staging array)."""
        if isinstance(records, np.ndarray):
            self.append_array(records)
            return
        rows = [r.as_tuple() if isinstance(r, TraceRecord) else tuple(r)
                for r in records]
        if rows:
            self.append_array(np.array(rows, dtype=TRACE_DTYPE))

    def to_array(self) -> np.ndarray:
        """Structured array of the records written so far (a copy)."""
        return self._data[:self._len].copy()

    def __iter__(self) -> Iterator[TraceRecord]:
        for row in self._data[:self._len]:
            yield TraceRecord(float(row["time"]), int(row["sector"]),
                              bool(row["write"]), int(row["pending"]),
                              float(row["size_kb"]), int(row["node"]))

    def clear(self) -> None:
        self._len = 0
