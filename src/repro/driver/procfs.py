"""Simulated /proc transport for instrumentation traces.

The paper buffered driver trace entries "by the kernel message handling
facility through the proc filesystem": a fixed-size in-kernel ring that a
user-space reader drains from what looks like a regular file.  We model the
ring (bounded, drop-on-overflow, overflow counted) and a periodic drain
process that moves entries into a user-space :class:`TraceBuffer` and
optionally notifies a sink — in the full node the sink is the system logger,
whose flushes to disk are themselves visible in the traces (the paper's
baseline writes are exactly this logging).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

import numpy as np

from repro.driver.trace import TRACE_DTYPE, TraceBuffer, TraceRecord
from repro.sim import Simulator


class ProcTraceTransport:
    """Bounded kernel ring buffer + periodic user-space drain."""

    def __init__(self, sim: Simulator,
                 ring_capacity: int = 4096,
                 drain_interval: float = 1.0,
                 sink: Optional[Callable[[int], None]] = None,
                 writer=None):
        if ring_capacity < 1:
            raise ValueError("ring capacity must be >= 1")
        if drain_interval <= 0:
            raise ValueError("drain interval must be positive")
        self.sim = sim
        self.ring_capacity = ring_capacity
        self.drain_interval = drain_interval
        #: user-space destination, what the analysis layer ultimately reads
        self.user_buffer = TraceBuffer()
        #: called with the number of records each time a drain moves data
        self.sink = sink
        #: optional streaming store sink (anything with ``append_array``,
        #: e.g. :class:`repro.store.TraceWriter`) fed each drained batch
        self.writer = writer
        self.dropped = 0
        #: lifetime records moved to user space (survives buffer clears)
        self.records_drained = 0
        self._ring: Deque[TraceRecord] = deque()
        self._running = True
        self._wakeup = None
        sim.process(self._drain_loop(), name="proc-trace-drain")

    @property
    def ring_fill(self) -> int:
        return len(self._ring)

    def push(self, record) -> None:
        """Called from the driver's interrupt path; never blocks.

        ``record`` is a :class:`TraceRecord` or its ``as_tuple()`` row
        (the driver's fast path pushes rows to skip the per-request
        dataclass construction; both drain identically).  When the ring
        is full the record is dropped and counted, matching printk-ring
        semantics.
        """
        ring = self._ring
        if len(ring) >= self.ring_capacity:
            self.dropped += 1
            return
        ring.append(record)
        wakeup = self._wakeup
        if wakeup is not None and wakeup._ok is None:
            wakeup.succeed()

    def drain_now(self) -> int:
        """Move everything currently in the ring to user space.

        The batch is converted to a structured array once and
        bulk-appended (the hot capture path), then also handed to the
        streaming ``writer`` when one is attached.
        """
        if not self._ring:
            return 0
        rows = [record if type(record) is tuple else record.as_tuple()
                for record in self._ring]
        self._ring.clear()
        batch = np.array(rows, dtype=TRACE_DTYPE)
        self.records_drained += len(batch)
        self.user_buffer.append_array(batch)
        if self.writer is not None:
            self.writer.append_array(batch)
        if self.sink is not None:
            self.sink(len(batch))
        return len(batch)

    # -- checkpoint state surface ---------------------------------------
    def snapshot_state(self) -> dict:
        """User-space records and counters of a *drained* transport.

        At a quiescent capture point the kernel ring must be empty (the
        drain loop parked waiting for a push); the captured records all
        live in the user buffer.
        """
        if self._ring:
            raise RuntimeError(
                f"trace ring still holds {len(self._ring)} records")
        return {"dropped": self.dropped,
                "records_drained": self.records_drained,
                "user_buffer": self.user_buffer.to_array()}

    def restore_state(self, state: dict) -> None:
        self.dropped = int(state["dropped"])
        self.records_drained = int(state["records_drained"])
        self.user_buffer.clear()
        self.user_buffer.append_array(state["user_buffer"])

    def stop(self) -> None:
        """Stop the periodic drain (final drain still possible manually)."""
        self._running = False
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()

    def _drain_loop(self):
        # Lazy loop: sleeps on an event while the ring is empty so an idle
        # transport does not keep the simulation alive.
        while self._running:
            if not self._ring:
                self._wakeup = self.sim.event()
                yield self._wakeup
                self._wakeup = None
                if not self._running:
                    return
            yield self.sim.timeout(self.drain_interval)
            self.drain_now()
