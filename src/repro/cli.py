"""Command-line driver: run experiments, print figures and Table 1.

Examples::

    repro-experiment baseline --nodes 4 --duration 500
    repro-experiment combined --figures 5 6 7 8 --csv-dir out/
    repro-experiment all --table
    repro-experiment wavelet --scenario myscenario.toml
    repro-experiment sweep --on baseline --duration 120 \
        --grid scheduler=clook,fifo --grid drive_cache_segments=0,4
    repro-experiment baseline --duration 200 --profile \
        --profile-out baseline.pstats
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.core import ExperimentRunner, EXPERIMENTS, make_figure, render_table1
from repro.core.figures import FIGURE_EXPERIMENT


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description="Reproduce the I/O characterization experiments of "
                    "Berry & El-Ghazawi (IPPS 1996) on a simulated "
                    "Beowulf cluster.")
    parser.add_argument("experiment",
                        choices=list(EXPERIMENTS) + ["all", "sweep"],
                        help="which experiment to run ('sweep' expands "
                             "--grid axes over the base scenario)")
    parser.add_argument("--nodes", type=int, default=None,
                        help="cluster size (paper: 16; default 4, or the "
                             "scenario file's value)")
    parser.add_argument("--seed", type=int, default=None,
                        help="root random seed (default 0)")
    parser.add_argument("--duration", type=float, default=None,
                        help="baseline duration in seconds (default 2000)")
    parser.add_argument("--scenario", type=Path, default=None,
                        metavar="FILE",
                        help="base scenario as TOML or JSON (see "
                             "repro.config.Scenario); flags like --nodes "
                             "override its fields")
    parser.add_argument("--grid", action="append", default=[],
                        metavar="AXIS=V1,V2",
                        help="sweep axis (repeatable): a repro.config "
                             "alias like scheduler=clook,fifo or a dotted "
                             "scenario path")
    parser.add_argument("--on", default="baseline", metavar="NAME",
                        help="which experiment the sweep runs at every "
                             "grid point (default baseline)")
    parser.add_argument("--json", type=Path, default=None, metavar="FILE",
                        help="with 'sweep': also write the comparison "
                             "results as JSON")
    parser.add_argument("--figures", type=int, nargs="*", default=None,
                        metavar="N",
                        help="figure numbers to render (default: all that "
                             "this experiment supports)")
    parser.add_argument("--table", action="store_true",
                        help="print Table 1 for the experiments run")
    parser.add_argument("--report", action="store_true",
                        help="print the full characterization report "
                             "(metrics, classes, locality, patterns)")
    parser.add_argument("--claims", action="store_true",
                        help="evaluate the paper-claim scorecard against "
                             "the experiments run")
    parser.add_argument("--html", type=Path, metavar="FILE",
                        help="write a single-file HTML report (Table 1, "
                             "scorecard, inline SVG figures)")
    parser.add_argument("--fit-model", type=Path, metavar="FILE",
                        help="fit the workload parameter set on the (last) "
                             "experiment's trace and write it as JSON")
    parser.add_argument("--csv-dir", type=Path, default=None,
                        help="export figure data and traces as CSV here")
    parser.add_argument("--sink", type=Path, default=None, metavar="DIR",
                        help="stream per-node traces into a run catalog "
                             "at DIR (chunked .rpt files + manifest; "
                             "inspect with repro-trace)")
    parser.add_argument("--checkpoint-every", type=float, default=None,
                        metavar="SECONDS",
                        help="capture a resumable whole-stack checkpoint "
                             "every SECONDS of simulated time (a .ckpt "
                             "file under --checkpoint-dir; with 'sweep', "
                             "per grid point, and re-running the sweep "
                             "skips finished points)")
    parser.add_argument("--checkpoint-dir", type=Path, default=None,
                        metavar="DIR",
                        help="where checkpoints land (default "
                             "checkpoints/)")
    parser.add_argument("--resume", type=Path, default=None,
                        metavar="FILE.ckpt",
                        help="restore this checkpoint and continue the "
                             "run bit-identically to the uninterrupted "
                             "one (single experiments only)")
    parser.add_argument("--obs", action="store_true",
                        help="record runtime observability metrics "
                             "(simulator, disks, caches, trace path) and "
                             "print the snapshot per experiment")
    parser.add_argument("--profile", action="store_true",
                        help="run the experiments under cProfile and "
                             "print the top functions by cumulative "
                             "time to stderr afterwards")
    parser.add_argument("--profile-out", type=Path, default=None,
                        metavar="FILE.pstats",
                        help="dump the raw profile to FILE.pstats as "
                             "well (implies --profile; inspect with "
                             "python -m pstats FILE.pstats)")
    parser.add_argument("--width", type=int, default=72,
                        help="plot width in characters")
    parser.add_argument("--parallel", action="store_true",
                        help="with 'all': run the five experiments in "
                             "separate processes")
    return parser


def _profiled(call, out: Optional[Path], limit: int = 25):
    """Run ``call()`` under cProfile; table to stderr, pstats to ``out``.

    The profile covers only the simulation runs, not figure rendering
    or analysis, so the table shows the engine hot path.
    """
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    try:
        return profiler.runcall(call)
    finally:
        stats = pstats.Stats(profiler, stream=sys.stderr)
        stats.sort_stats("cumulative")
        print(f"profile: top {limit} functions by cumulative time",
              file=sys.stderr)
        stats.print_stats(limit)
        if out is not None:
            stats.dump_stats(out)
            print(f"profile data -> {out} "
                  f"(inspect with: python -m pstats {out})",
                  file=sys.stderr)


def _base_scenario(args):
    from repro.config import Scenario
    scenario = Scenario.load(args.scenario) if args.scenario else None
    if args.grid and args.experiment != "sweep":
        print("--grid only applies to the 'sweep' experiment",
              file=sys.stderr)
        raise SystemExit(2)
    return scenario


def _run_sweep(args) -> int:
    from repro.config import (ConfigError, Scenario, parse_axis_spec,
                              run_sweep, render_sweep_table, sweep_to_json)
    base = Scenario.load(args.scenario) if args.scenario else Scenario()
    overrides = {}
    if args.nodes is not None:
        overrides["cluster.nnodes"] = args.nodes
    if args.seed is not None:
        overrides["seed"] = args.seed
    if overrides:
        base = base.with_overrides(overrides)
    try:
        axes = [parse_axis_spec(spec) for spec in args.grid]
    except ConfigError as exc:
        print(f"sweep failed: {exc}", file=sys.stderr)
        return 2
    if not axes:
        print("sweep needs at least one --grid AXIS=V1,V2",
              file=sys.stderr)
        return 2
    if args.on not in EXPERIMENTS + ("serial",):
        print(f"unknown experiment {args.on!r} for --on; choose from "
              f"{', '.join(EXPERIMENTS + ('serial',))}", file=sys.stderr)
        return 2
    if args.duration is not None and args.on != "baseline":
        print("--duration only applies to '--on baseline'; application "
              "sweeps end when the applications do", file=sys.stderr)
        return 2
    npoints = 1
    for axis in axes:
        npoints *= len(axis.values)
    print(f"sweeping {args.on} over {npoints} scenarios "
          f"({' x '.join(a.name for a in axes)}) ...", file=sys.stderr)
    sink = str(args.sink) if args.sink else None

    def execute():
        return run_sweep(base, axes, experiment=args.on,
                         duration=args.duration, sink=sink,
                         checkpoint_every=args.checkpoint_every,
                         checkpoint_dir=str(args.checkpoint_dir)
                         if args.checkpoint_dir else None)

    try:
        results = _profiled(execute, args.profile_out) \
            if args.profile else execute()
    except ConfigError as exc:
        print(f"sweep failed: {exc}", file=sys.stderr)
        return 2
    except Exception as exc:
        # a worker process died or raised: surface one line, not a
        # traceback, and exit non-zero so scripts notice
        print(f"sweep failed: {type(exc).__name__}: {exc}",
              file=sys.stderr)
        return 1
    print(render_sweep_table(
        results, title=f"scenario sweep: {args.on}"))
    if args.json:
        args.json.write_text(sweep_to_json(results))
        print(f"sweep results -> {args.json}", file=sys.stderr)
    if args.sink:
        print(f"run catalog -> {args.sink} "
              f"(browse with: repro-trace ls {args.sink})", file=sys.stderr)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.profile_out:
        args.profile = True
    if args.resume and args.experiment in ("all", "sweep"):
        print("--resume restores one experiment's checkpoint; it does "
              "not apply to 'all' or 'sweep' (a re-run sweep resumes "
              "from its --checkpoint-dir automatically)", file=sys.stderr)
        return 2
    if args.experiment == "sweep":
        return _run_sweep(args)
    scenario = _base_scenario(args)
    runner = ExperimentRunner(nnodes=args.nodes, seed=args.seed,
                              baseline_duration=args.duration,
                              scenario=scenario,
                              sink=args.sink, obs=args.obs)
    names = list(EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]

    def execute():
        if args.experiment == "all" and args.parallel:
            print(f"running all experiments in parallel on "
                  f"{runner.nnodes} nodes ...", file=sys.stderr)
            return runner.run_all(parallel=True)
        results = {}
        for name in names:
            verb = "resuming" if args.resume else "running"
            print(f"{verb} {name} on {runner.nnodes} nodes ...",
                  file=sys.stderr)
            results[name] = runner.run(
                name, checkpoint_every=args.checkpoint_every,
                checkpoint_dir=args.checkpoint_dir,
                resume_from=args.resume)
        return results

    from repro.checkpoint import CheckpointError
    try:
        results = _profiled(execute, args.profile_out) \
            if args.profile else execute()
    except CheckpointError as exc:
        print(f"checkpoint error: {exc}", file=sys.stderr)
        return 1
    for name, result in results.items():
        m = result.metrics
        print(f"  {name}: {m.total_requests} requests, "
              f"{m.read_pct}% reads / {m.write_pct}% writes, "
              f"{m.requests_per_second:.2f} req/s/node over "
              f"{m.duration:.0f} s", file=sys.stderr)

    wanted = args.figures
    if wanted is None:
        wanted = [n for n, exp in sorted(FIGURE_EXPERIMENT.items())
                  if exp in results]
    for number in wanted:
        exp = FIGURE_EXPERIMENT.get(number)
        if exp is None:
            print(f"no Figure {number} in the paper", file=sys.stderr)
            return 2
        if exp not in results:
            print(f"Figure {number} needs the {exp!r} experiment "
                  f"(not run)", file=sys.stderr)
            return 2
        fig = make_figure(number, results[exp])
        print(fig.render(width=args.width))
        print()
        if args.csv_dir:
            args.csv_dir.mkdir(parents=True, exist_ok=True)
            fig.to_csv(args.csv_dir / f"figure{number}.csv")

    if args.obs:
        from repro.obs import render_snapshot_table
        for name, result in results.items():
            if result.obs:
                print(f"runtime metrics: {name}")
                print(render_snapshot_table({name: result.obs},
                                            indent="  "))
                print()
    if args.report:
        from repro.core import characterize
        for result in results.values():
            print(characterize(result))
            print()
    if args.html:
        from repro.core.html_report import build_html_report
        args.html.write_text(build_html_report(results))
        print(f"HTML report -> {args.html}", file=sys.stderr)
    if args.fit_model:
        from repro.synth import fit_workload_model
        last = results[names[-1]]
        model = fit_workload_model(last.trace)
        args.fit_model.write_text(model.to_json())
        print(f"parameter set fitted on {last.name!r} "
              f"({model.source_records} records) -> {args.fit_model}",
              file=sys.stderr)
    if args.claims:
        from repro.core.claims import evaluate_claims, render_scorecard
        print(render_scorecard(evaluate_claims(results)))
    if args.table or args.experiment == "all":
        print(render_table1(results))
    if args.csv_dir:
        args.csv_dir.mkdir(parents=True, exist_ok=True)
        for name, result in results.items():
            result.trace.save(args.csv_dir / f"trace_{name}.csv")
        print(f"CSV written to {args.csv_dir}", file=sys.stderr)
    if args.sink:
        print(f"run catalog -> {args.sink} "
              f"(browse with: repro-trace ls {args.sink})", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
