"""Lazy, index-driven reader of ``.rpt`` trace store files.

Opening a file reads only the header and the footer index — record
payloads stay compressed on disk until a query actually needs them.
Queries push predicates down to the chunk index: a chunk whose min/max
time, node set, or read/write counts cannot match is skipped without
being read or decompressed (``chunks_read`` counts what was inflated, so
tests and benchmarks can verify the skipping).

If the footer is missing — the writer crashed before ``close()`` or the
file was truncated — the reader transparently falls back to scanning the
chunk headers from the front, recovering every complete chunk
(``recovered`` is then True).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, List, Optional, Union

import numpy as np

from repro.store.format import (
    ChunkMeta,
    StoreFormatError,
    TracePredicate,
    decode_footer,
    decode_header,
    dtype_from_descr,
    read_chunk_at,
    read_payload,
)


class TraceReader:
    """Random/streaming access to one trace store file."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._fh = self.path.open("rb")
        try:
            self.header = decode_header(self._fh)
            self.dtype = dtype_from_descr(self.header["dtype"])
            self.recovered = False
            #: bytes past the last complete chunk that a recovery scan
            #: had to drop (a torn write's tail); 0 on clean files
            self.tail_bytes = 0
            #: chunks decompressed so far (the predicate-pushdown scorecard)
            self.chunks_read = 0
            size = self.path.stat().st_size
            index = decode_footer(self._fh, size)
            if index is not None:
                self.chunks, self.record_count = index
            else:
                self.chunks = self._scan_chunks(size)
                self.record_count = sum(c.count for c in self.chunks)
                self.recovered = True
        except BaseException:
            # never leak the handle when the file turns out unreadable
            self._fh.close()
            raise

    # -- basic protocol -------------------------------------------------------
    def __len__(self) -> int:
        return self.record_count

    @property
    def chunk_count(self) -> int:
        return len(self.chunks)

    @property
    def time_span(self) -> tuple:
        """(min, max) record time over the whole file, from the index."""
        if not self.chunks:
            return (0.0, 0.0)
        return (min(c.t0 for c in self.chunks),
                max(c.t1 for c in self.chunks))

    def nodes(self) -> tuple:
        """Distinct node ids over the whole file, from the index."""
        ids = set()
        for c in self.chunks:
            ids.update(c.nodes)
        return tuple(sorted(ids))

    def close(self) -> None:
        self._fh.close()

    def __enter__(self) -> "TraceReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- queries ---------------------------------------------------------------
    def iter_arrays(self, t0: Optional[float] = None,
                    t1: Optional[float] = None,
                    node: Optional[int] = None,
                    write: Optional[bool] = None
                    ) -> Iterator[np.ndarray]:
        """Yield matching records chunk by chunk (bounded memory).

        Chunks the index proves irrelevant are never decompressed; the
        surviving chunks are masked record-exactly.
        """
        pred = TracePredicate(t0=t0, t1=t1, node=node, write=write)
        for meta in self.chunks:
            if not pred.admits_chunk(meta):
                continue
            records = self._load(meta)
            if not pred.trivial:
                records = records[pred.mask(records)]
            if len(records):
                yield records

    def read(self, t0: Optional[float] = None, t1: Optional[float] = None,
             node: Optional[int] = None, write: Optional[bool] = None
             ) -> np.ndarray:
        """Materialise all matching records as one structured array."""
        parts = list(self.iter_arrays(t0=t0, t1=t1, node=node, write=write))
        if not parts:
            return np.zeros(0, dtype=self.dtype)
        return np.concatenate(parts)

    def dataset(self, t0: Optional[float] = None, t1: Optional[float] = None,
                node: Optional[int] = None, write: Optional[bool] = None):
        """Matching records as a :class:`~repro.core.trace.TraceDataset`."""
        from repro.core.trace import TraceDataset
        return TraceDataset(self.read(t0=t0, t1=t1, node=node, write=write))

    def __iter__(self) -> Iterator[np.ndarray]:
        return self.iter_arrays()

    # -- internals ------------------------------------------------------------
    def _load(self, meta: ChunkMeta) -> np.ndarray:
        _, payload_offset = read_chunk_at(self._fh, meta.offset)
        self.chunks_read += 1
        return read_payload(self._fh, meta, payload_offset, self.dtype)

    def _scan_chunks(self, size: int) -> List[ChunkMeta]:
        """Crash recovery: walk chunk headers from the front.

        Stops at the first offset without a complete valid chunk — by
        construction everything before it is intact (payload crcs are
        still verified lazily on read).
        """
        chunks = []
        offset = self.header["header_size"]
        while offset < size:
            try:
                meta, payload_offset = read_chunk_at(self._fh, offset)
            except StoreFormatError:
                break
            end = payload_offset + meta.comp
            if end > size:  # payload itself is cut off
                break
            chunks.append(meta)
            offset = end
        self.tail_bytes = size - offset
        return chunks


def read_trace(path: Union[str, Path], **predicates) -> np.ndarray:
    """One-shot convenience: all matching records of a trace store file."""
    with TraceReader(path) as reader:
        return reader.read(**predicates)
