"""The ``.rpt`` on-disk trace format (version 1).

A versioned, chunked, compressed, indexed container for trace records —
the reproduction's answer to the paper's flat per-node trace files.  The
layout is streaming-friendly (chunks are appended as they fill) and
crash-safe (every chunk is self-describing, so a truncated file recovers
all complete chunks even without its footer):

    +--------------------------------------------------------------+
    | header   magic "RPROTRC1" | u16 version | u16 pad | u32 jlen |
    |          json: {dtype descr, chunk_records, ...}             |
    +--------------------------------------------------------------+
    | chunk 0  magic "CHNK" | u32 mlen | u32 clen                  |
    |          json meta: {count, t0, t1, s0, s1, nodes, writes,   |
    |                      raw, crc}                               |
    |          zlib-compressed columnar payload                    |
    +--------------------------------------------------------------+
    | chunk 1 ...                                                  |
    +--------------------------------------------------------------+
    | footer   magic "FIDX" | u32 jlen                             |
    |          json index: [{offset, count, t0, t1, ...}, ...]     |
    +--------------------------------------------------------------+
    | trailer  u64 footer offset | magic "RPROEND1"                |
    +--------------------------------------------------------------+

Payloads are *columnar*: each field's values are stored contiguously
(all timestamps, then all sectors, ...), which compresses far better
than interleaved records — neighbouring timestamps share high bytes,
sizes and node ids are near-constant runs.  All integers little-endian.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.driver import TRACE_DTYPE

#: file magic / version ------------------------------------------------------
MAGIC = b"RPROTRC1"
VERSION = 1
CHUNK_MAGIC = b"CHNK"
FOOTER_MAGIC = b"FIDX"
TRAILER_MAGIC = b"RPROEND1"

_HEADER_FIXED = struct.Struct("<8sHHI")      # magic, version, pad, json len
_CHUNK_FIXED = struct.Struct("<4sII")        # magic, meta len, payload len
_FOOTER_FIXED = struct.Struct("<4sI")        # magic, json len
_TRAILER = struct.Struct("<Q8s")             # footer offset, magic

HEADER_FIXED_SIZE = _HEADER_FIXED.size
CHUNK_FIXED_SIZE = _CHUNK_FIXED.size
TRAILER_SIZE = _TRAILER.size

#: default records per chunk: 64 Ki records ~ 1.6 MB raw per chunk
DEFAULT_CHUNK_RECORDS = 65536
#: default zlib level — 6 is the classic speed/ratio sweet spot
DEFAULT_COMPRESSION = 6


class StoreFormatError(ValueError):
    """Raised when a file is not a valid (or compatible) trace store."""


def dtype_descr(dtype: np.dtype = TRACE_DTYPE) -> list:
    """JSON-serialisable descriptor of a structured dtype."""
    return [[name, str(dtype[name].str)] for name in dtype.names]


def dtype_from_descr(descr) -> np.dtype:
    return np.dtype([(str(name), str(spec)) for name, spec in descr])


@dataclass(frozen=True)
class ChunkMeta:
    """Per-chunk index entry: where the chunk lives and what is in it.

    The min/max summaries power predicate pushdown — a reader can prove a
    chunk irrelevant to a query without decompressing it.
    """

    offset: int          # file offset of the chunk's fixed header
    count: int           # records in the chunk
    t0: float            # min record time
    t1: float            # max record time
    s0: int              # min sector
    s1: int              # max sector
    nodes: Tuple[int, ...]  # distinct node ids, sorted
    writes: int          # number of write records
    raw: int             # uncompressed payload bytes
    comp: int            # compressed payload bytes
    crc: int             # crc32 of the raw columnar payload

    def to_json(self) -> dict:
        return {"offset": self.offset, "count": self.count,
                "t0": self.t0, "t1": self.t1, "s0": self.s0, "s1": self.s1,
                "nodes": list(self.nodes), "writes": self.writes,
                "raw": self.raw, "comp": self.comp, "crc": self.crc}

    @classmethod
    def from_json(cls, d: dict) -> "ChunkMeta":
        return cls(offset=int(d["offset"]), count=int(d["count"]),
                   t0=float(d["t0"]), t1=float(d["t1"]),
                   s0=int(d["s0"]), s1=int(d["s1"]),
                   nodes=tuple(int(n) for n in d["nodes"]),
                   writes=int(d["writes"]), raw=int(d["raw"]),
                   comp=int(d["comp"]), crc=int(d["crc"]))


@dataclass(frozen=True)
class TracePredicate:
    """A pushdown-able record filter: time window, node, direction.

    ``admits_chunk`` decides from a :class:`ChunkMeta` alone whether the
    chunk *could* contain matching records; ``mask`` evaluates the exact
    per-record filter on a decompressed array.  Semantics match
    ``TraceDataset``: the time window is half-open ``[t0, t1)``.
    """

    t0: Optional[float] = None
    t1: Optional[float] = None
    node: Optional[int] = None
    write: Optional[bool] = None

    @property
    def trivial(self) -> bool:
        return (self.t0 is None and self.t1 is None
                and self.node is None and self.write is None)

    def admits_chunk(self, meta: ChunkMeta) -> bool:
        if meta.count == 0:
            return False
        if self.t0 is not None and meta.t1 < self.t0:
            return False
        if self.t1 is not None and meta.t0 >= self.t1:
            return False
        if self.node is not None and self.node not in meta.nodes:
            return False
        if self.write is True and meta.writes == 0:
            return False
        if self.write is False and meta.writes == meta.count:
            return False
        return True

    def mask(self, records: np.ndarray) -> np.ndarray:
        keep = np.ones(len(records), dtype=bool)
        if self.t0 is not None:
            keep &= records["time"] >= self.t0
        if self.t1 is not None:
            keep &= records["time"] < self.t1
        if self.node is not None:
            keep &= records["node"] == self.node
        if self.write is not None:
            keep &= records["write"] == (1 if self.write else 0)
        return keep


# -- columnar payload ---------------------------------------------------------
def pack_columns(records: np.ndarray) -> bytes:
    """Structured array -> byte-shuffled columnar bytes.

    Each field is laid out contiguously and *byte-shuffled* (all the
    records' byte 0, then all their byte 1, ...): slowly-varying values
    — sorted timestamps, clustered sectors — put their near-constant
    high bytes into long runs that zlib collapses, typically a further
    ~35% over plain columnar.
    """
    parts = []
    for name in records.dtype.names:
        col = np.ascontiguousarray(records[name])
        lanes = col.view(np.uint8).reshape(len(col), col.dtype.itemsize)
        parts.append(np.ascontiguousarray(lanes.T).tobytes())
    return b"".join(parts)


def unpack_columns(raw: bytes, count: int,
                   dtype: np.dtype = TRACE_DTYPE) -> np.ndarray:
    """Byte-shuffled columnar bytes -> structured array (inverse of
    ``pack_columns``)."""
    out = np.empty(count, dtype=dtype)
    offset = 0
    for name in dtype.names:
        field = dtype[name]
        nbytes = field.itemsize * count
        lanes = np.frombuffer(raw, dtype=np.uint8, count=nbytes,
                              offset=offset)
        col = np.ascontiguousarray(
            lanes.reshape(field.itemsize, count).T).view(field)
        out[name] = col.reshape(count)
        offset += nbytes
    if offset != len(raw):
        raise StoreFormatError(
            f"payload is {len(raw)} bytes, schema needs {offset}")
    return out


def summarize(records: np.ndarray, offset: int,
              raw: int, comp: int, crc: int) -> ChunkMeta:
    """Compute a chunk's index entry from its records."""
    return ChunkMeta(
        offset=offset,
        count=len(records),
        t0=float(records["time"].min()),
        t1=float(records["time"].max()),
        s0=int(records["sector"].min()),
        s1=int(records["sector"].max()),
        nodes=tuple(int(n) for n in np.unique(records["node"])),
        writes=int(np.count_nonzero(records["write"])),
        raw=raw, comp=comp, crc=crc)


# -- low-level encode/decode --------------------------------------------------
def encode_header(chunk_records: int,
                  dtype: np.dtype = TRACE_DTYPE,
                  extra: Optional[dict] = None) -> bytes:
    meta = {"dtype": dtype_descr(dtype), "chunk_records": chunk_records}
    if extra:
        meta.update(extra)
    blob = json.dumps(meta, separators=(",", ":")).encode()
    return _HEADER_FIXED.pack(MAGIC, VERSION, 0, len(blob)) + blob


def decode_header(fh) -> dict:
    """Read and validate the header; leaves ``fh`` at the first chunk."""
    fixed = fh.read(HEADER_FIXED_SIZE)
    if len(fixed) < HEADER_FIXED_SIZE:
        raise StoreFormatError("file too short for a trace store header")
    magic, version, _, jlen = _HEADER_FIXED.unpack(fixed)
    if magic != MAGIC:
        raise StoreFormatError(f"bad magic {magic!r}: not a trace store")
    if version != VERSION:
        raise StoreFormatError(f"unsupported trace store version {version}")
    blob = fh.read(jlen)
    if len(blob) < jlen:
        raise StoreFormatError("truncated trace store header")
    try:
        # ValueError covers both JSONDecodeError and the UnicodeDecodeError
        # a torn (partially written) header raises on non-UTF-8 bytes
        meta = json.loads(blob)
    except ValueError as exc:
        raise StoreFormatError(
            f"corrupt trace store header: {exc}") from None
    if not isinstance(meta, dict) or "dtype" not in meta:
        raise StoreFormatError(
            "corrupt trace store header: not a header object")
    meta["header_size"] = HEADER_FIXED_SIZE + jlen
    return meta


def encode_chunk(records: np.ndarray, offset: int,
                 level: int = DEFAULT_COMPRESSION
                 ) -> Tuple[bytes, ChunkMeta]:
    """Records -> (chunk bytes ready to append, index entry)."""
    raw = pack_columns(records)
    comp = zlib.compress(raw, level)
    meta = summarize(records, offset=offset, raw=len(raw), comp=len(comp),
                     crc=zlib.crc32(raw))
    blob = json.dumps(meta.to_json(), separators=(",", ":")).encode()
    return (_CHUNK_FIXED.pack(CHUNK_MAGIC, len(blob), len(comp))
            + blob + comp), meta


def read_chunk_at(fh, offset: int) -> Tuple[ChunkMeta, int]:
    """Read one chunk's fixed header + meta at ``offset``.

    Returns ``(meta, payload_offset)`` without touching the payload.
    Raises :class:`StoreFormatError` if there is no complete, valid chunk
    header here (the crash-recovery scan uses that to stop).
    """
    fh.seek(offset)
    fixed = fh.read(CHUNK_FIXED_SIZE)
    if len(fixed) < CHUNK_FIXED_SIZE:
        raise StoreFormatError("no chunk header at offset")
    magic, mlen, clen = _CHUNK_FIXED.unpack(fixed)
    if magic != CHUNK_MAGIC:
        raise StoreFormatError(f"bad chunk magic at {offset}")
    blob = fh.read(mlen)
    if len(blob) < mlen:
        raise StoreFormatError("truncated chunk meta")
    try:
        meta = ChunkMeta.from_json(json.loads(blob))
    except (ValueError, KeyError, TypeError) as exc:
        raise StoreFormatError(f"corrupt chunk meta at {offset}: {exc}")
    if meta.comp != clen:
        raise StoreFormatError("chunk meta disagrees with payload length")
    return meta, offset + CHUNK_FIXED_SIZE + mlen


def read_payload(fh, meta: ChunkMeta, payload_offset: int,
                 dtype: np.dtype = TRACE_DTYPE,
                 verify: bool = True) -> np.ndarray:
    """Decompress one chunk's records (the only place bytes are inflated)."""
    fh.seek(payload_offset)
    comp = fh.read(meta.comp)
    if len(comp) < meta.comp:
        raise StoreFormatError("truncated chunk payload")
    try:
        raw = zlib.decompress(comp)
    except zlib.error as exc:
        raise StoreFormatError(
            f"chunk at {meta.offset} does not decompress: {exc}")
    if verify and zlib.crc32(raw) != meta.crc:
        raise StoreFormatError(f"chunk at {meta.offset} fails its crc")
    return unpack_columns(raw, meta.count, dtype)


def encode_footer(chunks, record_count: int) -> bytes:
    index = {"chunks": [c.to_json() for c in chunks],
             "records": record_count}
    blob = json.dumps(index, separators=(",", ":")).encode()
    return _FOOTER_FIXED.pack(FOOTER_MAGIC, len(blob)) + blob


def encode_trailer(footer_offset: int) -> bytes:
    return _TRAILER.pack(footer_offset, TRAILER_MAGIC)


def decode_footer(fh, file_size: int):
    """Load the chunk index from the footer, or ``None`` if absent/invalid.

    A missing or damaged footer is not an error — the reader falls back
    to scanning the chunks themselves.
    """
    if file_size < TRAILER_SIZE:
        return None
    fh.seek(file_size - TRAILER_SIZE)
    footer_offset, magic = _TRAILER.unpack(fh.read(TRAILER_SIZE))
    if magic != TRAILER_MAGIC or footer_offset >= file_size:
        return None
    fh.seek(footer_offset)
    fixed = fh.read(_FOOTER_FIXED.size)
    if len(fixed) < _FOOTER_FIXED.size:
        return None
    fmagic, jlen = _FOOTER_FIXED.unpack(fixed)
    if fmagic != FOOTER_MAGIC:
        return None
    blob = fh.read(jlen)
    if len(blob) < jlen:
        return None
    try:
        index = json.loads(blob)
        chunks = [ChunkMeta.from_json(c) for c in index["chunks"]]
        return chunks, int(index["records"])
    except (ValueError, KeyError, TypeError):
        return None
