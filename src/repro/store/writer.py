"""Streaming trace sink with bounded memory.

``TraceWriter`` accepts records one at a time or in bulk arrays, spills a
compressed chunk to disk every ``chunk_records`` records, and never holds
more than one chunk of pending records in memory (plus the transient
compression buffer of the chunk being spilled — "≤ 2 chunks resident").
``close()`` appends the footer index and trailer; a crash before that
loses at most the pending partial chunk, and :class:`TraceReader`
recovers every complete chunk from the headerless tail.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.driver import TRACE_DTYPE, TraceRecord
from repro.store.format import (
    DEFAULT_CHUNK_RECORDS,
    DEFAULT_COMPRESSION,
    encode_chunk,
    encode_footer,
    encode_header,
    encode_trailer,
)


class TraceWriter:
    """Append-only writer of ``.rpt`` trace store files."""

    def __init__(self, path: Union[str, Path],
                 chunk_records: int = DEFAULT_CHUNK_RECORDS,
                 compression: int = DEFAULT_COMPRESSION):
        if chunk_records < 1:
            raise ValueError("chunk_records must be >= 1")
        self.path = Path(path)
        self.chunk_records = chunk_records
        self.compression = compression
        self.records_written = 0
        self.chunks_written = 0
        self.chunks = []            # ChunkMeta per spilled chunk
        self._pending = np.empty(chunk_records, dtype=TRACE_DTYPE)
        self._fill = 0
        self._fh = self.path.open("wb")
        self._fh.write(encode_header(chunk_records))
        self._offset = self._fh.tell()
        self._closed = False

    # -- introspection ------------------------------------------------------
    @property
    def pending_records(self) -> int:
        """Records buffered in memory, waiting for the next spill."""
        return self._fill

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def compressed_bytes(self) -> int:
        """Compressed payload bytes of all spilled chunks."""
        return sum(meta.comp for meta in self.chunks)

    @property
    def raw_bytes(self) -> int:
        """Uncompressed record bytes of all spilled chunks."""
        return sum(meta.raw for meta in self.chunks)

    # -- appending ----------------------------------------------------------
    def append(self, record) -> None:
        """Add one record (a :class:`TraceRecord` or a field tuple)."""
        self._check_open()
        if isinstance(record, TraceRecord):
            record = record.as_tuple()
        self._pending[self._fill] = record
        self._fill += 1
        if self._fill == self.chunk_records:
            self._spill(self._pending)
            self._fill = 0

    def append_array(self, records: np.ndarray) -> None:
        """Bulk-append a structured array; spills chunk by chunk.

        Memory stays bounded regardless of input size: full chunks are
        compressed straight from views of the input, never copied whole.
        """
        self._check_open()
        records = np.asarray(records)
        if records.dtype != TRACE_DTYPE:
            raise TypeError(f"expected trace dtype, got {records.dtype}")
        start = 0
        n = len(records)
        while start < n:
            if self._fill == 0 and n - start >= self.chunk_records:
                # fast path: a whole chunk directly from the input view
                self._spill(records[start:start + self.chunk_records])
                start += self.chunk_records
                continue
            take = min(self.chunk_records - self._fill, n - start)
            self._pending[self._fill:self._fill + take] = \
                records[start:start + take]
            self._fill += take
            start += take
            if self._fill == self.chunk_records:
                self._spill(self._pending)
                self._fill = 0

    def flush(self) -> None:
        """Spill the pending partial chunk (if any) and flush the OS file.

        Normally chunks spill only when full; an explicit flush bounds the
        data at risk before :meth:`close` (e.g. at an experiment phase
        boundary).  Frequent flushes cost compression ratio.
        """
        self._check_open()
        if self._fill:
            self._spill(self._pending[:self._fill])
            self._fill = 0
        self._fh.flush()

    # -- finalisation --------------------------------------------------------
    def close(self) -> None:
        """Spill the tail, append the footer index, and close the file."""
        if self._closed:
            return
        if self._fill:
            self._spill(self._pending[:self._fill])
            self._fill = 0
        footer_offset = self._offset
        self._fh.write(encode_footer(self.chunks, self.records_written))
        self._fh.write(encode_trailer(footer_offset))
        self._fh.close()
        self._closed = True
        self._pending = np.empty(0, dtype=TRACE_DTYPE)

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- internals ------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise ValueError(f"writer for {self.path} is closed")

    def _spill(self, records: np.ndarray) -> None:
        if not len(records):
            return
        blob, meta = encode_chunk(records, offset=self._offset,
                                  level=self.compression)
        self._fh.write(blob)
        self._offset += len(blob)
        self.chunks.append(meta)
        self.chunks_written += 1
        self.records_written += len(records)


def write_trace(path: Union[str, Path], records: np.ndarray,
                chunk_records: int = DEFAULT_CHUNK_RECORDS,
                compression: int = DEFAULT_COMPRESSION) -> Path:
    """One-shot convenience: write a whole array as a trace store file."""
    with TraceWriter(path, chunk_records=chunk_records,
                     compression=compression) as writer:
        writer.append_array(records)
    return Path(path)
