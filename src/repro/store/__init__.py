"""Chunked, compressed, indexed trace store and run catalog.

The paper's apparatus ends at flat per-node trace files read whole; this
package is the production-scale replacement.  ``.rpt`` files hold
zlib-compressed columnar chunks of ``TRACE_DTYPE`` records behind a
footer index carrying per-chunk min/max time, sector range, node set and
read/write counts, so :class:`TraceWriter` streams captures to disk with
bounded memory and :class:`TraceReader` answers windowed queries without
decompressing non-matching chunks.  :class:`RunCatalog` organises whole
experiments (``runs/<name>/manifest.json`` + per-node files) with their
config, seed, and summary metrics.  The ``repro-trace`` CLI
(``info``/``cat``/``convert``/``merge``/``ls``) operates on both.
"""

from repro.store.format import (
    ChunkMeta,
    DEFAULT_CHUNK_RECORDS,
    DEFAULT_COMPRESSION,
    StoreFormatError,
    TracePredicate,
)
from repro.store.writer import TraceWriter, write_trace
from repro.store.reader import TraceReader, read_trace
from repro.store.catalog import RunCapture, RunCatalog

__all__ = [
    "ChunkMeta",
    "DEFAULT_CHUNK_RECORDS",
    "DEFAULT_COMPRESSION",
    "RunCapture",
    "RunCatalog",
    "StoreFormatError",
    "TracePredicate",
    "TraceReader",
    "TraceWriter",
    "read_trace",
    "write_trace",
]
