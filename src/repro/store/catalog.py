"""Run catalog: a directory of experiment runs with manifests.

Layout (one directory per run)::

    runs/
      combined/
        manifest.json          # config, seed, summary metrics, file list
        node_0000.rpt          # per-node trace store files
        node_0001.rpt
        ...

Two capture paths produce identical layouts:

* **streaming** — :meth:`RunCatalog.start_run` hands out one
  :class:`~repro.store.writer.TraceWriter` per node which the driver's
  ``/proc`` transport drains into *during* the run (bounded memory); the
  capture is finalised with the experiment's summary once it ends;
* **one-shot** — :meth:`RunCatalog.save` splits an in-memory
  :class:`~repro.core.experiments.ExperimentResult` per node and writes
  it out after the fact.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.store.format import DEFAULT_CHUNK_RECORDS
from repro.store.reader import TraceReader
from repro.store.writer import TraceWriter

#: current manifest format — v2 adds the resolved ``scenario`` block
MANIFEST_FORMAT = "repro-run-v2"
#: formats :meth:`RunCatalog.manifest` accepts (v1 predates scenarios)
MANIFEST_FORMATS = ("repro-run-v1", "repro-run-v2")
MANIFEST_NAME = "manifest.json"


def _node_filename(node_id: int) -> str:
    return f"node_{node_id:04d}.rpt"


class RunCapture:
    """Per-node streaming writers for one run in progress."""

    def __init__(self, directory: Path, name: str, nnodes: int,
                 seed: Optional[int] = None,
                 config: Optional[dict] = None,
                 chunk_records: int = DEFAULT_CHUNK_RECORDS,
                 scenario: Optional[dict] = None):
        self.directory = directory
        self.name = name
        self.nnodes = nnodes
        self.seed = seed
        self.config = dict(config or {})
        #: fully-resolved scenario dict (``Scenario.to_dict()``), if the
        #: run was configured through the scenario layer
        self.scenario = dict(scenario) if scenario else None
        self._writers: Dict[int, TraceWriter] = {}
        self._chunk_records = chunk_records
        self.finalized = False

    def writer_for(self, node_id: int) -> TraceWriter:
        """The (lazily created) trace sink for one node."""
        if node_id not in self._writers:
            self._writers[node_id] = TraceWriter(
                self.directory / _node_filename(node_id),
                chunk_records=self._chunk_records)
        return self._writers[node_id]

    @property
    def writers(self) -> Dict[int, TraceWriter]:
        """The per-node writers created so far (read-only view)."""
        return dict(self._writers)

    def close_writers(self) -> None:
        """Close every writer (spills tails, appends footers); idempotent."""
        for writer in self._writers.values():
            writer.close()

    def attach(self, cluster) -> None:
        """Point every node's ``/proc`` transport at its writer."""
        for node in cluster.nodes:
            node.kernel.transport.writer = self.writer_for(node.node_id)

    def detach(self, cluster) -> None:
        for node in cluster.nodes:
            node.kernel.transport.writer = None

    def finalize(self, result=None, metrics: Optional[dict] = None) -> Path:
        """Close all writers and write the manifest.

        ``result`` (an ``ExperimentResult``) supplies duration and summary
        metrics when given; a crash before ``finalize`` leaves recoverable
        per-node files and no manifest.
        """
        if self.finalized:
            return self.directory / MANIFEST_NAME
        self.close_writers()
        manifest = {
            "format": MANIFEST_FORMAT,
            "name": self.name,
            "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "nnodes": self.nnodes,
            "seed": self.seed,
            "config": self.config,
            "traces": {str(nid): _node_filename(nid)
                       for nid in sorted(self._writers)},
            "records": sum(w.records_written
                           for w in self._writers.values()),
        }
        if self.scenario is not None:
            manifest["scenario"] = self.scenario
        if result is not None:
            manifest["duration"] = result.duration
            manifest["metrics"] = result.metrics.to_dict()
            if getattr(result, "obs", None):
                manifest["obs"] = result.obs
        if metrics:
            manifest.setdefault("metrics", {}).update(metrics)
        path = self.directory / MANIFEST_NAME
        # Write-then-rename so a concurrent reader (or a second writer
        # racing into the same catalog) never sees a partial manifest.
        tmp = path.with_name(MANIFEST_NAME + ".tmp")
        tmp.write_text(json.dumps(manifest, indent=2))
        os.replace(tmp, path)
        self.finalized = True
        return path


class RunCatalog:
    """The ``runs/`` directory: create, list, and open stored runs."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)

    # -- creating runs --------------------------------------------------------
    def start_run(self, name: str, nnodes: int,
                  seed: Optional[int] = None,
                  config: Optional[dict] = None,
                  chunk_records: int = DEFAULT_CHUNK_RECORDS,
                  scenario: Optional[dict] = None) -> RunCapture:
        """Begin a streaming capture; the run name is de-duplicated.

        Concurrency-safe: the run directory is *claimed* with an
        exclusive ``mkdir``, so several writers (e.g.
        ``ExperimentRunner.run_all(parallel=True, sink=...)``) racing
        into one catalog each get a distinct directory instead of
        interleaving files.
        """
        directory = self._claim_dir(name)
        return RunCapture(directory, name=directory.name, nnodes=nnodes,
                          seed=seed, config=config,
                          chunk_records=chunk_records, scenario=scenario)

    def save(self, result, seed: Optional[int] = None,
             config: Optional[dict] = None,
             chunk_records: int = DEFAULT_CHUNK_RECORDS) -> Path:
        """One-shot: persist an in-memory experiment result, per node."""
        capture = self.start_run(result.name, nnodes=result.nnodes,
                                 seed=seed, config=config,
                                 chunk_records=chunk_records)
        records = result.trace.records
        for node_id in np.unique(records["node"]):
            writer = capture.writer_for(int(node_id))
            writer.append_array(records[records["node"] == node_id])
        capture.finalize(result)
        return capture.directory

    # -- browsing -------------------------------------------------------------
    def runs(self) -> List[str]:
        """Run ids with a manifest, sorted."""
        if not self.root.is_dir():
            return []
        return sorted(p.parent.name
                      for p in self.root.glob(f"*/{MANIFEST_NAME}"))

    def manifest(self, run_id: str) -> dict:
        path = self.root / run_id / MANIFEST_NAME
        if not path.is_file():
            raise FileNotFoundError(f"no run {run_id!r} under {self.root}")
        manifest = json.loads(path.read_text())
        if manifest.get("format") not in MANIFEST_FORMATS:
            raise ValueError(f"{path} is not a "
                             f"{'/'.join(MANIFEST_FORMATS)} manifest")
        return manifest

    def scenario(self, run_id: str):
        """The run's :class:`~repro.config.Scenario`, if recorded.

        Legacy (v1) manifests predate the scenario layer and return
        ``None``; callers that need a stack description for them should
        fall back to ``Scenario()`` (the paper's defaults) explicitly.
        """
        data = self.manifest(run_id).get("scenario")
        if data is None:
            return None
        from repro.config import Scenario
        return Scenario.from_dict(data)

    def metrics(self, run_id: str):
        """The stored summary as a :class:`WorkloadMetrics`.

        Round-trips through :meth:`WorkloadMetrics.from_dict`, which
        also understands legacy manifests that predate the ``nnodes``
        field.
        """
        from repro.core.metrics import WorkloadMetrics
        manifest = self.manifest(run_id)
        data = dict(manifest.get("metrics", {}))
        data.setdefault("label", manifest.get("name", run_id))
        data.setdefault("nnodes", manifest.get("nnodes", 0) or None)
        if data["nnodes"] is None:
            del data["nnodes"]
        return WorkloadMetrics.from_dict(data)

    def obs_snapshot(self, run_id: str) -> Optional[dict]:
        """The run's observability snapshot, or None if not recorded."""
        return self.manifest(run_id).get("obs")

    def trace_paths(self, run_id: str) -> Dict[int, Path]:
        manifest = self.manifest(run_id)
        return {int(nid): self.root / run_id / fname
                for nid, fname in manifest["traces"].items()}

    def open_traces(self, run_id: str) -> Dict[int, TraceReader]:
        """One lazy :class:`TraceReader` per node file."""
        return {nid: TraceReader(path)
                for nid, path in self.trace_paths(run_id).items()}

    def load_dataset(self, run_id: str, **predicates):
        """All nodes' matching records, time-merged, as a ``TraceDataset``."""
        from repro.core.trace import TraceDataset
        parts = []
        for nid, path in sorted(self.trace_paths(run_id).items()):
            with TraceReader(path) as reader:
                parts.append(reader.read(**predicates))
        if not parts:
            return TraceDataset.empty()
        merged = np.concatenate(parts)
        merged = merged[np.argsort(merged["time"], kind="stable")]
        return TraceDataset(merged)

    # -- internals ------------------------------------------------------------
    def _claim_dir(self, name: str) -> Path:
        """Atomically claim a unique run directory ``name[-N]``.

        ``mkdir`` is the atomic primitive: whichever process creates the
        directory first owns that run id; losers move on to the next
        suffix.  (An exists-then-mkdir check would race.)
        """
        self.root.mkdir(parents=True, exist_ok=True)
        candidate = name
        n = 1
        while True:
            directory = self.root / candidate
            try:
                directory.mkdir()
                return directory
            except FileExistsError:
                n += 1
                candidate = f"{name}-{n}"
