"""``repro-trace``: inspect and manipulate stored traces.

Subcommands::

    repro-trace info  FILE...            # header/index summary (-v: chunks)
    repro-trace cat   FILE [filters]     # records as CSV on stdout
    repro-trace convert SRC DST          # between .rpt / .npy / .csv
    repro-trace merge OUT SRC...         # time-ordered k-way merge
    repro-trace ls    DIR                # list a run catalog
    repro-trace analyze DIR [RUN...]     # streaming characterization
    repro-trace obs   RUN [RUN]          # dump/compare runtime metrics

``cat``/``convert``/``merge`` stream chunk by chunk — a multi-gigabyte
trace never has to fit in memory.  Filters (``--t0/--t1/--node/--reads/
--writes``) push down to the chunk index, so a narrow time window only
decompresses the chunks it touches.
"""

from __future__ import annotations

import argparse
import csv
import heapq
import sys
from pathlib import Path
from typing import List, Optional

import numpy as np

from repro.driver import TRACE_DTYPE
from repro.store.catalog import MANIFEST_NAME, RunCatalog
from repro.store.format import StoreFormatError
from repro.store.reader import TraceReader
from repro.store.writer import TraceWriter

_BATCH = 65536


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Inspect, convert, and merge repro trace store files "
                    "(.rpt) and run catalogs.")
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="summarise trace store files")
    p_info.add_argument("files", nargs="+", type=Path)
    p_info.add_argument("-v", "--verbose", action="store_true",
                        help="also print the per-chunk index")

    p_cat = sub.add_parser("cat", help="print records as CSV")
    p_cat.add_argument("file", type=Path)
    _add_filters(p_cat)
    p_cat.add_argument("--limit", type=int, default=None,
                       help="stop after N records")
    p_cat.add_argument("--no-header", action="store_true",
                       help="omit the CSV header row")

    p_conv = sub.add_parser("convert",
                            help="convert between .rpt/.npy/.csv by suffix")
    p_conv.add_argument("src", type=Path)
    p_conv.add_argument("dst", type=Path)
    _add_filters(p_conv)

    p_merge = sub.add_parser("merge",
                             help="merge traces into one time-ordered file")
    p_merge.add_argument("out", type=Path)
    p_merge.add_argument("sources", nargs="+", type=Path)

    p_ls = sub.add_parser("ls", help="list the runs of a catalog directory")
    p_ls.add_argument("root", type=Path, nargs="?", default=Path("runs"))

    p_an = sub.add_parser(
        "analyze",
        help="run streaming characterization pipelines over stored runs")
    p_an.add_argument("root", type=Path,
                      help="run catalog directory (see `repro-trace ls`)")
    p_an.add_argument("runs", nargs="*",
                      help="run ids to analyze (default: every run)")
    p_an.add_argument("--pipelines", default=None, metavar="NAMES",
                      help="comma-separated pipeline names "
                           "(default: metrics,sizes,spatial,arrival)")
    p_an.add_argument("--workers", type=int, default=1,
                      help="process count for per-node fan-out")
    p_an.add_argument("--refresh", action="store_true",
                      help="recompute even when a cached summary is valid")
    p_an.add_argument("--no-cache", action="store_true",
                      help="neither read nor write analysis.json caches")
    p_an.add_argument("--json", action="store_true",
                      help="emit results as one JSON object")
    p_an.add_argument("--stats", action="store_true",
                      help="print engine counters (chunks scanned/skipped, "
                           "cache hits) to stderr")
    _add_filters(p_an)

    p_obs = sub.add_parser(
        "obs", help="dump or compare run observability snapshots")
    p_obs.add_argument("paths", nargs="+", type=Path,
                       help="run directories (manifest.json), experiment "
                            "directories (experiment.json), or raw "
                            "snapshot .json files; two paths print a "
                            "delta column")
    p_obs.add_argument("--json", action="store_true",
                       help="emit the snapshots as one JSON object "
                            "instead of a table")
    p_obs.add_argument("--only", metavar="PREFIX", default=None,
                       help="restrict to metrics whose name starts with "
                            "PREFIX (e.g. disk. or sim.)")
    return parser


def _add_filters(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--t0", type=float, default=None,
                        help="keep records with time >= T0")
    parser.add_argument("--t1", type=float, default=None,
                        help="keep records with time < T1")
    parser.add_argument("--node", type=int, default=None,
                        help="keep one node's records")
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--reads", action="store_true",
                       help="keep only reads")
    group.add_argument("--writes", action="store_true",
                       help="keep only writes")


def _write_filter(args) -> Optional[bool]:
    if getattr(args, "reads", False):
        return False
    if getattr(args, "writes", False):
        return True
    return None


def _iter_source(path: Path, t0=None, t1=None, node=None, write=None):
    """Yield record arrays from any supported trace file, filtered."""
    if path.suffix == ".rpt":
        with TraceReader(path) as reader:
            yield from reader.iter_arrays(t0=t0, t1=t1, node=node,
                                          write=write)
        return
    from repro.core.trace import TraceDataset
    dataset = TraceDataset.load(path)
    if t0 is not None or t1 is not None:
        dataset = dataset.between(t0 if t0 is not None else 0.0,
                                  t1 if t1 is not None else np.inf)
    if node is not None:
        dataset = dataset.node(node)
    if write is True:
        dataset = dataset.writes()
    elif write is False:
        dataset = dataset.reads()
    if len(dataset):
        yield dataset.records


# -- subcommands ---------------------------------------------------------------
def cmd_info(args) -> int:
    status = 0
    for path in args.files:
        try:
            with TraceReader(path) as reader:
                _print_info(path, reader, args.verbose)
        except (OSError, StoreFormatError) as exc:
            print(f"{path}: {exc}", file=sys.stderr)
            status = 1
    return status


def _print_info(path: Path, reader: TraceReader, verbose: bool) -> None:
    size = path.stat().st_size
    t_lo, t_hi = reader.time_span
    raw = sum(c.raw for c in reader.chunks)
    comp = sum(c.comp for c in reader.chunks)
    writes = sum(c.writes for c in reader.chunks)
    reads = len(reader) - writes
    ratio = raw / comp if comp else 0.0
    state = ""
    if reader.recovered:
        state = " (recovered: no footer"
        if reader.tail_bytes:
            state += f"; dropped {reader.tail_bytes:,} B torn tail"
        state += ")"
    print(f"{path}: trace store v{1}{state}")
    print(f"  records   {len(reader):>12,}  "
          f"({reads:,} reads / {writes:,} writes)")
    print(f"  chunks    {reader.chunk_count:>12,}  "
          f"(<= {reader.header['chunk_records']:,} records each)")
    print(f"  time      {t_lo:>12.3f} .. {t_hi:.3f} s")
    print(f"  nodes     {', '.join(str(n) for n in reader.nodes()) or '-'}")
    print(f"  size      {size:>12,} B on disk; payload {comp:,} B "
          f"from {raw:,} B raw ({ratio:.1f}x)")
    if verbose:
        print(f"  {'chunk':>5} {'offset':>10} {'count':>8} "
              f"{'t0':>10} {'t1':>10} {'sectors':>23} {'nodes':>8}")
        for i, c in enumerate(reader.chunks):
            print(f"  {i:>5} {c.offset:>10} {c.count:>8} "
                  f"{c.t0:>10.3f} {c.t1:>10.3f} "
                  f"{c.s0:>11}-{c.s1:<11} "
                  f"{','.join(str(n) for n in c.nodes):>8}")


def cmd_cat(args) -> int:
    writer = csv.writer(sys.stdout)
    if not args.no_header:
        writer.writerow(TRACE_DTYPE.names)
    remaining = args.limit
    for batch in _iter_source(args.file, t0=args.t0, t1=args.t1,
                              node=args.node, write=_write_filter(args)):
        if remaining is not None:
            batch = batch[:remaining]
        for row in batch:
            writer.writerow([row[name] for name in TRACE_DTYPE.names])
        if remaining is not None:
            remaining -= len(batch)
            if remaining <= 0:
                break
    return 0


def cmd_convert(args) -> int:
    batches = _iter_source(args.src, t0=args.t0, t1=args.t1,
                           node=args.node, write=_write_filter(args))
    suffix = args.dst.suffix
    if suffix == ".rpt":
        with TraceWriter(args.dst) as writer:
            for batch in batches:
                writer.append_array(batch)
        total = writer.records_written
    elif suffix == ".csv":
        with args.dst.open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(TRACE_DTYPE.names)
            total = 0
            for batch in batches:
                for row in batch:
                    writer.writerow([row[name]
                                     for name in TRACE_DTYPE.names])
                total += len(batch)
    else:
        from repro.core.trace import TraceDataset
        parts = list(batches)
        arr = np.concatenate(parts) if parts \
            else np.zeros(0, dtype=TRACE_DTYPE)
        TraceDataset(arr).save(args.dst)
        total = len(arr)
    print(f"{args.src} -> {args.dst}: {total:,} records", file=sys.stderr)
    return 0


def _keyed_records(path: Path, seq: int):
    """(time, tiebreaker, row-tuple) stream for the k-way merge."""
    for batch in _iter_source(path):
        for row in batch:
            yield (float(row["time"]), seq,
                   tuple(row[name] for name in TRACE_DTYPE.names))


def cmd_merge(args) -> int:
    streams = [_keyed_records(path, i)
               for i, path in enumerate(args.sources)]
    with TraceWriter(args.out) as writer:
        staging: List[tuple] = []
        for _, _, row in heapq.merge(*streams):
            staging.append(row)
            if len(staging) >= _BATCH:
                writer.append_array(np.array(staging, dtype=TRACE_DTYPE))
                staging.clear()
        if staging:
            writer.append_array(np.array(staging, dtype=TRACE_DTYPE))
    total = writer.records_written
    print(f"merged {len(args.sources)} files -> {args.out}: "
          f"{total:,} records", file=sys.stderr)
    return 0


def cmd_ls(args) -> int:
    catalog = RunCatalog(args.root)
    runs = catalog.runs()
    if not runs:
        print(f"no runs under {args.root}", file=sys.stderr)
        return 1
    print(f"{'run':<16} {'nodes':>5} {'seed':>6} {'records':>10} "
          f"{'duration':>10} {'req/s/node':>11}")
    for run_id in runs:
        m = catalog.manifest(run_id)
        metrics = m.get("metrics", {})
        duration = m.get("duration")
        rps = metrics.get("requests_per_second")
        print(f"{run_id:<16} {m.get('nnodes', '-'):>5} "
              f"{str(m.get('seed', '-')):>6} {m.get('records', 0):>10,} "
              f"{f'{duration:.0f} s' if duration is not None else '-':>10} "
              f"{f'{rps:.2f}' if rps is not None else '-':>11}")
    return 0


def cmd_analyze(args) -> int:
    import json

    from repro.analysis import AnalysisEngine, make_pipelines
    from repro.obs import MetricsRegistry

    catalog = RunCatalog(args.root)
    run_ids = list(args.runs) or catalog.runs()
    if not run_ids:
        print(f"no runs under {args.root}", file=sys.stderr)
        return 1
    names = [n.strip() for n in args.pipelines.split(",")] \
        if args.pipelines else None
    try:
        pipes = {p.name: p for p in make_pipelines(names)}
    except ValueError as exc:
        print(f"repro-trace: error: {exc}", file=sys.stderr)
        return 2
    registry = MetricsRegistry()
    engine = AnalysisEngine(catalog, workers=args.workers,
                            cache=not args.no_cache, obs=registry)
    predicates = dict(t0=args.t0, t1=args.t1, node=args.node,
                      write=_write_filter(args))
    filtered = any(v is not None for v in predicates.values())

    results = {}
    status = 0
    for run_id in run_ids:
        try:
            results[run_id] = engine.analyze(
                run_id, list(pipes.values()), refresh=args.refresh,
                **predicates)
        except FileNotFoundError:
            print(f"{args.root}: no run {run_id!r}", file=sys.stderr)
            status = 1
    if args.json:
        payload = {run_id: {name: None if result is None
                            else pipes[name].to_json(result)
                            for name, result in out.items()}
                   for run_id, out in results.items()}
        json.dump(payload, sys.stdout, indent=2)
        print()
    else:
        for run_id, out in results.items():
            _print_analysis(run_id, out, filtered)
    if args.stats:
        def count(name: str) -> float:
            return registry.counter(f"analysis.{name}").value
        print(f"engine: {count('chunks_scanned'):,.0f} chunks scanned, "
              f"{count('chunks_skipped'):,.0f} skipped, "
              f"{count('cache_hits'):,.0f} cache hits, "
              f"{count('cache_misses'):,.0f} misses", file=sys.stderr)
    return status


def _print_analysis(run_id: str, out: dict, filtered: bool) -> None:
    note = " (filtered)" if filtered else ""
    print(f"{run_id}{note}")
    metrics = out.get("metrics")
    if metrics is not None:
        print(f"  requests  {metrics.total_requests:>10,}  "
              f"({metrics.read_pct}% read / {metrics.write_pct}% write), "
              f"{metrics.requests_per_second:.2f} req/s/node")
        print(f"  moved     {metrics.kb_moved:>10,.0f} KB over "
              f"{metrics.duration:.0f} s on {metrics.nnodes} node(s), "
              f"mean {metrics.mean_size_kb:.2f} KB")
    sizes = out.get("sizes")
    if sizes is not None and sizes.histogram:
        top = sorted(sizes.histogram.items(),
                     key=lambda kv: (-kv[1], kv[0]))[:4]
        split = ", ".join(f"{size:g} KB x {count:,}" for size, count in top)
        print(f"  sizes     {split}")
    spatial = out.get("spatial")
    if spatial is not None:
        print(f"  spatial   top-20% bands carry "
              f"{spatial.top_20pct_share:.0%} of requests "
              f"(gini {spatial.gini:.2f})")
    arrival = out.get("arrival")
    if arrival is not None:
        burst = "bursty" if arrival.is_bursty else "smooth"
        print(f"  arrival   mean gap {arrival.mean_gap * 1e3:.1f} ms, "
              f"cv {arrival.cv_gap:.2f}, idc {arrival.idc:.2f} ({burst})")
    hotspots = out.get("hotspots")
    if hotspots is not None and hotspots.spots:
        sector, count, _ = hotspots.spots[0]
        print(f"  hottest   sector {sector:,} ({count:,} accesses)")


def _load_snapshot(path: Path) -> dict:
    """An obs snapshot from a run dir, experiment dir, or JSON file."""
    import json
    if path.is_dir():
        for meta_name, kind in ((MANIFEST_NAME, "run"),
                                ("experiment.json", "experiment")):
            meta_path = path / meta_name
            if meta_path.is_file():
                obs = json.loads(meta_path.read_text()).get("obs")
                if not obs:
                    raise ValueError(
                        f"{kind} was recorded without --obs")
                return obs
        raise FileNotFoundError(str(path / MANIFEST_NAME))
    data = json.loads(path.read_text())
    if isinstance(data.get("obs"), dict):
        return data["obs"]
    return data


def cmd_obs(args) -> int:
    from repro.obs import render_snapshot_table
    snapshots = {}
    status = 0
    for path in args.paths:
        label = path.name or str(path)
        if label in snapshots:
            label = str(path)
        try:
            snapshots[label] = _load_snapshot(path)
        except (OSError, ValueError, KeyError) as exc:
            print(f"{path}: {exc}", file=sys.stderr)
            status = 1
    if not snapshots:
        return status or 1
    if args.json:
        import json
        json.dump(snapshots, sys.stdout, indent=2)
        print()
    else:
        only = [args.only] if args.only else None
        print(render_snapshot_table(snapshots, only=only))
    return status


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {"info": cmd_info, "cat": cmd_cat, "convert": cmd_convert,
               "merge": cmd_merge, "ls": cmd_ls, "obs": cmd_obs,
               "analyze": cmd_analyze}[args.command]
    try:
        return handler(args)
    except BrokenPipeError:  # e.g. `repro-trace cat ... | head`
        return 0
    except FileNotFoundError as exc:
        print(f"repro-trace: error: {exc.filename}: no such file",
              file=sys.stderr)
        return 1
    except StoreFormatError as exc:
        print(f"repro-trace: error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
