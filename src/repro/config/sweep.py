"""Grid sweeps over scenarios: expand axes, fan out runs, compare.

A sweep takes a base :class:`~repro.config.Scenario` plus axis specs
like ``scheduler=clook,fifo`` and ``drive_cache_segments=0,4,8``,
expands their cross product into labeled scenarios, runs the chosen
experiment once per point (in parallel across processes by default),
and renders a side-by-side comparison table of the workload metrics.

Axis names may be full dotted scenario paths
(``node.disk.scheduler.kind``) or one of the short aliases in
:data:`GRID_ALIASES` covering the knobs the paper's ablations turn.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import (Any, Callable, Dict, List, Mapping, Optional,
                    Sequence, Tuple)

from repro.config.scenario import ConfigError, Scenario

#: short axis names accepted in grid specs, mapped to scenario paths
#: (the disk aliases use ``disks[*]`` so they cover every member of a
#: multi-disk node)
GRID_ALIASES: Dict[str, str] = {
    "scheduler": "node.disks[*].scheduler.kind",
    "drive_cache": "node.disks[*].cache.kind",
    "drive_cache_segments": "node.disks[*].cache.nsegments",
    "lookahead_sectors": "node.disks[*].cache.lookahead_sectors",
    "nnodes": "cluster.nnodes",
    "seed": "seed",
    "readahead_kb": "node.max_readahead_kb",
    "buffer_cache_kb": "node.buffer_cache_kb",
    "bdflush_interval": "node.bdflush_interval",
    "ram_mb": "node.vm.ram_mb",
    "cpu_speed": "node.cpu_speed",
    "drain_interval": "node.driver.drain_interval",
    "volume_policy": "node.volume.policy",
    "volume_stripe_kb": "node.volume.stripe_kb",
    "network_channels": "network.channels",
    "network_bandwidth_bps": "network.bandwidth_bps",
    "pious_stripe_kb": "pious.stripe_kb",
    "pious_nservers": "pious.nservers",
    "event_queue": "engine.event_queue",
}


@dataclass(frozen=True)
class SweepAxis:
    """One grid dimension: display name, scenario path, and values."""

    name: str           # what the user typed (and what labels show)
    path: str           # resolved dotted scenario path
    values: Tuple[str, ...]


@dataclass(frozen=True)
class SweepPoint:
    """One cell of the grid: a labeled, fully-overridden scenario."""

    label: str
    overrides: Tuple[Tuple[str, str], ...]   # (axis display name, value)
    scenario: Scenario


def parse_axis_spec(spec: str) -> SweepAxis:
    """Parse ``name=v1,v2,...`` into a :class:`SweepAxis`."""
    name, sep, rest = spec.partition("=")
    name = name.strip()
    if not sep or not name:
        raise ConfigError("sweep.grid",
                          f"bad axis spec {spec!r}; expected name=v1,v2")
    values = tuple(v.strip() for v in rest.split(",") if v.strip())
    if not values:
        raise ConfigError(f"sweep.grid.{name}",
                          f"axis {name!r} lists no values")
    return SweepAxis(name=name, path=GRID_ALIASES.get(name, name),
                     values=values)


def expand_grid(base: Scenario,
                axes: Sequence[SweepAxis],
                node_overrides: Optional[
                    Mapping[Any, Mapping[str, Any]]] = None
                ) -> List[SweepPoint]:
    """The cross product of all axes, applied over ``base``.

    Every point's scenario is validated eagerly, so a bad registry name
    or out-of-range value fails before any simulation starts.

    ``node_overrides`` makes the grid heterogeneous: a mapping of node
    id to per-node override paths (rooted under ``node``), applied to
    ``base`` before the axes expand — e.g. ``{3: {"disks[0].cache.nsegments":
    0}}`` models one degraded disk among sixteen at every grid point.
    Axis paths may themselves be ``node[N].``-prefixed.
    """
    if node_overrides:
        for node_id, per_node in sorted(
                node_overrides.items(), key=lambda kv: str(kv[0])):
            for sub_path, value in per_node.items():
                base = base.with_override(f"node[{node_id}].{sub_path}",
                                          value)
    points: List[SweepPoint] = [SweepPoint("", (), base)]
    for axis in axes:
        expanded: List[SweepPoint] = []
        for point in points:
            for value in axis.values:
                label = (f"{point.label},{axis.name}={value}"
                         if point.label else f"{axis.name}={value}")
                scenario = point.scenario.with_override(axis.path, value)
                expanded.append(SweepPoint(
                    label=label,
                    overrides=point.overrides + ((axis.name, value),),
                    scenario=scenario))
        points = expanded
    out = []
    for point in points:
        scenario = replace(point.scenario,
                           name=point.label or point.scenario.name)
        scenario.validate()
        out.append(replace(point, scenario=scenario))
    return out


@dataclass(frozen=True)
class SweepResult:
    """One completed grid point: its label, overrides, and metrics.

    ``run_id`` is the catalog run id the point landed in when the sweep
    ran with a ``sink`` (``None`` otherwise), so grid points map back to
    stored runs without re-deriving names.
    """

    label: str
    overrides: Tuple[Tuple[str, str], ...]
    fingerprint: str
    metrics: Dict[str, Any]
    run_id: Optional[str] = None

    def to_dict(self) -> dict:
        return {"label": self.label,
                "overrides": dict(self.overrides),
                "fingerprint": self.fingerprint,
                "run_id": self.run_id,
                "metrics": self.metrics}


def _sweep_worker(args: tuple
                  ) -> Tuple[dict, Optional[str], Optional[float]]:
    """Run one grid point (top-level so it pickles across processes).

    Returns the point's summary metrics, the catalog run id it was
    captured under (``None`` when no sink is set), and the simulator's
    achieved events/sec for the point (``None`` without ``obs``).

    With checkpointing on, each point owns two files under the
    checkpoint directory, keyed by its scenario fingerprint:
    ``<fp>.ckpt`` (the live checkpoint, overwritten per epoch) and
    ``<fp>.done.json`` (written on completion).  A restarted sweep skips
    finished points via the done marker and resumes half-run ones from
    their checkpoint — preempt/restart costs only the unfinished tails.
    """
    from time import perf_counter

    scenario_dict, name, duration, sink, obs, every, ckdir = args
    from repro.core.experiments import ExperimentRunner
    scenario = Scenario.from_dict(scenario_dict)

    ckpt = done = None
    if ckdir is not None:
        from pathlib import Path
        fp = scenario.fingerprint()
        Path(ckdir).mkdir(parents=True, exist_ok=True)
        ckpt = Path(ckdir) / f"{fp}.ckpt"
        done = Path(ckdir) / f"{fp}.done.json"
        if done.exists():
            data = json.loads(done.read_text())
            return data["metrics"], data.get("run_id"), None

    runner = ExperimentRunner(scenario=scenario, sink=sink, obs=obs)
    wall = perf_counter()
    if ckpt is not None and ckpt.exists():
        result = runner.run(name, resume_from=ckpt)
    else:
        result = runner.run(name, duration=duration,
                            checkpoint_every=every,
                            checkpoint_dir=ckpt)
    wall = perf_counter() - wall
    run_dir = getattr(runner, "last_run_dir", None)
    run_id = run_dir.name if run_dir else None
    eps = None
    if obs:
        from repro.obs.recorder import events_per_second
        eps = events_per_second(result.obs, wall)
    if done is not None:
        tmp = done.with_suffix(".tmp")
        tmp.write_text(json.dumps({"metrics": result.metrics.to_dict(),
                                   "run_id": run_id}))
        import os
        os.replace(tmp, done)
        if ckpt.exists():
            ckpt.unlink()
    return result.metrics.to_dict(), run_id, eps


def run_sweep(base: Scenario, axes: Sequence[SweepAxis],
              experiment: str = "baseline", *,
              duration: Optional[float] = None,
              workers: Optional[int] = None,
              parallel: bool = True,
              sink: Optional[str] = None,
              node_overrides: Optional[
                  Mapping[Any, Mapping[str, Any]]] = None,
              obs: bool = False,
              on_point: Optional[Callable[..., Any]] = None,
              checkpoint_every: Optional[float] = None,
              checkpoint_dir: Optional[str] = None
              ) -> List[SweepResult]:
    """Run ``experiment`` at every grid point; returns one result each.

    Points fan out across a process pool (``workers`` defaults to the
    pool's own sizing) unless ``parallel=False``, which runs them
    sequentially in-process — handy under profilers and in tests.
    ``node_overrides`` passes through to :func:`expand_grid` for
    heterogeneous (per-node) grids.

    ``on_point(done, total, result, events_per_sec)`` fires in the
    calling process as each grid point completes (in grid order), with
    ``done`` counting completed points — this is what streams live
    sweep progress out of ``repro.serve`` workers.  ``obs=True`` runs
    every point with an :class:`~repro.obs.ObsRecorder` so the
    callback's ``events_per_sec`` is real (results stay bit-identical;
    the snapshot additionally lands in each point's run manifest).

    ``checkpoint_every`` makes every point capture a resumable
    checkpoint at that simulated-seconds cadence under
    ``checkpoint_dir`` (default ``checkpoints/``), keyed by the point's
    scenario fingerprint.  Re-running the same sweep over the same
    directory skips finished points (their done markers hold the stored
    metrics) and resumes interrupted ones bit-identically — so a
    preempted sweep restarts where it stopped instead of from scratch.
    """
    points = expand_grid(base, axes, node_overrides=node_overrides)
    ckdir = None
    if checkpoint_every is not None:
        ckdir = str(checkpoint_dir) if checkpoint_dir is not None \
            else "checkpoints"
    jobs = [(p.scenario.to_dict(), experiment, duration, sink, obs,
             checkpoint_every, ckdir)
            for p in points]

    results: List[SweepResult] = []

    def collect(point: SweepPoint, raw: tuple) -> None:
        metrics, run_id, eps = raw
        result = SweepResult(label=point.label, overrides=point.overrides,
                             fingerprint=point.scenario.fingerprint(),
                             metrics=metrics, run_id=run_id)
        results.append(result)
        if on_point is not None:
            on_point(len(results), len(points), result, eps)

    if parallel and len(points) > 1:
        import multiprocessing as mp
        ctx = mp.get_context("spawn")
        nworkers = min(workers or ctx.cpu_count(), len(jobs))
        with ctx.Pool(processes=nworkers) as pool:
            for point, raw in zip(points,
                                  pool.imap(_sweep_worker, jobs)):
                collect(point, raw)
    else:
        for point, job in zip(points, jobs):
            collect(point, _sweep_worker(job))
    return results


# -- presentation -------------------------------------------------------------
_COLUMNS = (
    ("requests", "total_requests", "{:d}"),
    ("read%", "read_pct", "{:.1f}"),
    ("write%", "write_pct", "{:.1f}"),
    ("req/s", "requests_per_second", "{:.2f}"),
    ("KB/s", "throughput_kb_per_s", "{:.1f}"),
    ("mean KB", "mean_size_kb", "{:.2f}"),
    ("pending", "mean_pending", "{:.2f}"),
    ("duration", "duration", "{:.1f}"),
)


def render_sweep_table(results: Sequence[SweepResult],
                       title: str = "scenario sweep") -> str:
    """Fixed-width comparison table, one row per grid point."""
    if not results:
        return f"{title}: no grid points"
    axis_names = [name for name, _ in results[0].overrides]
    rows = []
    for result in results:
        metrics = dict(result.metrics)
        if "throughput_kb_per_s" not in metrics:
            dur = metrics.get("duration") or 0.0
            metrics["throughput_kb_per_s"] = (
                metrics.get("kb_moved", 0.0) / dur if dur else 0.0)
        row = [dict(result.overrides).get(name, "") for name in axis_names]
        for _, key, fmt in _COLUMNS:
            value = metrics.get(key)
            row.append("-" if value is None else fmt.format(value))
        rows.append(row)
    headers = axis_names + [h for h, _, _ in _COLUMNS]
    widths = [max(len(h), *(len(r[i]) for r in rows))
              for i, h in enumerate(headers)]
    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))
    bar = "-" * len(line(headers))
    out = [title, bar, line(headers), bar]
    out.extend(line(r) for r in rows)
    out.append(bar)
    return "\n".join(out)


def sweep_to_json(results: Sequence[SweepResult],
                  indent: int = 2) -> str:
    return json.dumps([r.to_dict() for r in results], indent=indent)
