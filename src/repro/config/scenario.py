"""The declarative scenario tree: one object describing a whole stack.

A :class:`Scenario` captures every construction-time choice the
simulated platform makes — cluster size, node hardware and kernel
tunables, disk geometry, queue discipline, on-drive cache, driver
transport, workload mix, and experiment durations — as a frozen
dataclass tree that round-trips through TOML and JSON, validates with
precise error paths (``scenario.node.disk.scheduler.kind: unknown disk
scheduler 'foo'``), and resolves swappable components through the
plugin registries (:data:`repro.disk.SCHEDULERS`,
:data:`repro.disk.DRIVE_CACHES`, :data:`repro.apps.WORKLOADS`).

The default ``Scenario()`` is exactly the paper's machine: 16 nodes of
486DX4-100 class hardware, 500 MB IDE disks behind a C-LOOK elevator
with a 4x64-sector look-ahead segment cache, and the PPM / wavelet /
N-body workload mix.  Everything the experiments previously hard-coded
is a field here instead.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import re
from dataclasses import dataclass, field, fields, is_dataclass, replace
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple, Union
from typing import get_args, get_origin, get_type_hints

from repro.disk import (DRIVE_CACHES, SCHEDULERS, SECTOR_BYTES,
                        DiskGeometry, NullDriveCache, VOLUME_POLICIES)
from repro.disk.volume import capacity_sectors
from repro.kernel.params import DiskLayout, NodeParams
from repro.registry import UnknownComponentError
from repro.sim.core import QUEUE_KINDS


class ConfigError(ValueError):
    """A scenario field failed to parse or validate.

    ``path`` names the exact offending field, dot-separated from the
    scenario root (e.g. ``scenario.node.disk.cache.nsegments``).
    """

    def __init__(self, path: str, message: str):
        self.path = path
        super().__init__(f"{path}: {message}")


# -- generic dict <-> dataclass plumbing --------------------------------------
def _convert(value: Any, typ: Any, path: str) -> Any:
    """Coerce one raw value (from TOML/JSON/CLI) to a field's type."""
    if is_dataclass(typ):
        return _from_dict(typ, value, path)
    origin = get_origin(typ)
    if origin is tuple:                       # Tuple[str, ...] — the mix
        if isinstance(value, str):
            value = [part for part in value.split(",") if part]
        if not isinstance(value, (list, tuple)):
            raise ConfigError(path, f"expected a list of strings, got "
                                    f"{type(value).__name__}")
        item_type = (get_args(typ) or (str,))[0]
        return tuple(_convert(v, item_type, f"{path}[{i}]")
                     for i, v in enumerate(value))
    if origin is dict:                        # per-app params overrides
        if not isinstance(value, Mapping):
            raise ConfigError(path, f"expected a table/object, got "
                                    f"{type(value).__name__}")
        return {str(k): dict(v) if isinstance(v, Mapping) else v
                for k, v in value.items()}
    if typ is bool:
        if isinstance(value, bool):
            return value
        if isinstance(value, str) and value.lower() in ("true", "false"):
            return value.lower() == "true"
        raise ConfigError(path, f"expected a boolean, got {value!r}")
    if typ is int:
        if isinstance(value, bool) or not isinstance(value, (int, str)):
            raise ConfigError(path, f"expected an integer, got {value!r}")
        try:
            return int(value)
        except ValueError:
            raise ConfigError(path,
                              f"expected an integer, got {value!r}") from None
    if typ is float:
        if isinstance(value, bool) or \
                not isinstance(value, (int, float, str)):
            raise ConfigError(path, f"expected a number, got {value!r}")
        try:
            return float(value)
        except ValueError:
            raise ConfigError(path,
                              f"expected a number, got {value!r}") from None
    if typ is str:
        if not isinstance(value, str):
            raise ConfigError(path, f"expected a string, got {value!r}")
        return value
    raise ConfigError(path, f"unsupported field type {typ!r}")


def _from_dict(cls, data: Any, path: str):
    """Build dataclass ``cls`` from a mapping, rejecting unknown keys."""
    if isinstance(data, cls):
        return data
    if not isinstance(data, Mapping):
        raise ConfigError(path, f"expected a table/object, got "
                                f"{type(data).__name__}")
    normalize = getattr(cls, "_normalize_config_dict", None)
    if normalize is not None:
        data = normalize(data, path)
    hints = get_type_hints(cls)
    known = {f.name for f in fields(cls)}
    for key in data:
        if key not in known:
            raise ConfigError(f"{path}.{key}",
                              f"unknown field; valid fields: "
                              f"{sorted(known)}")
    kwargs = {name: _convert(data[name], hints[name], f"{path}.{name}")
              for name in known if name in data}
    return cls(**kwargs)


def _to_dict(obj) -> Any:
    if is_dataclass(obj):
        return {f.name: _to_dict(getattr(obj, f.name))
                for f in fields(obj)}
    if isinstance(obj, tuple):
        return [_to_dict(v) for v in obj]
    if isinstance(obj, dict):
        return {k: _to_dict(v) for k, v in obj.items()}
    return obj


def _check(condition: bool, path: str, message: str) -> None:
    if not condition:
        raise ConfigError(path, message)


# -- the tree -----------------------------------------------------------------
@dataclass(frozen=True)
class SchedulerConfig:
    """Which request-queue discipline the disk drains (by registry name)."""

    kind: str = "clook"

    def validate(self, path: str) -> None:
        if self.kind not in SCHEDULERS:
            raise ConfigError(f"{path}.kind",
                              str(UnknownComponentError(
                                  SCHEDULERS.kind, self.kind,
                                  SCHEDULERS.names())))

    def build(self):
        return SCHEDULERS.create(self.kind)


@dataclass(frozen=True)
class DriveCacheConfig:
    """On-drive segment buffer geometry (by registry kind).

    ``nsegments = 0`` with the default ``segmented`` kind resolves to
    the registered ``none`` cache — so a sweep axis over segment counts
    naturally includes the cacheless baseline.
    """

    kind: str = "segmented"
    nsegments: int = 4
    segment_sectors: int = 64
    lookahead_sectors: int = 32

    def validate(self, path: str) -> None:
        if self.kind not in DRIVE_CACHES:
            raise ConfigError(f"{path}.kind",
                              str(UnknownComponentError(
                                  DRIVE_CACHES.kind, self.kind,
                                  DRIVE_CACHES.names())))
        _check(self.nsegments >= 0, f"{path}.nsegments",
               f"must be >= 0, got {self.nsegments}")
        _check(self.segment_sectors >= 1, f"{path}.segment_sectors",
               f"must be >= 1, got {self.segment_sectors}")
        _check(self.lookahead_sectors >= 0, f"{path}.lookahead_sectors",
               f"must be >= 0, got {self.lookahead_sectors}")

    def build(self):
        if self.kind == "segmented" and self.nsegments == 0:
            return NullDriveCache()
        return DRIVE_CACHES.create(
            self.kind, nsegments=self.nsegments,
            segment_sectors=self.segment_sectors,
            lookahead_sectors=self.lookahead_sectors)


@dataclass(frozen=True)
class DiskConfig:
    """One node's disk: capacity, servicing discipline, drive cache."""

    capacity_mb: int = 500
    media_error_rate: float = 0.0
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    cache: DriveCacheConfig = field(default_factory=DriveCacheConfig)

    def validate(self, path: str) -> None:
        _check(self.capacity_mb >= 1, f"{path}.capacity_mb",
               f"must be >= 1, got {self.capacity_mb}")
        _check(0.0 <= self.media_error_rate < 1.0,
               f"{path}.media_error_rate",
               f"must be in [0, 1), got {self.media_error_rate}")
        self.scheduler.validate(f"{path}.scheduler")
        self.cache.validate(f"{path}.cache")

    def build_scheduler(self):
        return self.scheduler.build()

    def build_cache(self):
        return self.cache.build()


@dataclass(frozen=True)
class VolumeConfig:
    """How a node's member disks combine into one logical block device.

    ``policy`` names an entry of :data:`repro.disk.VOLUME_POLICIES`
    (``single`` / ``concat`` / ``raid0`` / ``raid1``); ``stripe_kb`` is
    the striping unit used by policies that stripe.
    """

    policy: str = "single"
    stripe_kb: int = 8

    def validate(self, path: str, ndisks: int = 1) -> None:
        if self.policy not in VOLUME_POLICIES:
            raise ConfigError(f"{path}.policy",
                              str(UnknownComponentError(
                                  VOLUME_POLICIES.kind, self.policy,
                                  VOLUME_POLICIES.names())))
        _check(self.stripe_kb >= 1, f"{path}.stripe_kb",
               f"must be >= 1, got {self.stripe_kb}")
        if self.policy == "single":
            _check(ndisks == 1, f"{path}.policy",
                   f"'single' takes exactly one disk, got {ndisks} "
                   f"(use concat/raid0/raid1 for multi-disk nodes)")

    @property
    def stripe_sectors(self) -> int:
        return self.stripe_kb * 1024 // SECTOR_BYTES

    def build(self, disks, name: str = "md0"):
        """The logical volume over already-built member ``disks``."""
        return VOLUME_POLICIES.create(
            self.policy, disks, stripe_sectors=self.stripe_sectors,
            name=name)


@dataclass(frozen=True)
class DriverConfig:
    """The instrumented driver's /proc trace transport."""

    ring_capacity: int = 4096
    drain_interval: float = 1.0

    def validate(self, path: str) -> None:
        _check(self.ring_capacity >= 1, f"{path}.ring_capacity",
               f"must be >= 1, got {self.ring_capacity}")
        _check(self.drain_interval > 0, f"{path}.drain_interval",
               f"must be > 0, got {self.drain_interval}")


@dataclass(frozen=True)
class VMConfig:
    """Memory geometry: RAM, kernel residency, page size."""

    ram_mb: int = 16
    kernel_resident_mb: int = 5
    page_kb: int = 4

    def validate(self, path: str) -> None:
        _check(self.ram_mb >= 1, f"{path}.ram_mb",
               f"must be >= 1, got {self.ram_mb}")
        _check(self.kernel_resident_mb >= 0, f"{path}.kernel_resident_mb",
               f"must be >= 0, got {self.kernel_resident_mb}")
        _check(self.kernel_resident_mb < self.ram_mb,
               f"{path}.kernel_resident_mb",
               f"kernel ({self.kernel_resident_mb} MB) must fit below "
               f"RAM ({self.ram_mb} MB)")
        _check(self.page_kb >= 1, f"{path}.page_kb",
               f"must be >= 1, got {self.page_kb}")


@dataclass(frozen=True)
class LayoutConfig:
    """Filesystem zone placement (sectors) — mirrors ``DiskLayout``."""

    metadata_start: int = 0
    metadata_sectors: int = 4096
    log_start: int = 44_000
    log_sectors: int = 8192
    binary_start: int = 16_000
    binary_sectors: int = 24_000
    data_start: int = 96_000
    data_sectors: int = 120_000
    swap_start: int = 240_000
    swap_sectors: int = 131_072
    highlog_start: int = 1_000_000
    highlog_sectors: int = 16_384

    def validate(self, path: str) -> None:
        for f in fields(self):
            value = getattr(self, f.name)
            _check(value >= 0, f"{path}.{f.name}",
                   f"must be >= 0, got {value}")

    def to_disk_layout(self) -> DiskLayout:
        return DiskLayout(**{f.name: getattr(self, f.name)
                             for f in fields(self)})

    @classmethod
    def from_disk_layout(cls, layout: DiskLayout) -> "LayoutConfig":
        return cls(**{f.name: getattr(layout, f.name)
                      for f in fields(cls)})


@dataclass(frozen=True)
class NodeConfig:
    """One node's hardware and kernel tunables, plus its subsystems."""

    block_kb: int = 1
    l1_cache_kb: int = 16
    cpu_speed: float = 1.0
    timeslice: float = 0.05
    buffer_cache_kb: int = 2048
    bdflush_interval: float = 5.0
    bdflush_age: float = 5.0
    writeback_cluster_blocks: int = 2
    max_readahead_kb: int = 16
    update_interval: float = 30.0
    atime_updates: bool = False
    vm: VMConfig = field(default_factory=VMConfig)
    disks: Tuple[DiskConfig, ...] = field(
        default_factory=lambda: (DiskConfig(),))
    volume: VolumeConfig = field(default_factory=VolumeConfig)
    driver: DriverConfig = field(default_factory=DriverConfig)
    layout: LayoutConfig = field(default_factory=LayoutConfig)

    #: override-path aliases: ``node.disk.X`` edits ``node.disks[0].X``
    _FIELD_ALIASES = {"disk": ("disks", 0)}

    @staticmethod
    def _normalize_config_dict(data: Mapping, path: str) -> Mapping:
        """Accept the pre-multi-disk ``disk`` key as a one-element list."""
        if "disk" in data:
            if "disks" in data:
                raise ConfigError(f"{path}.disk",
                                  "give either 'disk' or 'disks', not both")
            data = dict(data)
            data["disks"] = (data.pop("disk"),)
        return data

    @property
    def disk(self) -> DiskConfig:
        """The first member disk (the whole stack under ``single``)."""
        return self.disks[0]

    def validate(self, path: str) -> None:
        _check(self.block_kb >= 1, f"{path}.block_kb",
               f"must be >= 1, got {self.block_kb}")
        _check(self.buffer_cache_kb >= self.block_kb,
               f"{path}.buffer_cache_kb",
               f"must hold at least one block, got {self.buffer_cache_kb}")
        _check(self.cpu_speed > 0, f"{path}.cpu_speed",
               f"must be > 0, got {self.cpu_speed}")
        _check(self.timeslice > 0, f"{path}.timeslice",
               f"must be > 0, got {self.timeslice}")
        _check(self.bdflush_interval > 0, f"{path}.bdflush_interval",
               f"must be > 0, got {self.bdflush_interval}")
        _check(self.bdflush_age >= 0, f"{path}.bdflush_age",
               f"must be >= 0, got {self.bdflush_age}")
        _check(self.writeback_cluster_blocks >= 1,
               f"{path}.writeback_cluster_blocks",
               f"must be >= 1, got {self.writeback_cluster_blocks}")
        _check(self.max_readahead_kb >= self.block_kb,
               f"{path}.max_readahead_kb",
               f"read-ahead window ({self.max_readahead_kb} KB) smaller "
               f"than a block ({self.block_kb} KB)")
        _check(self.update_interval > 0, f"{path}.update_interval",
               f"must be > 0, got {self.update_interval}")
        self.vm.validate(f"{path}.vm")
        _check(self.vm.page_kb % self.block_kb == 0, f"{path}.vm.page_kb",
               f"page size ({self.vm.page_kb} KB) must be a multiple of "
               f"the block size ({self.block_kb} KB)")
        _check(len(self.disks) >= 1, f"{path}.disks",
               "node needs at least one disk")
        for i, disk in enumerate(self.disks):
            disk.validate(f"{path}.disks[{i}]")
        self.volume.validate(f"{path}.volume", ndisks=len(self.disks))
        self.driver.validate(f"{path}.driver")
        self.layout.validate(f"{path}.layout")

    def logical_capacity_mb(self) -> int:
        """Capacity of the node's logical volume over its members."""
        sizes = [DiskGeometry.from_capacity_mb(d.capacity_mb).total_sectors
                 for d in self.disks]
        sectors = capacity_sectors(self.volume.policy, sizes,
                                   self.volume.stripe_sectors)
        return (sectors * SECTOR_BYTES) // (1024 * 1024)

    def to_node_params(self) -> NodeParams:
        """The kernel-facing parameter object this node resolves to."""
        return NodeParams(
            ram_mb=self.vm.ram_mb,
            kernel_resident_mb=self.vm.kernel_resident_mb,
            block_kb=self.block_kb,
            page_kb=self.vm.page_kb,
            l1_cache_kb=self.l1_cache_kb,
            disk_mb=self.logical_capacity_mb(),
            cpu_speed=self.cpu_speed,
            timeslice=self.timeslice,
            buffer_cache_kb=self.buffer_cache_kb,
            bdflush_interval=self.bdflush_interval,
            bdflush_age=self.bdflush_age,
            writeback_cluster_blocks=self.writeback_cluster_blocks,
            max_readahead_kb=self.max_readahead_kb,
            update_interval=self.update_interval,
            atime_updates=self.atime_updates,
            disk_layout=self.layout.to_disk_layout(),
        )

    @classmethod
    def from_node_params(cls, params: NodeParams) -> "NodeConfig":
        """Lift a legacy ``NodeParams`` into the config tree.

        The disk stack keeps the historical defaults (C-LOOK, 4x64
        segment cache, 1 s drain) — exactly what the pre-scenario code
        hard-wired around a ``NodeParams``.
        """
        return cls(
            block_kb=params.block_kb,
            l1_cache_kb=params.l1_cache_kb,
            cpu_speed=params.cpu_speed,
            timeslice=params.timeslice,
            buffer_cache_kb=params.buffer_cache_kb,
            bdflush_interval=params.bdflush_interval,
            bdflush_age=params.bdflush_age,
            writeback_cluster_blocks=params.writeback_cluster_blocks,
            max_readahead_kb=params.max_readahead_kb,
            update_interval=params.update_interval,
            atime_updates=params.atime_updates,
            vm=VMConfig(ram_mb=params.ram_mb,
                        kernel_resident_mb=params.kernel_resident_mb,
                        page_kb=params.page_kb),
            disks=(DiskConfig(capacity_mb=params.disk_mb),),
            layout=LayoutConfig.from_disk_layout(params.disk_layout),
        )


@dataclass(frozen=True)
class NetworkConfig:
    """The bonded Ethernet fabric (defaults: the prototype's dual
    10 Mb/s segments with 0.3 ms per-message latency and a 1500-byte
    MTU)."""

    channels: int = 2
    bandwidth_bps: float = 10e6
    latency: float = 0.3e-3
    mtu: int = 1500

    def validate(self, path: str) -> None:
        _check(self.channels >= 1, f"{path}.channels",
               f"need at least one channel, got {self.channels}")
        _check(self.bandwidth_bps > 0, f"{path}.bandwidth_bps",
               f"must be > 0, got {self.bandwidth_bps}")
        _check(self.latency >= 0, f"{path}.latency",
               f"must be >= 0, got {self.latency}")
        _check(self.mtu >= 1, f"{path}.mtu",
               f"must be >= 1, got {self.mtu}")

    def build(self, sim, rng=None, obs=None):
        from repro.cluster.network import EthernetNetwork
        return EthernetNetwork(sim, bandwidth_bps=self.bandwidth_bps,
                               latency=self.latency,
                               channels=self.channels, mtu=self.mtu,
                               rng=rng, obs=obs)


@dataclass(frozen=True)
class PiousConfig:
    """PIOUS striping: stripe unit and data-server placement.

    ``nservers = 0`` (the historical default) runs a data server on
    every node; otherwise ``nservers`` consecutive nodes starting at
    ``first_server`` (wrapping modulo the cluster size) serve.
    """

    stripe_kb: int = 8
    nservers: int = 0
    first_server: int = 0

    def validate(self, path: str, nnodes: Optional[int] = None) -> None:
        _check(self.stripe_kb >= 1, f"{path}.stripe_kb",
               f"must be >= 1, got {self.stripe_kb}")
        _check(self.nservers >= 0, f"{path}.nservers",
               f"must be >= 0 (0 = all nodes), got {self.nservers}")
        _check(self.first_server >= 0, f"{path}.first_server",
               f"must be >= 0, got {self.first_server}")
        if nnodes is not None:
            _check(self.nservers <= nnodes, f"{path}.nservers",
                   f"cluster has only {nnodes} nodes, got {self.nservers}")
            _check(self.first_server < nnodes, f"{path}.first_server",
                   f"cluster has only {nnodes} nodes, "
                   f"got {self.first_server}")

    def server_ids(self, nnodes: int) -> list:
        count = nnodes if self.nservers == 0 else self.nservers
        return [(self.first_server + i) % nnodes for i in range(count)]


@dataclass(frozen=True)
class ClusterConfig:
    """Cluster-wide shape: node count and housekeeping load."""

    nnodes: int = 16
    housekeeping: bool = True
    housekeeping_message_rate: float = 3.0

    def validate(self, path: str) -> None:
        _check(self.nnodes >= 1, f"{path}.nnodes",
               f"cluster needs at least one node, got {self.nnodes}")
        _check(self.housekeeping_message_rate >= 0,
               f"{path}.housekeeping_message_rate",
               f"must be >= 0, got {self.housekeeping_message_rate}")


@dataclass(frozen=True)
class WorkloadConfig:
    """Which applications run, and per-application parameter overrides.

    ``mix`` drives the ``combined``/``serial`` experiments (every name
    must be registered in :data:`repro.apps.WORKLOADS`); ``params`` maps
    application name to field overrides of its params dataclass, e.g.
    ``{"ppm": {"steps": 12}}``.
    """

    mix: Tuple[str, ...] = ("ppm", "wavelet", "nbody")
    params: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    def validate(self, path: str) -> None:
        from repro.apps import WORKLOADS
        _check(len(self.mix) >= 1, f"{path}.mix",
               "workload mix must name at least one application")
        for i, name in enumerate(self.mix):
            if name not in WORKLOADS:
                raise ConfigError(f"{path}.mix[{i}]",
                                  str(UnknownComponentError(
                                      WORKLOADS.kind, name,
                                      WORKLOADS.names())))
        for app, overrides in self.params.items():
            if app not in WORKLOADS:
                raise ConfigError(f"{path}.params.{app}",
                                  str(UnknownComponentError(
                                      WORKLOADS.kind, app,
                                      WORKLOADS.names())))
            params_cls = WORKLOADS.get(app).params_cls
            known = {f.name for f in fields(params_cls)}
            if not isinstance(overrides, Mapping):
                raise ConfigError(f"{path}.params.{app}",
                                  "expected a table of field overrides")
            for key in overrides:
                _check(key in known, f"{path}.params.{app}.{key}",
                       f"unknown {params_cls.__name__} field; valid "
                       f"fields: {sorted(known)}")

    def params_for(self, app: str) -> Dict[str, Any]:
        return dict(self.params.get(app, {}))


@dataclass(frozen=True)
class ExperimentConfig:
    """Observation windows and safety limits of the experiment protocol."""

    baseline_duration: float = 2000.0
    hard_limit: float = 5000.0
    flush_grace: float = 10.0

    def validate(self, path: str) -> None:
        _check(self.baseline_duration > 0, f"{path}.baseline_duration",
               f"must be > 0, got {self.baseline_duration}")
        _check(self.hard_limit > 0, f"{path}.hard_limit",
               f"must be > 0, got {self.hard_limit}")
        _check(self.flush_grace >= 0, f"{path}.flush_grace",
               f"must be >= 0, got {self.flush_grace}")


@dataclass(frozen=True)
class EngineConfig:
    """Simulation-engine knobs (no effect on *what* is simulated).

    ``event_queue`` selects the :class:`~repro.sim.core.Simulator`'s
    scheduling structure: the calendar queue (default, fast) or the
    binary heap (reference fallback).  Both produce identical event
    orderings, so this knob never changes results — only wall-clock.
    """

    event_queue: str = "calendar"

    def validate(self, path: str) -> None:
        _check(self.event_queue in QUEUE_KINDS, f"{path}.event_queue",
               f"unknown event queue {self.event_queue!r}; "
               f"valid kinds: {list(QUEUE_KINDS)}")


@dataclass(frozen=True)
class Scenario:
    """The whole stack, declaratively.  ``Scenario()`` is the paper's."""

    name: str = "default"
    seed: int = 0
    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    node: NodeConfig = field(default_factory=NodeConfig)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    pious: PiousConfig = field(default_factory=PiousConfig)
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    experiment: ExperimentConfig = field(default_factory=ExperimentConfig)
    engine: EngineConfig = field(default_factory=EngineConfig)
    #: heterogeneous clusters: node id (decimal string) -> overrides of
    #: that node's config, as ``node``-rooted dotted paths (applied in
    #: insertion order), e.g. ``{"3": {"disks[0].media_error_rate": 0.1}}``
    node_overrides: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    # -- validation ---------------------------------------------------------
    def validate(self) -> "Scenario":
        """Raise :class:`ConfigError` (with the exact path) if invalid."""
        self.cluster.validate("scenario.cluster")
        self.node.validate("scenario.node")
        self.network.validate("scenario.network")
        self.pious.validate("scenario.pious", nnodes=self.cluster.nnodes)
        self.workload.validate("scenario.workload")
        self.experiment.validate("scenario.experiment")
        self.engine.validate("scenario.engine")
        for key in self.node_overrides:
            if not str(key).isdigit():
                raise ConfigError(f"scenario.node_overrides.{key}",
                                  "keys are node ids (decimal strings)")
            self.node_config_for(int(key)).validate(
                f"scenario.node_overrides.{key}")
        return self

    # -- resolution ---------------------------------------------------------
    def node_params(self) -> NodeParams:
        return self.node.to_node_params()

    def node_config_for(self, node_id: int) -> NodeConfig:
        """One node's resolved config: ``node`` plus its per-node
        overrides (if any) from :attr:`node_overrides`."""
        overrides = self.node_overrides.get(str(node_id))
        if not overrides:
            return self.node
        node = self.node
        for sub_path, value in overrides.items():
            node = _override(node, sub_path.split("."), value,
                             f"scenario.node_overrides.{node_id}")
        return node

    def fingerprint(self) -> str:
        """Stable digest of the resolved stack (the ``name`` label,
        random seed, and engine knobs are excluded: they don't change
        what the machinery *is* — both event queues produce identical
        results — and analysis caches should survive relabeling or an
        engine switch)."""
        data = self.to_dict()
        data.pop("name", None)
        data.pop("seed", None)
        data.pop("engine", None)
        canonical = json.dumps(data, sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha1(canonical.encode()).hexdigest()[:12]

    # -- overrides ----------------------------------------------------------
    def with_override(self, path: str, value: Any) -> "Scenario":
        """A copy with the dotted ``path`` set to ``value``.

        Paths are rooted at the scenario (``node.disk.scheduler.kind``);
        string values are coerced to the target field's type, so CLI
        grids can pass everything as text.  List fields take indices
        (``node.disks[1].capacity_mb``) or a wildcard applying to every
        element (``node.disks[*].scheduler.kind``), and a
        ``node[3].``-prefixed path lands in :attr:`node_overrides` so a
        single node can diverge from the rest of the cluster.
        """
        match = _NODE_OVERRIDE_PATH.match(path)
        if match:
            node_id, sub = match.group("node"), match.group("rest")
            # resolve against that node's current config now, so bad
            # paths and values fail here like cluster-wide ones do
            _override(self.node_config_for(int(node_id)),
                      sub.split("."), value, f"scenario.node[{node_id}]")
            per_node = dict(self.node_overrides.get(node_id, {}))
            per_node[sub] = value
            merged = dict(self.node_overrides)
            merged[node_id] = per_node
            return replace(self, node_overrides=merged)
        return _override(self, path.split("."), value, "scenario")

    def with_overrides(self,
                       overrides: Mapping[str, Any]) -> "Scenario":
        scenario = self
        for path, value in overrides.items():
            scenario = scenario.with_override(path, value)
        return scenario

    # -- serialization ------------------------------------------------------
    def to_dict(self) -> dict:
        return _to_dict(self)

    @classmethod
    def from_dict(cls, data: Mapping, *,
                  validate: bool = True) -> "Scenario":
        scenario = _from_dict(cls, data, "scenario")
        return scenario.validate() if validate else scenario

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        return cls.from_dict(json.loads(text))

    def to_toml(self) -> str:
        return _emit_toml(self.to_dict())

    @classmethod
    def from_toml(cls, text: str) -> "Scenario":
        try:
            import tomllib
        except ModuleNotFoundError:          # Python < 3.11
            import tomli as tomllib          # type: ignore[no-redef]
        return cls.from_dict(tomllib.loads(text))

    def save(self, path: Union[str, Path]) -> Path:
        """Write as TOML or JSON, chosen by suffix (default TOML)."""
        path = Path(path)
        text = self.to_json() if path.suffix == ".json" else self.to_toml()
        path.write_text(text)
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Scenario":
        path = Path(path)
        text = path.read_text()
        if path.suffix == ".json":
            return cls.from_json(text)
        return cls.from_toml(text)


#: ``node[3].disks[0].capacity_mb`` — per-node override paths
_NODE_OVERRIDE_PATH = re.compile(r"^node\[(?P<node>\d+)\]\.(?P<rest>.+)$")
#: one path part with an index suffix: ``disks[0]`` / ``disks[*]``
_INDEXED_PART = re.compile(
    r"^(?P<name>[A-Za-z_][A-Za-z0-9_]*)\[(?P<index>\d+|\*)\]$")


def _override(obj, parts: Sequence[str], value: Any, path: str):
    """Descend ``parts`` through the dataclass tree and replace a leaf.

    Parts may carry an index (``disks[1]``) or wildcard (``disks[*]``)
    into tuple fields; dataclasses can alias legacy part names via a
    ``_FIELD_ALIASES`` class attribute (``disk`` -> ``disks[0]``).
    """
    name, rest = parts[0], parts[1:]
    here = f"{path}.{name}"
    if isinstance(obj, dict):
        # inside workload.params: free-form nesting, create as needed
        if rest:
            child = obj.get(name, {})
            if not isinstance(child, Mapping):
                raise ConfigError(here, "not a table; cannot descend")
            new = dict(obj)
            new[name] = _override(dict(child), rest, value, here)
            return new
        new = dict(obj)
        new[name] = value
        return new
    if not is_dataclass(obj):
        raise ConfigError(path, "not a config section; cannot descend")
    index = None
    match = _INDEXED_PART.match(name)
    if match:
        name, index = match.group("name"), match.group("index")
    known = {f.name for f in fields(obj)}
    if index is None and name not in known:
        alias = getattr(type(obj), "_FIELD_ALIASES", {}).get(name)
        if alias is not None:
            name, index = alias[0], str(alias[1])
    if name not in known:
        raise ConfigError(here, f"unknown field; valid fields: "
                                f"{sorted(known)}")
    current = getattr(obj, name)
    hints = get_type_hints(type(obj))
    if index is not None:
        if not isinstance(current, tuple):
            raise ConfigError(here, f"field {name!r} is not a list; "
                                    f"cannot index into it")
        item_type = (get_args(hints[name]) or (str,))[0]
        if index == "*":
            targets = range(len(current))
        else:
            i = int(index)
            if i >= len(current):
                raise ConfigError(
                    f"{path}.{name}[{i}]",
                    f"index out of range; {name} has {len(current)} "
                    f"entries")
            targets = (i,)
        items = list(current)
        for i in targets:
            sub_path = f"{path}.{name}[{i}]"
            items[i] = (_override(items[i], rest, value, sub_path)
                        if rest else
                        _convert(value, item_type, sub_path))
        return replace(obj, **{name: tuple(items)})
    if rest:
        return replace(obj, **{name: _override(current, rest, value, here)})
    return replace(obj, **{name: _convert(value, hints[name], here)})


# -- minimal TOML emission ----------------------------------------------------
def _toml_value(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        return json.dumps(value)
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_toml_value(v) for v in value) + "]"
    raise TypeError(f"cannot emit {value!r} as TOML")


_BARE_KEY = re.compile(r"^[A-Za-z0-9_-]+$")


def _toml_key(key: str) -> str:
    """Quote keys that aren't bare (override paths like ``disks[0].x``)."""
    return key if _BARE_KEY.match(key) else json.dumps(key)


def _emit_toml(data: Mapping, prefix: str = "") -> str:
    """Emit nested dicts as TOML tables (scalars first, then subtables).

    Covers exactly the shapes a scenario produces — scalars, string
    lists, nested string-keyed tables, and lists of tables (the
    ``node.disks`` members become ``[[node.disks]]`` blocks);
    round-trips through :mod:`tomllib`.
    """
    lines = []
    tables = []
    arrays = []
    for key, value in data.items():
        if isinstance(value, Mapping):
            tables.append((key, value))
        elif (isinstance(value, (list, tuple)) and value
              and all(isinstance(v, Mapping) for v in value)):
            arrays.append((key, value))
        else:
            lines.append(f"{_toml_key(key)} = {_toml_value(value)}")
    out = "\n".join(lines)
    for key, elements in arrays:
        full = f"{prefix}{_toml_key(key)}"
        for element in elements:
            body = _emit_toml(element, prefix=f"{full}.")
            out += f"\n\n[[{full}]]"
            if body:
                out += f"\n{body}"
    for key, value in tables:
        full = f"{prefix}{_toml_key(key)}"
        body = _emit_toml(value, prefix=f"{full}.")
        out += f"\n\n[{full}]"
        if body:
            out += f"\n{body}"
    return out.strip() + "\n"


#: convenience re-export target for dataclasses.replace-style edits
scenario_fields = dataclasses.fields
