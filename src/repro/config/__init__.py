"""Declarative configuration of the simulated platform.

``repro.config`` turns every construction-time choice the stack makes
into data: a :class:`Scenario` describes the cluster, node hardware,
disk stack (scheduler / drive cache by registry name), driver
transport, workload mix, and experiment protocol, round-trips through
TOML and JSON, and validates with errors that name the exact offending
path.  ``repro.config.sweep`` expands grid specs over a base scenario
and fans the runs out in parallel for side-by-side comparison.
"""

from repro.config.scenario import (
    ClusterConfig,
    ConfigError,
    DiskConfig,
    DriveCacheConfig,
    DriverConfig,
    EngineConfig,
    ExperimentConfig,
    LayoutConfig,
    NetworkConfig,
    NodeConfig,
    PiousConfig,
    Scenario,
    SchedulerConfig,
    VMConfig,
    VolumeConfig,
    WorkloadConfig,
)
from repro.config.sweep import (
    GRID_ALIASES,
    SweepAxis,
    SweepPoint,
    SweepResult,
    expand_grid,
    parse_axis_spec,
    render_sweep_table,
    run_sweep,
    sweep_to_json,
)

__all__ = [
    "ClusterConfig",
    "ConfigError",
    "DiskConfig",
    "DriveCacheConfig",
    "DriverConfig",
    "EngineConfig",
    "ExperimentConfig",
    "GRID_ALIASES",
    "LayoutConfig",
    "NetworkConfig",
    "NodeConfig",
    "PiousConfig",
    "Scenario",
    "SchedulerConfig",
    "SweepAxis",
    "SweepPoint",
    "SweepResult",
    "VMConfig",
    "VolumeConfig",
    "WorkloadConfig",
    "expand_grid",
    "parse_axis_spec",
    "render_sweep_table",
    "run_sweep",
    "sweep_to_json",
]
