"""Unit tests for Resource and Store."""

import pytest

from repro.sim import Resource, Simulator, Store
from repro.sim.core import SimulationError


def test_resource_grants_up_to_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    grants = []

    def user(sim, res, name, hold):
        req = res.request()
        yield req
        grants.append((name, sim.now))
        yield sim.timeout(hold)
        res.release(req)

    for name in ("a", "b", "c"):
        sim.process(user(sim, res, name, 5.0))
    sim.run()
    assert grants == [("a", 0.0), ("b", 0.0), ("c", 5.0)]


def test_resource_fifo_order():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def user(sim, res, name):
        with res.request() as req:
            yield req
            order.append(name)
            yield sim.timeout(1.0)

    for name in range(5):
        sim.process(user(sim, res, name))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_resource_counts_and_queue_length():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def holder(sim, res):
        with res.request() as req:
            yield req
            assert res.count == 1
            yield sim.timeout(10.0)

    def waiter(sim, res):
        yield sim.timeout(1.0)
        req = res.request()
        assert res.queue_length == 1
        yield req
        res.release(req)

    sim.process(holder(sim, res))
    sim.process(waiter(sim, res))
    sim.run()
    assert res.count == 0
    assert res.queue_length == 0


def test_release_ungranted_request_is_error():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    held = res.request()  # grabs the unit
    waiting = res.request()
    with pytest.raises(SimulationError):
        res.release(waiting)
    res.release(held)


def test_cancel_removes_from_queue():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    res.request()
    waiting = res.request()
    waiting.cancel()
    assert res.queue_length == 0


def test_capacity_must_be_positive():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_store_put_get_fifo():
    sim = Simulator()
    store = Store(sim)
    got = []

    def producer(sim, store):
        for i in range(3):
            yield store.put(i)
            yield sim.timeout(1.0)

    def consumer(sim, store):
        for _ in range(3):
            item = yield store.get()
            got.append((sim.now, item))

    sim.process(producer(sim, store))
    sim.process(consumer(sim, store))
    sim.run()
    assert [item for _, item in got] == [0, 1, 2]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer(sim, store):
        item = yield store.get()
        got.append((sim.now, item))

    def producer(sim, store):
        yield sim.timeout(7.0)
        yield store.put("x")

    sim.process(consumer(sim, store))
    sim.process(producer(sim, store))
    sim.run()
    assert got == [(7.0, "x")]


def test_store_capacity_blocks_putter():
    sim = Simulator()
    store = Store(sim, capacity=1)
    times = []

    def producer(sim, store):
        yield store.put("a")
        times.append(("put-a", sim.now))
        yield store.put("b")
        times.append(("put-b", sim.now))

    def consumer(sim, store):
        yield sim.timeout(4.0)
        yield store.get()

    sim.process(producer(sim, store))
    sim.process(consumer(sim, store))
    sim.run()
    assert ("put-a", 0.0) in times
    assert ("put-b", 4.0) in times


def test_store_len_tracks_items():
    sim = Simulator()
    store = Store(sim)
    store.put(1)
    store.put(2)
    sim.run()
    assert len(store) == 2
