"""Integration tests for the application workload models.

These check that each model reproduces its application's qualitative I/O
signature from the paper (request-size classes, read/write mix, phase
timing), running solo on one node of the simulated cluster.
"""

import numpy as np
import pytest

from repro.apps import (
    NBodyApplication,
    NBodyParams,
    PPMApplication,
    PPMParams,
    WaveletApplication,
)
from repro.cluster import BeowulfCluster
from repro.sim import Simulator


def run_solo(appcls, seed=3, until=2000.0, **app_kw):
    sim = Simulator()
    cluster = BeowulfCluster(sim, nnodes=1, seed=seed)
    node = cluster.nodes[0]
    app = appcls(node, **app_kw)

    def setup():
        yield from app.install()
        yield from node.kernel.cache.sync()

    sim.process(setup())
    sim.run(until=1.0)
    cluster.reset_trace_clocks()
    node.kernel.spawn(app.run(), name=app.name)
    sim.run(until=until)
    return app, cluster.gather_traces(), node


@pytest.fixture(scope="module")
def ppm_run():
    return run_solo(PPMApplication)


@pytest.fixture(scope="module")
def wavelet_run():
    return run_solo(WaveletApplication)


@pytest.fixture(scope="module")
def nbody_run():
    return run_solo(NBodyApplication)


# -- PPM ---------------------------------------------------------------------

def test_ppm_duration_near_paper(ppm_run):
    app, arr, _ = ppm_run
    assert 150 < app.stats.duration < 320  # paper figure spans ~250 s


def test_ppm_low_io_mostly_writes(ppm_run):
    app, arr, _ = ppm_run
    read_frac = (arr["write"] == 0).mean()
    assert read_frac < 0.10               # Table 1: 4% reads
    rate = len(arr) / app.stats.duration
    assert rate < 10.0                    # "relatively low" I/O


def test_ppm_1kb_blocks_dominate(ppm_run):
    _, arr, _ = ppm_run
    sizes, counts = np.unique(arr["size_kb"], return_counts=True)
    assert sizes[np.argmax(counts)] == 1.0


def test_ppm_paging_blip_is_late(ppm_run):
    app, arr, _ = ppm_run
    paging = arr[arr["size_kb"] == 4.0]
    reads4 = paging[paging["write"] == 0]
    third = app.stats.duration / 3
    # no paging through the body of the run...
    middle = reads4[(reads4["time"] >= third) & (reads4["time"] < 2 * third)]
    assert len(middle) == 0
    # ... but a brief burst near the end (paper: ~230 s of ~250)
    late = reads4[reads4["time"] >= 2 * third]
    assert len(late) > 0


def test_ppm_stats_file_written(ppm_run):
    app, _, node = ppm_run
    inode = node.kernel.fs.lookup(f"/home/ppm/stats.0")
    p = PPMParams()
    expected = (p.steps // p.stats_interval + (p.steps % p.stats_interval > 0)) \
        * p.stats_bytes
    assert inode.size_bytes >= p.stats_bytes
    assert node.kernel.fs.lookup("/home/ppm/result.0").size_bytes == \
        p.output_kb * 1024


# -- Wavelet -----------------------------------------------------------------

def test_wavelet_balanced_read_write_mix(wavelet_run):
    app, arr, _ = wavelet_run
    read_frac = (arr["write"] == 0).mean()
    assert 0.40 < read_frac < 0.60        # Table 1: 49% / 51%


def test_wavelet_heavy_4kb_paging(wavelet_run):
    _, arr, _ = wavelet_run
    frac_4kb = (arr["size_kb"] == 4.0).mean()
    assert frac_4kb > 0.5                 # Figure 3's dense paging band


def test_wavelet_has_16kb_read_burst(wavelet_run):
    app, arr, _ = wavelet_run
    big_reads = arr[(arr["size_kb"] >= 8.0) & (arr["write"] == 0)]
    assert len(big_reads) > 0
    assert big_reads["size_kb"].max() == 16.0
    # image read happens in the first third of the run (~50 s in paper)
    assert big_reads["time"].min() < 0.4 * app.stats.duration


def test_wavelet_activity_heavier_at_ends_than_middle(wavelet_run):
    app, arr, _ = wavelet_run
    third = app.stats.duration / 3
    first = (arr["time"] < third).sum()
    middle = ((arr["time"] >= third) & (arr["time"] < 2 * third)).sum()
    last = (arr["time"] >= 2 * third).sum()
    assert first > middle
    assert last > middle


def test_wavelet_much_more_io_than_ppm(wavelet_run, ppm_run):
    _, wav_arr, _ = wavelet_run
    _, ppm_arr, _ = ppm_run
    assert len(wav_arr) > 4 * len(ppm_arr)


# -- N-body ----------------------------------------------------------------

def test_nbody_duration_near_paper(nbody_run):
    app, _, _ = nbody_run
    assert 150 < app.stats.duration < 320


def test_nbody_write_dominated_with_modest_reads(nbody_run):
    _, arr, _ = nbody_run
    read_frac = (arr["write"] == 0).mean()
    assert 0.03 < read_frac < 0.25        # Table 1: 13% reads


def test_nbody_more_paging_than_ppm_less_than_wavelet(nbody_run, ppm_run,
                                                      wavelet_run):
    def paging(arr):
        return (arr["size_kb"] == 4.0).sum()

    _, nb, _ = nbody_run
    _, pp, _ = ppm_run
    _, wv, _ = wavelet_run
    assert paging(pp) < paging(nb) < paging(wv)


def test_nbody_2kb_requests_present(nbody_run):
    _, arr, _ = nbody_run
    # write-back clustering of adjacent summary blocks
    assert (arr["size_kb"] == 2.0).sum() > 0


def test_nbody_interaction_count_matches_paper_scale():
    p = NBodyParams()
    # 16 processors x per-processor interactions over the run ~ 303 million
    total_cluster = p.total_interactions * 16
    assert 1e8 < total_cluster < 1e9


# -- cross-cutting ------------------------------------------------------------

def test_all_apps_clean_up_address_spaces(ppm_run, wavelet_run, nbody_run):
    for app, _, node in (ppm_run, wavelet_run, nbody_run):
        assert app.aspace is None
        assert node.kernel.vm.frames_used == 0


def test_app_on_bare_kernel_without_pvm():
    from repro.kernel import NodeKernel
    sim = Simulator()
    kernel = NodeKernel(sim, node_id=0)
    app = PPMApplication(kernel, params=PPMParams(steps=2))

    def setup():
        yield from app.install()

    sim.process(setup())
    sim.run(until=1.0)
    kernel.spawn(app.run(), name="ppm")
    sim.run(until=200.0)
    assert app.stats.finished_at > app.stats.started_at


def test_subregion_validation():
    from repro.apps.base import ESSApplication
    with pytest.raises(ValueError):
        ESSApplication.subregion((0, 100), 0.5, 0.5)
    lo, n = ESSApplication.subregion((10, 100), 0.25, 0.75)
    assert lo == 35 and n == 50


def test_multinode_apps_communicate():
    """With nnodes > 1 the parallel codes exchange PVM messages."""
    from repro.core import ExperimentRunner
    runner = ExperimentRunner(nnodes=2, seed=8)
    result = runner.run("ppm")
    sent = sum(s.messages_sent for s in result.app_stats["ppm"])
    assert sent > 0
    nb = runner.run("nbody")
    assert sum(s.messages_sent for s in nb.app_stats["nbody"]) > 0
