"""Tests for per-node variance and VERBOSE service-time estimation."""

import numpy as np
import pytest

from repro.core import TraceDataset
from repro.core.metrics import estimate_service_times, per_node_variance
from repro.disk import Disk
from repro.driver import (
    HDIO_SET_TRACE,
    InstrumentedIDEDriver,
    ProcTraceTransport,
    TraceLevel,
)
from repro.sim import Simulator


def test_per_node_variance_balanced():
    rows = []
    for node in range(4):
        for i in range(100):
            rows.append((float(i), i, 1, 1, 1.0, node))
    nv = per_node_variance(TraceDataset.from_records(rows))
    assert nv.mean == 100.0
    assert nv.cv == 0.0
    assert nv.balanced


def test_per_node_variance_straggler():
    rows = [(float(i), i, 1, 1, 1.0, 0) for i in range(300)]
    rows += [(float(i), i, 1, 1, 1.0, 1) for i in range(20)]
    nv = per_node_variance(TraceDataset.from_records(rows))
    assert not nv.balanced
    assert nv.per_node_requests == {0: 300, 1: 20}


def test_per_node_variance_empty():
    nv = per_node_variance(TraceDataset.empty())
    assert nv.mean == 0.0 and nv.cv == 0.0


def test_estimate_service_times_pairs_records():
    # submit at t, complete at t+latency, same identity
    rows = [
        (1.0, 100, 0, 1, 1.0, 0), (1.050, 100, 0, 0, 1.0, 0),
        (2.0, 200, 1, 1, 4.0, 0), (2.120, 200, 1, 0, 4.0, 0),
    ]
    lat = estimate_service_times(TraceDataset.from_records(rows))
    assert np.allclose(sorted(lat), [0.05, 0.12])


def test_estimate_service_times_unpaired_ignored():
    rows = [(1.0, 100, 0, 1, 1.0, 0)]
    assert len(estimate_service_times(TraceDataset.from_records(rows))) == 0
    assert len(estimate_service_times(TraceDataset.empty())) == 0


def test_verbose_driver_trace_yields_latencies_end_to_end():
    sim = Simulator()
    disk = Disk(sim, rng=np.random.default_rng(0))
    transport = ProcTraceTransport(sim)
    driver = InstrumentedIDEDriver(sim, disk, transport=transport)
    driver.ioctl(HDIO_SET_TRACE, TraceLevel.VERBOSE)
    for sector in (1000, 50_000, 600_000):
        driver.read_sectors(sector, 2)
    sim.run(until=10.0)
    transport.drain_now()
    trace = TraceDataset(transport.user_buffer.to_array())
    lat = estimate_service_times(trace)
    assert len(lat) == 3
    assert (lat > 0).all()
    # estimates agree with the device's own accounting
    assert np.mean(lat) == pytest.approx(disk.stats.mean_latency, rel=1e-6)


def test_kb_moved_and_throughput():
    from repro.core.metrics import compute_metrics
    ds = TraceDataset.from_records([
        (0.0, 1, 1, 1, 1.0, 0),
        (5.0, 2, 0, 1, 4.0, 0),
        (10.0, 3, 1, 1, 16.0, 0),
    ])
    m = compute_metrics(ds, duration=10.0)
    assert m.kb_moved == 21.0
    assert m.throughput_kb_per_s == pytest.approx(2.1)


def test_class_throughput_partitions_volume():
    from repro.core.metrics import class_throughput
    from repro.core.sizes import RequestClass
    ds = TraceDataset.from_records([
        (0.0, 1, 1, 1, 1.0, 0),
        (1.0, 2, 0, 1, 4.0, 0),
        (2.0, 3, 1, 1, 16.0, 0),
    ])
    tp = class_throughput(ds, duration=1.0)
    assert tp[RequestClass.BLOCK] == pytest.approx(1.0)
    assert tp[RequestClass.PAGE] == pytest.approx(4.0)
    assert tp[RequestClass.CACHE] == pytest.approx(16.0)
    assert sum(tp.values()) == pytest.approx(21.0)


def test_class_throughput_empty():
    from repro.core.metrics import class_throughput
    tp = class_throughput(TraceDataset.empty(), duration=1.0)
    assert all(v == 0.0 for v in tp.values())
