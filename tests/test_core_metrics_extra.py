"""Tests for per-node variance and VERBOSE service-time estimation."""

import numpy as np
import pytest

from repro.core import TraceDataset
from repro.core.metrics import estimate_service_times, per_node_variance
from repro.disk import Disk
from repro.driver import (
    HDIO_SET_TRACE,
    InstrumentedIDEDriver,
    ProcTraceTransport,
    TraceLevel,
)
from repro.sim import Simulator


def test_per_node_variance_balanced():
    rows = []
    for node in range(4):
        for i in range(100):
            rows.append((float(i), i, 1, 1, 1.0, node))
    nv = per_node_variance(TraceDataset.from_records(rows))
    assert nv.mean == 100.0
    assert nv.cv == 0.0
    assert nv.balanced


def test_per_node_variance_straggler():
    rows = [(float(i), i, 1, 1, 1.0, 0) for i in range(300)]
    rows += [(float(i), i, 1, 1, 1.0, 1) for i in range(20)]
    nv = per_node_variance(TraceDataset.from_records(rows))
    assert not nv.balanced
    assert nv.per_node_requests == {0: 300, 1: 20}


def test_per_node_variance_empty():
    nv = per_node_variance(TraceDataset.empty())
    assert nv.mean == 0.0 and nv.cv == 0.0


def test_estimate_service_times_pairs_records():
    # submit at t, complete at t+latency, same identity
    rows = [
        (1.0, 100, 0, 1, 1.0, 0), (1.050, 100, 0, 0, 1.0, 0),
        (2.0, 200, 1, 1, 4.0, 0), (2.120, 200, 1, 0, 4.0, 0),
    ]
    lat = estimate_service_times(TraceDataset.from_records(rows))
    assert np.allclose(sorted(lat), [0.05, 0.12])


def test_estimate_service_times_unpaired_ignored():
    rows = [(1.0, 100, 0, 1, 1.0, 0)]
    assert len(estimate_service_times(TraceDataset.from_records(rows))) == 0
    assert len(estimate_service_times(TraceDataset.empty())) == 0


def test_verbose_driver_trace_yields_latencies_end_to_end():
    sim = Simulator()
    disk = Disk(sim, rng=np.random.default_rng(0))
    transport = ProcTraceTransport(sim)
    driver = InstrumentedIDEDriver(sim, disk, transport=transport)
    driver.ioctl(HDIO_SET_TRACE, TraceLevel.VERBOSE)
    for sector in (1000, 50_000, 600_000):
        driver.read_sectors(sector, 2)
    sim.run(until=10.0)
    transport.drain_now()
    trace = TraceDataset(transport.user_buffer.to_array())
    lat = estimate_service_times(trace)
    assert len(lat) == 3
    assert (lat > 0).all()
    # estimates agree with the device's own accounting
    assert np.mean(lat) == pytest.approx(disk.stats.mean_latency, rel=1e-6)


def test_kb_moved_and_throughput():
    from repro.core.metrics import compute_metrics
    ds = TraceDataset.from_records([
        (0.0, 1, 1, 1, 1.0, 0),
        (5.0, 2, 0, 1, 4.0, 0),
        (10.0, 3, 1, 1, 16.0, 0),
    ])
    m = compute_metrics(ds, duration=10.0)
    assert m.kb_moved == 21.0
    assert m.throughput_kb_per_s == pytest.approx(2.1)


def test_class_throughput_partitions_volume():
    from repro.core.metrics import class_throughput
    from repro.core.sizes import RequestClass
    ds = TraceDataset.from_records([
        (0.0, 1, 1, 1, 1.0, 0),
        (1.0, 2, 0, 1, 4.0, 0),
        (2.0, 3, 1, 1, 16.0, 0),
    ])
    tp = class_throughput(ds, duration=1.0)
    assert tp[RequestClass.BLOCK] == pytest.approx(1.0)
    assert tp[RequestClass.PAGE] == pytest.approx(4.0)
    assert tp[RequestClass.CACHE] == pytest.approx(16.0)
    assert sum(tp.values()) == pytest.approx(21.0)


def test_class_throughput_empty():
    from repro.core.metrics import class_throughput
    tp = class_throughput(TraceDataset.empty(), duration=1.0)
    assert all(v == 0.0 for v in tp.values())


def test_idle_nodes_still_divide_per_node_averages():
    """Regression: a node with zero requests must count in the denominators.

    Deriving the node count from the trace silently dropped idle nodes
    and inflated requests_per_node / req/s/node / KB/s-per-disk.
    """
    from repro.core.experiments import ExperimentResult
    from repro.core.metrics import compute_metrics
    # 4-node cluster, but only node 0 issued I/O
    ds = TraceDataset.from_records([
        (float(i), i, i % 2, 1, 4.0, 0) for i in range(8)
    ])
    m = compute_metrics(ds, duration=10.0, nnodes=4)
    assert m.nnodes == 4
    assert m.requests_per_node == 2.0
    assert m.requests_per_second == pytest.approx(0.2)
    assert m.throughput_kb_per_s == pytest.approx(32.0 / 10.0 / 4)
    # the observed-node fallback (legacy behaviour) would have said 8
    biased = compute_metrics(ds, duration=10.0)
    assert biased.nnodes == 1
    assert biased.requests_per_node == 8.0
    # ExperimentResult threads its cluster size through automatically
    result = ExperimentResult(name="x", trace=ds, duration=10.0, nnodes=4)
    assert result.metrics.requests_per_node == 2.0


def test_throughput_uses_stored_nnodes_not_reconstruction():
    """Regression: throughput once reconstructed the node count as
    round(total_requests / requests_per_node), which broke on windowed
    traces where the two figures came from different record sets."""
    from repro.core.metrics import WorkloadMetrics
    m = WorkloadMetrics(label="x", total_requests=7, read_fraction=1.0,
                        write_fraction=0.0, requests_per_second=0.35,
                        requests_per_node=3.5, duration=10.0,
                        mean_size_kb=4.0, mean_pending=1.0,
                        kb_moved=100.0, nnodes=2)
    assert m.throughput_kb_per_s == pytest.approx(100.0 / 10.0 / 2)


def test_workload_metrics_dict_round_trip():
    from repro.core.metrics import WorkloadMetrics
    m = WorkloadMetrics(label="run", total_requests=10, read_fraction=0.6,
                        write_fraction=0.4, requests_per_second=1.0,
                        requests_per_node=5.0, duration=10.0,
                        mean_size_kb=2.0, mean_pending=1.5,
                        kb_moved=20.0, nnodes=2)
    data = m.to_dict()
    assert data["nnodes"] == 2
    assert data["read_pct"] == 60
    assert WorkloadMetrics.from_dict(data) == m


def test_workload_metrics_from_legacy_manifest_dict():
    """Manifests written before the nnodes field must still load."""
    from repro.core.metrics import WorkloadMetrics
    legacy = {"total_requests": 100, "read_pct": 70, "write_pct": 30,
              "requests_per_second": 2.5, "requests_per_node": 25.0,
              "duration": 10.0, "mean_size_kb": 4.0, "mean_pending": 1.0,
              "kb_moved": 400.0}
    m = WorkloadMetrics.from_dict(legacy)
    assert m.nnodes == 4          # reconstructed: 100 / 25
    assert m.read_fraction == pytest.approx(0.7)
    assert m.write_fraction == pytest.approx(0.3)
    assert m.throughput_kb_per_s == pytest.approx(400.0 / 10.0 / 4)
    # minimal legacy dicts default sanely
    bare = WorkloadMetrics.from_dict({"total_requests": 5})
    assert bare.nnodes == 1
    assert bare.label == ""
