"""Unit and property tests for named random streams."""

import numpy as np
from hypothesis import given, strategies as st

from repro.sim import RandomStreams


def test_same_name_same_stream_object():
    rs = RandomStreams(seed=1)
    assert rs.stream("disk") is rs.stream("disk")


def test_reproducible_across_factories():
    a = RandomStreams(seed=42).stream("klog").random(5)
    b = RandomStreams(seed=42).stream("klog").random(5)
    assert np.array_equal(a, b)


def test_different_names_decorrelated():
    rs = RandomStreams(seed=42)
    a = rs.stream("a").random(100)
    b = rs.stream("b").random(100)
    assert not np.array_equal(a, b)


def test_creation_order_does_not_matter():
    rs1 = RandomStreams(seed=7)
    first = rs1.stream("x").random(3)
    rs2 = RandomStreams(seed=7)
    rs2.stream("y")  # create another stream first
    second = rs2.stream("x").random(3)
    assert np.array_equal(first, second)


def test_spawn_children_differ_from_parent_and_each_other():
    root = RandomStreams(seed=9)
    n0 = root.spawn("node0").stream("disk").random(10)
    n1 = root.spawn("node1").stream("disk").random(10)
    p = root.stream("disk").random(10)
    assert not np.array_equal(n0, n1)
    assert not np.array_equal(n0, p)


def test_spawn_reproducible():
    a = RandomStreams(seed=3).spawn("node5").stream("s").random(4)
    b = RandomStreams(seed=3).spawn("node5").stream("s").random(4)
    assert np.array_equal(a, b)


@given(st.integers(min_value=0, max_value=2**31 - 1), st.text(min_size=1, max_size=20))
def test_stream_deterministic_property(seed, name):
    x = RandomStreams(seed).stream(name).integers(0, 1 << 30)
    y = RandomStreams(seed).stream(name).integers(0, 1 << 30)
    assert x == y


@given(st.integers(min_value=0, max_value=1000))
def test_distinct_seeds_usually_distinct_draws(seed):
    a = RandomStreams(seed).stream("s").random(8)
    b = RandomStreams(seed + 1).stream("s").random(8)
    assert not np.array_equal(a, b)
