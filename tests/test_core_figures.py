"""Unit tests for figure generation and the ASCII renderer."""

import numpy as np
import pytest

from repro.core import TraceDataset, make_figure
from repro.core.experiments import ExperimentResult
from repro.core.figures import FIGURE_EXPERIMENT
from repro.viz import bar_chart, scatter


def result(name, n=50, seed=0):
    rng = np.random.default_rng(seed)
    rows = [(float(i), int(rng.integers(0, 1_000_000)), int(rng.random() < 0.8),
             1, float(rng.choice([1.0, 4.0, 16.0])), 0) for i in range(n)]
    return ExperimentResult(name=name, trace=TraceDataset.from_records(rows),
                            duration=float(n), nnodes=1)


def test_every_figure_buildable():
    for number, exp in FIGURE_EXPERIMENT.items():
        fig = make_figure(number, result(exp))
        assert fig.number == number
        assert len(fig.x) > 0
        text = fig.render()
        assert f"Figure {number}" in text


def test_wrong_experiment_rejected():
    with pytest.raises(ValueError, match="wavelet"):
        make_figure(3, result("baseline"))


def test_unknown_figure_rejected():
    with pytest.raises(ValueError):
        make_figure(9, result("combined"))


def test_figure1_plots_sectors():
    fig = make_figure(1, result("baseline"))
    assert fig.ylabel == "sector"
    assert fig.y.max() <= 1_024_128


def test_figure5_plots_sizes():
    fig = make_figure(5, result("combined"))
    assert set(np.unique(fig.y)) <= {1.0, 4.0, 16.0}


def test_figure7_fractions():
    fig = make_figure(7, result("combined"))
    assert fig.kind == "bar"
    assert fig.y.sum() == pytest.approx(1.0)
    assert len(fig.labels) == len(fig.y)


def test_figure8_frequencies_positive():
    fig = make_figure(8, result("combined"))
    assert (fig.y > 0).all()


def test_figure_csv_export(tmp_path):
    fig = make_figure(2, result("ppm"))
    out = tmp_path / "fig2.csv"
    fig.to_csv(out)
    lines = out.read_text().strip().splitlines()
    assert len(lines) == len(fig.x) + 1
    assert lines[0].startswith("time")


def test_figure_csv_roundtrip(tmp_path):
    """The written CSV parses back to the exact series."""
    import csv
    for number, exp in ((2, "ppm"), (7, "combined")):
        fig = make_figure(number, result(exp))
        out = tmp_path / f"fig{number}.csv"
        fig.to_csv(out)
        with out.open(newline="") as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == [fig.xlabel, fig.ylabel]
        xs = np.array([float(r[0]) for r in rows[1:]])
        ys = np.array([float(r[1]) for r in rows[1:]])
        assert np.array_equal(xs, fig.x.astype(np.float64))
        assert np.allclose(ys, fig.y, rtol=0, atol=0)


def test_figure_svg_well_formed(tmp_path):
    """to_svg writes parseable XML with a proper svg root and points."""
    import xml.etree.ElementTree as ET
    for number, exp in ((1, "baseline"), (7, "combined")):
        fig = make_figure(number, result(exp))
        out = tmp_path / f"fig{number}.svg"
        fig.to_svg(out)
        root = ET.parse(out).getroot()
        assert root.tag.endswith("svg")
        assert root.get("width") is not None
        texts = [el.text for el in root.iter() if el.text]
        assert any(fig.title in t for t in texts)


def test_make_figure_empty_trace():
    """Scatter figures survive an empty trace; locality figures, whose
    statistics are undefined on no data, raise ValueError."""
    for number, exp in FIGURE_EXPERIMENT.items():
        empty = ExperimentResult(name=exp, trace=TraceDataset.empty(),
                                 duration=10.0, nnodes=1)
        if number in (7, 8):
            with pytest.raises(ValueError, match="empty"):
                make_figure(number, empty)
        else:
            fig = make_figure(number, empty)
            assert len(fig.x) == 0
            assert "(no data)" in fig.render()


# -- ASCII renderer ------------------------------------------------------------

def test_scatter_renders_axes_and_points():
    text = scatter([0, 1, 2], [0, 5, 10], width=20, height=5,
                   title="T", xlabel="x", ylabel="y")
    assert "T" in text
    assert "+" in text
    assert "." in text or "*" in text


def test_scatter_empty():
    assert "(no data)" in scatter([], [], title="empty")


def test_scatter_validation():
    with pytest.raises(ValueError):
        scatter([1], [1, 2])
    with pytest.raises(ValueError):
        scatter([1], [1], width=2)


def test_scatter_density_characters():
    x = [0.5] * 100 + [0.0, 1.0]
    y = [0.5] * 100 + [0.0, 1.0]
    text = scatter(x, y, width=10, height=5)
    assert "#" in text


def test_bar_chart_scales_to_max():
    text = bar_chart(["a", "b"], [1.0, 2.0], width=10)
    lines = text.splitlines()
    assert lines[0].count("#") == 5
    assert lines[1].count("#") == 10


def test_bar_chart_validation_and_empty():
    with pytest.raises(ValueError):
        bar_chart(["a"], [1.0, 2.0])
    assert "(no data)" in bar_chart([], [])
