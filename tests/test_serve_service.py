"""End-to-end HTTP tests for the experiment service.

One module-scoped daemon runs a real (small) baseline job and a 2-point
sweep once; the read-only tests then share those finished jobs.  The
restart test gets its own service root: an accept-only daemon queues a
job, dies, and a successor must pick the job up and run it — the
durability claim at the heart of ``repro.serve``.
"""

import json

import pytest

from repro.config import Scenario
from repro.serve import ExperimentService, ServeClient, ServeError

# small but real: two simulated nodes, a short observation window
SCENARIO = Scenario().with_overrides(
    {"cluster.nnodes": 2, "seed": 7}).to_dict()
DURATION = 80.0


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    service = ExperimentService(tmp_path_factory.mktemp("serve-root"),
                                workers=2).start()
    yield service
    service.shutdown()


@pytest.fixture(scope="module")
def client(service):
    return ServeClient(service.url)


@pytest.fixture(scope="module")
def baseline_job(client):
    job = client.submit(scenario=SCENARIO, experiment="baseline",
                        duration=DURATION)
    return client.wait(job["id"], timeout=120)


@pytest.fixture(scope="module")
def sweep_job(client):
    job = client.submit(scenario=SCENARIO, experiment="baseline",
                        duration=DURATION,
                        grid=["scheduler=clook,fifo"],
                        catalog="team-a")
    return client.wait(job["id"], timeout=240)


# -- jobs ----------------------------------------------------------------------
def test_submitted_job_runs_to_finished(baseline_job):
    assert baseline_job["state"] == "finished"
    assert baseline_job["run_ids"] == ["baseline"]
    assert baseline_job["result"]["total_requests"] > 0
    assert baseline_job["started"] >= baseline_job["created"]
    assert baseline_job["finished"] >= baseline_job["started"]


def test_job_listing_and_filters(client, baseline_job):
    jobs = client.jobs()
    assert any(j["id"] == baseline_job["id"] for j in jobs)
    finished = client.jobs(state="finished")
    assert all(j["state"] == "finished" for j in finished)
    status, table, _ = client.request("GET", "/v1/jobs?format=text")
    assert status == 200
    assert table.splitlines()[0].startswith("job")
    assert baseline_job["id"] in table


def test_unknown_job_is_404(client):
    with pytest.raises(ServeError) as err:
        client.job("job-999999")
    assert err.value.status == 404


def test_bad_submissions_are_400(client):
    for body in ({"experiment": "not-an-experiment"},
                 {"grid": "scheduler=clook"},        # not a list
                 {"grid": ["nonsense"]},             # unparseable axis
                 {"catalog": "../escape"},
                 {"scenario": {"cluster": {"nnodes": "many"}}},
                 {"kind": "sweep"}):                 # sweep without grid
        with pytest.raises(ServeError) as err:
            client.request("POST", "/v1/jobs", body=body)
        assert err.value.status == 400, body


def test_cancel_terminal_job_conflicts(client, baseline_job):
    with pytest.raises(ServeError) as err:
        client.cancel(baseline_job["id"])
    assert err.value.status == 409
    with pytest.raises(ServeError) as err:
        client.cancel("job-424242")
    assert err.value.status == 404


# -- sweeps feed the catalog ---------------------------------------------------
def test_sweep_job_stamps_run_ids(sweep_job, client):
    assert sweep_job["state"] == "finished"
    assert sorted(sweep_job["run_ids"]) == [
        "baseline@scheduler=clook", "baseline@scheduler=fifo"]
    # every per-point summary carries the run id it was stored under
    by_label = {row["run_id"] for row in sweep_job["result"]}
    assert by_label == set(sweep_job["run_ids"])
    runs = client.runs(catalog="team-a")
    assert sorted(r["run"] for r in runs["team-a"]) == \
        sorted(sweep_job["run_ids"])


def test_runs_index_covers_all_catalogs(client, baseline_job, sweep_job):
    runs = client.runs()
    assert set(runs) >= {"default", "team-a"}
    default = {r["run"]: r for r in runs["default"]}
    assert default["baseline"]["records"] > 0
    assert default["baseline"]["nnodes"] == 2
    assert default["baseline"]["fingerprint"]
    with pytest.raises(ServeError) as err:
        client.runs(catalog="nope")
    assert err.value.status == 404


# -- progress events over SSE --------------------------------------------------
def test_event_stream_replays_job_history(client, baseline_job):
    events = list(client.events(baseline_job["id"]))
    kinds = [e["event"] for e in events]
    assert kinds[0] == "queued"
    assert "started" in kinds
    assert kinds[-1] == "finished"
    assert [e["id"] for e in events] == list(range(1, len(events) + 1))
    point = next(e for e in events if e["event"] == "point")
    assert point["k"] == 1 and point["n"] == 1
    assert point["run_id"] == "baseline"
    assert point["events_per_sec"] is None or point["events_per_sec"] > 0


def test_event_stream_resumes_after_cursor(client, baseline_job,
                                           sweep_job):
    full = list(client.events(sweep_job["id"]))
    assert sum(1 for e in full if e["event"] == "point") == 2
    resumed = list(client.events(sweep_job["id"], after=full[1]["id"]))
    assert resumed == full[2:]
    # ?after= is the query-string spelling of Last-Event-ID
    status, body, _ = client.request(
        "GET", f"/v1/jobs/{sweep_job['id']}/events?after={full[-1]['id']}")
    assert status == 200 and body is None
    metrics = client.metrics()
    assert metrics["serve.event_streams"]["value"] >= 3
    assert metrics["serve.events_sent"]["value"] >= len(full) + len(resumed)


def test_event_stream_unknown_job_is_404(client):
    with pytest.raises(ServeError) as err:
        list(client.events("job-999999"))
    assert err.value.status == 404


# -- analysis: cached, ETagged, bit-identical ----------------------------------
def test_analysis_matches_trace_cli_bit_for_bit(service, client,
                                                baseline_job, capsys):
    from repro.store.cli import main as trace_main

    answer = client.analysis("baseline", pipeline="metrics")
    assert not answer.from_cache
    assert answer.etag and answer.etag.startswith('"')
    assert answer.payload["pipeline"] == "metrics"

    root = service.root / "catalogs" / "default"
    assert trace_main(["analyze", str(root), "baseline",
                       "--pipelines", "metrics", "--json"]) == 0
    cli_payload = json.loads(capsys.readouterr().out)
    assert answer.result == cli_payload["baseline"]["metrics"]


def test_repeat_analysis_is_304(client, baseline_job):
    first = client.analysis("baseline", pipeline="sizes")
    again = client.analysis("baseline", pipeline="sizes")
    assert not first.from_cache
    assert again.from_cache
    assert again.etag == first.etag
    assert again.result == first.result
    metrics = client.metrics()
    assert metrics["serve.analysis_304s"]["value"] >= 1


def test_analysis_predicates_change_the_etag(client, baseline_job):
    full = client.analysis("baseline")
    reads = client.analysis("baseline", rw="reads")
    assert reads.etag != full.etag
    assert reads.payload["predicates"] == {"write": False}
    assert reads.result["total_requests"] <= full.result["total_requests"]


def test_analysis_errors(client, baseline_job):
    with pytest.raises(ServeError) as err:
        client.analysis("baseline", pipeline="bogus")
    assert err.value.status == 404
    with pytest.raises(ServeError) as err:
        client.analysis("no-such-run")
    assert err.value.status == 404
    with pytest.raises(ServeError) as err:
        client.request("GET", "/v1/analysis/baseline/metrics?rw=sideways")
    assert err.value.status == 400


# -- service plumbing ----------------------------------------------------------
def test_status_endpoint(client, baseline_job):
    status = client.status()
    assert status["server"] == "repro-serve/1"
    assert status["workers"] == 2
    assert status["jobs"]["finished"] >= 1
    assert "default" in status["catalogs"]


def test_request_metrics_are_counted(client):
    client.status()
    metrics = client.metrics()
    assert metrics["serve.requests"]["children"]["get_status"] >= 1
    assert "get_status" in metrics["serve.request_seconds"]["children"]


def test_unrouted_path_is_404(client):
    with pytest.raises(ServeError) as err:
        client.request("GET", "/v2/everything")
    assert err.value.status == 404


# -- durability: the daemon restart test ---------------------------------------
def test_queued_job_survives_daemon_restart(tmp_path):
    root = tmp_path / "serve-root"
    first = ExperimentService(root, workers=0).start()   # accept-only
    client = ServeClient(first.url)
    job = client.submit(scenario=SCENARIO, duration=DURATION)
    cancelled = client.submit(scenario=SCENARIO, duration=DURATION)
    assert client.cancel(cancelled["id"])["state"] == "cancelled"
    first.shutdown()                                     # daemon dies

    second = ExperimentService(root, workers=1).start()
    try:
        client = ServeClient(second.url)
        final = client.wait(job["id"], timeout=120)
        assert final["state"] == "finished"
        assert final["run_ids"] == ["baseline"]
        # the cancelled job stayed cancelled across the restart
        assert client.job(cancelled["id"])["state"] == "cancelled"
    finally:
        second.shutdown()
