"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import Interrupt, Simulator, SimulationError


def test_timeout_advances_clock():
    sim = Simulator()
    log = []

    def proc(sim):
        yield sim.timeout(2.5)
        log.append(sim.now)
        yield sim.timeout(1.0)
        log.append(sim.now)

    sim.process(proc(sim))
    sim.run()
    assert log == [2.5, 3.5]
    assert sim.now == 3.5


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    for delay in (3.0, 1.0, 2.0):
        sim.schedule_callback(delay, lambda d=delay: order.append(d))
    sim.run()
    assert order == [1.0, 2.0, 3.0]


def test_ties_fire_in_schedule_order():
    sim = Simulator()
    order = []
    for tag in "abc":
        sim.schedule_callback(1.0, lambda t=tag: order.append(t))
    sim.run()
    assert order == ["a", "b", "c"]


def test_run_until_stops_clock_exactly():
    sim = Simulator()

    def ticker(sim):
        while True:
            yield sim.timeout(1.0)

    sim.process(ticker(sim))
    sim.run(until=5.5)
    assert sim.now == 5.5


def test_run_until_past_raises():
    sim = Simulator()
    sim.run(until=3.0)
    with pytest.raises(ValueError):
        sim.run(until=1.0)


def test_process_return_value_propagates():
    sim = Simulator()
    results = []

    def child(sim):
        yield sim.timeout(1.0)
        return 42

    def parent(sim):
        value = yield sim.process(child(sim))
        results.append(value)

    sim.process(parent(sim))
    sim.run()
    assert results == [42]


def test_waiting_on_finished_process_resumes_immediately():
    sim = Simulator()
    results = []

    def child(sim):
        return 7
        yield  # pragma: no cover

    def parent(sim, childproc):
        yield sim.timeout(5.0)
        value = yield childproc
        results.append((sim.now, value))

    childproc = sim.process(child(sim))
    sim.process(parent(sim, childproc))
    sim.run()
    assert results == [(5.0, 7)]


def test_event_succeed_wakes_waiter():
    sim = Simulator()
    gate = sim.event()
    log = []

    def waiter(sim):
        value = yield gate
        log.append((sim.now, value))

    def opener(sim):
        yield sim.timeout(3.0)
        gate.succeed("open")

    sim.process(waiter(sim))
    sim.process(opener(sim))
    sim.run()
    assert log == [(3.0, "open")]


def test_event_cannot_trigger_twice():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_raises_in_waiter():
    sim = Simulator()
    ev = sim.event()
    caught = []

    def waiter(sim):
        try:
            yield ev
        except RuntimeError as exc:
            caught.append(str(exc))

    sim.process(waiter(sim))
    ev.fail(RuntimeError("boom"))
    sim.run()
    assert caught == ["boom"]


def test_uncaught_process_exception_propagates_from_run():
    sim = Simulator()

    def bad(sim):
        yield sim.timeout(1.0)
        raise ValueError("exploded")

    sim.process(bad(sim))
    with pytest.raises(ValueError, match="exploded"):
        sim.run()


def test_fail_fast_off_records_failure_on_process():
    sim = Simulator(fail_fast=False)

    def bad(sim):
        yield sim.timeout(1.0)
        raise ValueError("exploded")

    proc = sim.process(bad(sim))
    sim.run()
    assert proc.triggered and not proc.ok
    assert isinstance(proc.value, ValueError)


def test_yield_non_event_raises():
    sim = Simulator()

    def bad(sim):
        yield 42

    sim.process(bad(sim))
    with pytest.raises(SimulationError, match="non-event"):
        sim.run()


def test_interrupt_delivers_cause():
    sim = Simulator()
    log = []

    def sleeper(sim):
        try:
            yield sim.timeout(100.0)
        except Interrupt as intr:
            log.append((sim.now, intr.cause))

    def interrupter(sim, victim):
        yield sim.timeout(2.0)
        victim.interrupt("wake up")

    victim = sim.process(sleeper(sim))
    sim.process(interrupter(sim, victim))
    sim.run()
    assert log == [(2.0, "wake up")]


def test_interrupt_dead_process_raises():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(1.0)

    proc = sim.process(quick(sim))
    sim.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_interrupted_process_can_continue():
    sim = Simulator()
    log = []

    def sleeper(sim):
        try:
            yield sim.timeout(100.0)
        except Interrupt:
            pass
        yield sim.timeout(1.0)
        log.append(sim.now)

    def interrupter(sim, victim):
        yield sim.timeout(2.0)
        victim.interrupt()

    victim = sim.process(sleeper(sim))
    sim.process(interrupter(sim, victim))
    sim.run()
    assert log == [3.0]


def test_peek_reports_next_event_time():
    sim = Simulator()
    assert sim.peek() == float("inf")
    sim.timeout(4.0)
    assert sim.peek() == 4.0


def test_schedule_callback_runs_at_delay():
    sim = Simulator()
    hits = []
    sim.schedule_callback(2.0, lambda: hits.append(sim.now))
    sim.run()
    assert hits == [2.0]


def test_interrupt_while_waiting_on_already_triggered_event():
    """Interrupting between an event's trigger and its firing must win.

    The waiter detaches from the (already scheduled) event, receives the
    Interrupt, and the event itself still fires later to no effect.
    """
    sim = Simulator()
    ev = sim.event()
    log = []

    def waiter(sim):
        try:
            value = yield ev
            log.append(("value", value))
        except Interrupt as exc:
            log.append(("interrupted", exc.cause))

    proc = sim.process(waiter(sim))

    def controller(sim):
        yield sim.timeout(1.0)        # waiter is now parked on ev
        ev.succeed("late")            # triggered, callbacks not yet fired
        proc.interrupt("cancel")

    sim.process(controller(sim))
    sim.run()
    assert log == [("interrupted", "cancel")]
    assert ev.processed               # fired anyway, with no waiter left
    assert ev.value == "late"


def test_urgent_resumption_beats_same_time_callback():
    """Yielding an already-processed event resumes URGENTly — before a
    NORMAL-priority callback that entered the heap first."""
    sim = Simulator()
    order = []

    def noop(sim):
        yield sim.timeout(0.0)

    def parent(sim):
        child = sim.process(noop(sim))
        yield sim.timeout(1.0)        # child finished long ago
        sim.schedule_callback(0.0, lambda: order.append("callback"))
        yield child                   # already processed: urgent resume
        order.append("resumed")

    sim.process(parent(sim))
    sim.run()
    assert order == ["resumed", "callback"]


def test_run_until_exactly_on_event_timestamp_processes_it():
    """run(until=t) includes events scheduled at exactly t."""
    sim = Simulator()
    hits = []
    sim.schedule_callback(5.0, lambda: hits.append(sim.now))
    sim.schedule_callback(7.0, lambda: hits.append(sim.now))
    sim.run(until=5.0)
    assert hits == [5.0]
    assert sim.now == 5.0
    sim.run()                         # the rest still runs to completion
    assert hits == [5.0, 7.0]
