"""Tests for the repro-trace command-line tool."""

import numpy as np
import pytest

from repro.driver import TRACE_DTYPE
from repro.store import TraceReader, write_trace
from repro.store.cli import build_parser, main


@pytest.fixture()
def trace_file(tmp_path):
    rng = np.random.default_rng(5)
    n = 2_000
    arr = np.empty(n, dtype=TRACE_DTYPE)
    arr["time"] = np.sort(rng.exponential(0.05, n).cumsum())
    arr["sector"] = rng.integers(0, 500_000, n)
    arr["write"] = rng.integers(0, 2, n)
    arr["pending"] = rng.integers(0, 10, n)
    arr["size_kb"] = rng.choice([1.0, 4.0], n)
    arr["node"] = rng.integers(0, 2, n)
    path = tmp_path / "t.rpt"
    write_trace(path, arr, chunk_records=256)
    return path, arr


def test_parser_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_info(trace_file, capsys):
    path, arr = trace_file
    assert main(["info", str(path)]) == 0
    out = capsys.readouterr().out
    assert "trace store v1" in out
    assert "2,000" in out


def test_info_verbose_lists_chunks(trace_file, capsys):
    path, arr = trace_file
    assert main(["info", "-v", str(path)]) == 0
    out = capsys.readouterr().out
    assert "chunk" in out
    # 2000 records / 256 per chunk = 8 chunks
    assert " 7 " in out.splitlines()[-1]


def test_info_bad_file(tmp_path, capsys):
    bad = tmp_path / "bad.rpt"
    bad.write_bytes(b"nope")
    assert main(["info", str(bad)]) == 1


def test_cat_filters_and_limit(trace_file, capsys):
    path, arr = trace_file
    assert main(["cat", str(path), "--limit", "5"]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert lines[0].split(",") == list(TRACE_DTYPE.names)
    assert len(lines) == 6

    assert main(["cat", str(path), "--writes", "--no-header"]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert len(lines) == int(np.count_nonzero(arr["write"]))

    t0, t1 = float(arr["time"][100]), float(arr["time"][200])
    assert main(["cat", str(path), "--t0", str(t0), "--t1", str(t1),
                 "--no-header", "--node", "1"]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    mask = (arr["time"] >= t0) & (arr["time"] < t1) & (arr["node"] == 1)
    assert len(lines) == int(np.count_nonzero(mask))


def test_convert_roundtrip_via_csv_and_npy(trace_file, tmp_path, capsys):
    path, arr = trace_file
    csv_path = tmp_path / "t.csv"
    npy_path = tmp_path / "t.npy"
    back_path = tmp_path / "back.rpt"
    assert main(["convert", str(path), str(csv_path)]) == 0
    assert main(["convert", str(path), str(npy_path)]) == 0
    assert np.array_equal(np.load(npy_path), arr)
    assert main(["convert", str(csv_path), str(back_path)]) == 0
    with TraceReader(back_path) as reader:
        got = reader.read()
    assert len(got) == len(arr)
    assert np.allclose(got["time"], arr["time"])
    assert np.array_equal(got["sector"], arr["sector"])


def test_convert_with_filter(trace_file, tmp_path):
    path, arr = trace_file
    out = tmp_path / "reads.rpt"
    assert main(["convert", str(path), str(out), "--reads"]) == 0
    with TraceReader(out) as reader:
        got = reader.read()
    assert np.array_equal(got, arr[arr["write"] == 0])


def test_merge_is_time_ordered_and_complete(trace_file, tmp_path, capsys):
    path, arr = trace_file
    # split by node into two files, merge back
    parts = []
    for node in (0, 1):
        part = tmp_path / f"n{node}.rpt"
        write_trace(part, arr[arr["node"] == node], chunk_records=128)
        parts.append(str(part))
    out = tmp_path / "merged.rpt"
    assert main(["merge", str(out), *parts]) == 0
    with TraceReader(out) as reader:
        got = reader.read()
    assert len(got) == len(arr)
    assert np.all(np.diff(got["time"]) >= 0)
    assert np.array_equal(np.sort(got["sector"]), np.sort(arr["sector"]))


def test_ls_empty_and_populated(tmp_path, capsys):
    assert main(["ls", str(tmp_path / "none")]) == 1
    capsys.readouterr()

    from repro.core import ExperimentRunner
    root = tmp_path / "runs"
    runner = ExperimentRunner(nnodes=1, seed=0, sink=root)
    runner.run("baseline", duration=60.0)
    assert main(["ls", str(root)]) == 0
    out = capsys.readouterr().out
    assert "baseline" in out
    assert "req/s/node" in out


@pytest.fixture()
def captured_run(tmp_path):
    from repro.core import ExperimentRunner
    root = tmp_path / "runs"
    runner = ExperimentRunner(nnodes=2, seed=4, sink=root)
    result = runner.run("baseline", duration=100.0)
    return root, result


def test_analyze_human_output(captured_run, capsys):
    root, result = captured_run
    assert main(["analyze", str(root), "--stats"]) == 0
    captured = capsys.readouterr()
    assert "baseline" in captured.out
    assert "requests" in captured.out
    assert "chunks scanned" in captured.err
    # second invocation is served from the analysis.json cache
    assert main(["analyze", str(root), "--stats"]) == 0
    assert "0 chunks scanned" in capsys.readouterr().err
    assert (root / "baseline" / "analysis.json").is_file()


def test_analyze_json_matches_in_memory(captured_run, capsys):
    import json
    root, result = captured_run
    assert main(["analyze", str(root), "baseline", "--json", "--no-cache",
                 "--pipelines", "metrics,sizes",
                 "--t0", "0", "--t1", str(result.duration)]) == 0
    payload = json.loads(capsys.readouterr().out)
    metrics = payload["baseline"]["metrics"]
    assert metrics["total_requests"] == len(result.trace)
    histogram = {float(s): c
                 for s, c in payload["baseline"]["sizes"]["histogram"]}
    from repro.core.sizes import size_histogram
    assert histogram == size_histogram(result.trace)
    assert not (root / "baseline" / "analysis.json").exists()


def test_analyze_missing_run_and_empty_catalog(tmp_path, capsys):
    assert main(["analyze", str(tmp_path / "none")]) == 1
    assert "no runs" in capsys.readouterr().err


def test_analyze_unknown_run_errors(captured_run, capsys):
    root, _ = captured_run
    assert main(["analyze", str(root), "nope"]) == 1
    assert "no run" in capsys.readouterr().err


def test_analyze_unknown_pipeline_exits_2(captured_run, capsys):
    root, _ = captured_run
    rc = main(["analyze", str(root), "--pipelines", "bogus"])
    assert rc == 2
    err = capsys.readouterr().err
    assert err.startswith("repro-trace: error:")
    assert "bogus" in err
    assert "Traceback" not in err
