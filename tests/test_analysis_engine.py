"""The analysis engine against the in-memory analysis layer.

The acceptance bar from the redesign: streaming pipelines must
reproduce the in-memory ``compute_metrics`` / ``size_histogram``
results *exactly* over all five experiments, caching must be a pure
hit on unchanged runs, and predicate pushdown must provably skip
chunks.
"""

import json

import numpy as np
import pytest

from repro.analysis import (
    AnalysisEngine,
    HotSectorsPipeline,
    make_pipelines,
    merged_time_blocks,
    scan_file,
)
from repro.core.experiments import ExperimentResult, ExperimentRunner
from repro.core.locality import spatial_locality
from repro.core.metrics import compute_metrics
from repro.core.patterns import arrival_structure
from repro.core.sizes import class_fractions, size_histogram
from repro.core.trace import TraceDataset
from repro.obs import MetricsRegistry
from repro.store import RunCatalog, TraceReader

#: small chunks so every run spans several chunks per node file
CHUNK = 64


@pytest.fixture(scope="module")
def results():
    runner = ExperimentRunner(nnodes=2, seed=3, baseline_duration=200.0)
    return runner.run_all()


@pytest.fixture(scope="module")
def catalog(results, tmp_path_factory):
    catalog = RunCatalog(tmp_path_factory.mktemp("runs"))
    for result in results.values():
        catalog.save(result, chunk_records=CHUNK)
    return catalog


def test_streaming_equals_in_memory_all_five(results, catalog):
    """The tentpole equality: every experiment, bit for bit."""
    engine = AnalysisEngine(catalog, cache=False)
    for name, result in results.items():
        out = engine.analyze(name)
        expected = compute_metrics(result.trace, label=name,
                                   duration=result.duration,
                                   nnodes=result.nnodes)
        assert out["metrics"] == expected, name

        assert out["sizes"].histogram == size_histogram(result.trace), name
        assert out["sizes"].fractions == class_fractions(result.trace), name

        spatial = spatial_locality(result.trace)
        assert np.array_equal(out["spatial"].band_fraction,
                              spatial.band_fraction), name
        assert out["spatial"].gini == spatial.gini, name
        assert out["spatial"].top_20pct_share == \
            spatial.top_20pct_share, name

        arrival = arrival_structure(result.trace)
        assert out["arrival"].total == arrival.total, name
        assert out["arrival"].mean_gap == \
            pytest.approx(arrival.mean_gap, rel=1e-12), name
        assert out["arrival"].cv_gap == \
            pytest.approx(arrival.cv_gap, rel=1e-12), name
        assert out["arrival"].idc == \
            pytest.approx(arrival.idc, rel=1e-12), name


def test_parallel_engine_matches_serial(results, catalog):
    serial = AnalysisEngine(catalog, workers=1, cache=False)
    parallel = AnalysisEngine(catalog, workers=2, cache=False)
    a = serial.analyze("combined")
    b = parallel.analyze("combined")
    assert a["metrics"] == b["metrics"]
    assert a["sizes"].histogram == b["sizes"].histogram
    assert np.array_equal(a["spatial"].band_fraction,
                          b["spatial"].band_fraction)
    assert a["arrival"] == b["arrival"]


def test_predicate_pushdown_skips_chunks(results, catalog):
    registry = MetricsRegistry()
    engine = AnalysisEngine(catalog, cache=False, obs=registry)
    result = results["combined"]
    cut = float(result.trace.time.max()) * 0.25
    out = engine.analyze("combined", ["sizes"], t1=cut)
    window = result.trace.between(0.0, cut)
    assert out["sizes"].histogram == size_histogram(window)
    skipped = registry.counter("analysis.chunks_skipped").value
    scanned = registry.counter("analysis.chunks_scanned").value
    assert skipped > 0          # the index ruled out the later chunks
    assert scanned > 0


def test_cache_hit_and_refresh(catalog):
    registry = MetricsRegistry()
    engine = AnalysisEngine(catalog, obs=registry)
    first = engine.analyze("baseline")
    assert registry.counter("analysis.cache_misses").value == 4
    again = engine.analyze("baseline")
    assert registry.counter("analysis.cache_hits").value == 4
    assert again["metrics"] == first["metrics"]
    assert again["sizes"].histogram == first["sizes"].histogram
    assert np.array_equal(again["spatial"].band_fraction,
                          first["spatial"].band_fraction)
    assert again["arrival"] == first["arrival"]
    # cache file sits next to the manifest and is valid JSON
    cache_path = catalog.root / "baseline" / "analysis.json"
    entries = json.loads(cache_path.read_text())["entries"]
    assert "metrics@v1" in entries
    # refresh recomputes even with a valid cache
    engine.analyze("baseline", refresh=True)
    assert registry.counter("analysis.cache_misses").value == 8


def test_cache_keyed_on_scenario(tmp_path):
    """Same trace bytes under a different declared stack: cache miss;
    same scenario (modulo name/seed labels): cache hit."""
    import shutil
    from repro.config import Scenario

    catalog = RunCatalog(tmp_path / "runs")
    runner = ExperimentRunner(nnodes=1, seed=2, sink=catalog)
    runner.run("baseline", duration=60.0)
    registry = MetricsRegistry()
    engine = AnalysisEngine(catalog, obs=registry)
    engine.analyze("baseline", ["metrics"])
    engine.analyze("baseline", ["metrics"])
    assert registry.counter("analysis.cache_hits").value == 1

    # clone the run, editing only the manifest's scenario block (the
    # trace files — and thus the chunk-index signature — are identical)
    src = catalog.root / "baseline"
    clone = catalog.root / "relabeled"
    shutil.copytree(src, clone)
    manifest_path = clone / "manifest.json"
    manifest = json.loads(manifest_path.read_text())
    scenario = Scenario.from_dict(manifest["scenario"])
    manifest["scenario"] = scenario.with_overrides(
        {"name": "other-label", "seed": 9}).to_dict()
    manifest_path.write_text(json.dumps(manifest))
    engine.analyze("relabeled", ["metrics"])
    assert registry.counter("analysis.cache_hits").value == 2

    manifest["scenario"] = scenario.with_override(
        "node.disk.scheduler.kind", "fifo").to_dict()
    manifest_path.write_text(json.dumps(manifest))
    engine.analyze("relabeled", ["metrics"])
    assert registry.counter("analysis.cache_misses").value == 2


def test_cache_invalidated_when_file_changes(results, tmp_path):
    catalog = RunCatalog(tmp_path)
    run_id = catalog.save(results["baseline"], chunk_records=CHUNK).name
    registry = MetricsRegistry()
    engine = AnalysisEngine(catalog, obs=registry)
    engine.analyze(run_id, ["metrics"])
    # rewrite one node file with an extra record: signature must change
    path = sorted(catalog.trace_paths(run_id).items())[0][1]
    with TraceReader(path) as reader:
        records = reader.read()
    extra = np.concatenate([records, records[-1:]])
    TraceDataset(extra).save(path)
    engine.analyze(run_id, ["metrics"])
    assert registry.counter("analysis.cache_misses").value == 2
    assert registry.counter("analysis.cache_hits").value == 0


def test_analyze_all_covers_catalog(results, catalog):
    engine = AnalysisEngine(catalog)
    out = engine.analyze_all(pipelines=["metrics"])
    assert set(out) == set(results)
    for name, result in results.items():
        assert out[name]["metrics"].total_requests == len(result.trace)


def test_streamed_capture_window_matches_memory(tmp_path):
    """Engine over a *streamed* capture (sink=) agrees with the windowed
    in-memory trace — streamed files keep tail records past the cut."""
    runner = ExperimentRunner(nnodes=2, seed=5, sink=tmp_path)
    result = runner.run("baseline", duration=80.0)
    catalog = RunCatalog(tmp_path)
    engine = AnalysisEngine(catalog, cache=False)
    out = engine.analyze("baseline", ["sizes"], t0=0.0, t1=80.0)
    assert out["sizes"].histogram == size_histogram(result.trace)


def test_hotspots_pipeline(results, catalog):
    engine = AnalysisEngine(catalog, cache=False)
    out = engine.analyze("combined", [HotSectorsPipeline(k=3)])
    spots = out["hotspots"].spots
    assert 1 <= len(spots) <= 3
    # hottest sector first, counts descending
    counts = [count for _, count, _ in spots]
    assert counts == sorted(counts, reverse=True)
    hist = {}
    for sector in results["combined"].trace.sector:
        hist[int(sector)] = hist.get(int(sector), 0) + 1
    top_sector, top_count, _ = spots[0]
    assert hist[top_sector] == top_count == max(hist.values())


def test_empty_run_analyzes_to_none(tmp_path):
    catalog = RunCatalog(tmp_path)
    empty = ExperimentResult(name="void", trace=TraceDataset.empty(),
                             duration=10.0, nnodes=1)
    run_id = catalog.save(empty).name
    out = AnalysisEngine(catalog).analyze(run_id)
    assert out["metrics"].total_requests == 0
    assert out["spatial"] is None
    assert out["arrival"] is None
    assert out["sizes"].histogram == {}


def test_merged_time_blocks_globally_sorted(results, catalog):
    paths = sorted(catalog.trace_paths("combined").values())
    readers = [TraceReader(p) for p in paths]
    try:
        blocks = list(merged_time_blocks(readers))
        merged = np.concatenate(blocks)
    finally:
        for reader in readers:
            reader.close()
    expected = np.sort(results["combined"].trace.time)
    assert np.array_equal(merged, expected)


def test_scan_file_signature_is_cheap_and_stable(catalog):
    path = sorted(catalog.trace_paths("baseline").values())[0]
    a = scan_file(path)
    b = scan_file(path)
    assert a == b
    assert a.records > 0 and a.chunk_count > 1


def test_unknown_pipeline_rejected():
    with pytest.raises(ValueError, match="unknown pipeline"):
        make_pipelines(["bogus"])
