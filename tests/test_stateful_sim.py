"""Stateful property tests for the simulation engine's shared objects."""

from hypothesis import settings, strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.sim import Resource, Simulator, Store

CAPACITY = 3


class ResourceMachine(RuleBasedStateMachine):
    """Random acquire/release traffic against a counted resource."""

    @initialize()
    def setup(self):
        self.sim = Simulator()
        self.res = Resource(self.sim, capacity=CAPACITY)
        self.granted = []       # requests we hold
        self.waiting = []       # requests not yet granted

    @rule()
    def request(self):
        req = self.res.request()
        self.sim.run(until=self.sim.now + 1.0)
        if req.triggered:
            self.granted.append(req)
        else:
            self.waiting.append(req)

    @rule(data=st.data())
    def release(self, data):
        if not self.granted:
            return
        idx = data.draw(st.integers(0, len(self.granted) - 1))
        req = self.granted.pop(idx)
        self.res.release(req)
        self.sim.run(until=self.sim.now + 1.0)
        # a waiter may have been promoted
        promoted = [w for w in self.waiting if w.triggered]
        for w in promoted:
            self.waiting.remove(w)
            self.granted.append(w)

    @rule(data=st.data())
    def cancel_waiting(self, data):
        if not self.waiting:
            return
        idx = data.draw(st.integers(0, len(self.waiting) - 1))
        req = self.waiting.pop(idx)
        req.cancel()

    @invariant()
    def counts_consistent(self):
        if not hasattr(self, "res"):
            return
        assert self.res.count == len(self.granted)
        assert self.res.count <= CAPACITY
        assert self.res.queue_length == len(self.waiting)
        # FIFO fairness: nobody waits while capacity is free
        if self.waiting:
            assert self.res.count == CAPACITY


class StoreMachine(RuleBasedStateMachine):
    """Random put/get traffic against a bounded store."""

    @initialize()
    def setup(self):
        self.sim = Simulator()
        self.store = Store(self.sim, capacity=4)
        self.model = []          # items we believe are buffered
        self.pending_gets = []
        self.counter = 0

    def _drain(self):
        self.sim.run(until=self.sim.now + 1.0)
        # resolve completed gets against the model
        for get in [g for g in self.pending_gets if g.triggered]:
            self.pending_gets.remove(get)
            expected = self.model.pop(0)
            assert get.value == expected

    @rule()
    def put(self):
        item = self.counter
        self.counter += 1
        put_event = self.store.put(item)
        self.model.append(item)
        self._drain()
        # capacity 4: the put may still be pending, but the model keeps
        # FIFO order regardless (it completes before any later put)
        if len(self.model) - len(self.store._putters) <= 4:
            pass

    @rule()
    def get(self):
        self.pending_gets.append(self.store.get())
        self._drain()

    @invariant()
    def buffered_never_exceeds_capacity(self):
        if hasattr(self, "store"):
            assert len(self.store) <= 4

    @invariant()
    def fifo_prefix_matches_model(self):
        if not hasattr(self, "store"):
            return
        buffered = list(self.store.items)
        # the store's buffer is a prefix of our model sequence
        assert buffered == self.model[:len(buffered)]


TestResourceMachine = ResourceMachine.TestCase
TestResourceMachine.settings = settings(max_examples=30,
                                        stateful_step_count=25,
                                        deadline=None)
TestStoreMachine = StoreMachine.TestCase
TestStoreMachine.settings = settings(max_examples=30,
                                     stateful_step_count=25,
                                     deadline=None)
