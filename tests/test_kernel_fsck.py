"""Tests for the filesystem consistency checker."""

import pytest

from repro.kernel import BufferCache, FileSystem
from repro.kernel.fs import DIRECT_BLOCKS, POINTERS_PER_INDIRECT
from tests.conftest import drive


@pytest.fixture
def fs(sim, traced_driver):
    cache = BufferCache(sim, traced_driver, capacity_blocks=4096,
                        sectors_per_block=2)
    return FileSystem(cache)


def test_fresh_fs_is_clean(fs):
    assert fs.fsck() == []


def test_clean_after_activity(sim, fs):
    drive(sim, fs.makedirs("/a/b"))
    f1 = drive(sim, fs.create("/a/b/one"))
    drive(sim, fs.truncate_extend(f1, 40 * 1024))
    f2 = drive(sim, fs.create("/two", zone="log"))
    drive(sim, fs.truncate_extend(
        f2, (DIRECT_BLOCKS + POINTERS_PER_INDIRECT + 3) * 1024))
    drive(sim, fs.unlink("/a/b/one"))
    assert fs.fsck() == []


def test_detects_double_owned_block(sim, fs):
    a = drive(sim, fs.create("/a"))
    b = drive(sim, fs.create("/b"))
    drive(sim, fs.truncate_extend(a, 1024))
    b.blocks.append(a.blocks[0])        # corrupt: share a block
    problems = fs.fsck()
    assert any("owned by inodes" in p for p in problems)


def test_detects_size_beyond_blocks(sim, fs):
    a = drive(sim, fs.create("/a"))
    drive(sim, fs.truncate_extend(a, 2048))
    a.size_bytes = 10 * 1024            # corrupt: size without blocks
    assert any("needs" in p for p in fs.fsck())


def test_detects_block_outside_zone(sim, fs):
    a = drive(sim, fs.create("/a", zone="log"))
    drive(sim, fs.truncate_extend(a, 1024))
    a.blocks[0] = 5                      # metadata area, not the log zone
    assert any("outside" in p for p in fs.fsck())


def test_detects_missing_indirect_accounting(sim, fs):
    a = drive(sim, fs.create("/a"))
    drive(sim, fs.truncate_extend(a, (DIRECT_BLOCKS + 5) * 1024))
    a.indirect_blocks.clear()            # corrupt: drop the indirect block
    assert any("indirect" in p for p in fs.fsck())


def test_detects_dangling_dentry(sim, fs):
    drive(sim, fs.create("/a"))
    ino = fs.lookup("/a").ino
    del fs._inodes[ino]                  # corrupt: inode vanishes
    assert any("missing inode" in p for p in fs.fsck())
