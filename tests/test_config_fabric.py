"""Fabric configuration: network, PIOUS, multi-disk nodes, volumes.

The scenario tree's new axes — ``network.*``, ``pious.*``,
``node.disks[*]`` and ``node.volume.*`` — with their validation paths,
serialization round trips, the builders that realise them, and the v2
manifest carrying them into stored runs.
"""

import json

import pytest

from repro.cluster.beowulf import BeowulfCluster
from repro.config import (
    ConfigError,
    NetworkConfig,
    PiousConfig,
    Scenario,
    VolumeConfig,
)
from repro.disk.volume import Raid0Volume, SingleVolume
from repro.kernel import NodeKernel
from repro.sim import Simulator


RAID0_DICT = {"node": {"disks": [{}, {}],
                       "volume": {"policy": "raid0", "stripe_kb": 16}}}


# -- defaults preserve the prototype ------------------------------------------
def test_default_fabric_matches_the_prototype():
    scenario = Scenario().validate()
    assert scenario.network == NetworkConfig(
        channels=2, bandwidth_bps=10e6, latency=0.3e-3, mtu=1500)
    assert scenario.pious == PiousConfig(stripe_kb=8, nservers=0,
                                         first_server=0)
    assert scenario.node.volume == VolumeConfig(policy="single",
                                                stripe_kb=8)
    assert len(scenario.node.disks) == 1
    assert scenario.node.disk is scenario.node.disks[0]


def test_fingerprint_distinguishes_ablated_fabrics():
    base = Scenario()
    prints = {base.fingerprint(),
              base.with_override("network.channels", 1).fingerprint(),
              base.with_override("pious.stripe_kb", 64).fingerprint(),
              Scenario.from_dict(RAID0_DICT).fingerprint()}
    assert len(prints) == 4


# -- validation names exact paths ---------------------------------------------
@pytest.mark.parametrize("path,value", [
    ("network.channels", 0),
    ("network.bandwidth_bps", 0.0),
    ("network.latency", -1.0),
    ("network.mtu", 0),
    ("pious.stripe_kb", 0),
    ("pious.nservers", -1),
    ("node.volume.stripe_kb", 0),
])
def test_fabric_range_errors_name_exact_path(path, value):
    with pytest.raises(ConfigError) as err:
        Scenario().with_override(path, value).validate()
    assert err.value.path == f"scenario.{path}"


def test_unknown_volume_policy_lists_the_menu():
    with pytest.raises(ConfigError) as err:
        Scenario().with_override("node.volume.policy", "raid6").validate()
    assert err.value.path == "scenario.node.volume.policy"
    assert "raid0" in str(err.value)


def test_single_policy_rejects_multiple_disks():
    with pytest.raises(ConfigError) as err:
        Scenario.from_dict({"node": {"disks": [{}, {}]}}).validate()
    assert err.value.path == "scenario.node.volume.policy"
    assert "exactly one disk, got 2" in str(err.value)


def test_pious_placement_bounds_checked_against_cluster():
    with pytest.raises(ConfigError) as err:
        Scenario().with_overrides({"cluster.nnodes": 4,
                                   "pious.nservers": 5}).validate()
    assert err.value.path == "scenario.pious.nservers"
    with pytest.raises(ConfigError) as err:
        Scenario().with_overrides({"cluster.nnodes": 4,
                                   "pious.first_server": 4}).validate()
    assert err.value.path == "scenario.pious.first_server"


def test_pious_server_ids_wrap_round_the_cluster():
    cfg = PiousConfig(nservers=3, first_server=2)
    assert cfg.server_ids(4) == [2, 3, 0]
    assert PiousConfig().server_ids(3) == [0, 1, 2]


# -- the legacy single-disk spelling ------------------------------------------
def test_legacy_disk_key_still_loads():
    scenario = Scenario.from_dict(
        {"node": {"disk": {"scheduler": {"kind": "fifo"}}}})
    assert scenario.node.disks[0].scheduler.kind == "fifo"


def test_disk_and_disks_together_rejected():
    with pytest.raises(ConfigError) as err:
        Scenario.from_dict({"node": {"disk": {}, "disks": [{}]}})
    assert err.value.path == "scenario.node.disk"


def test_indexed_and_wildcard_disk_overrides():
    scenario = Scenario.from_dict(RAID0_DICT)
    one = scenario.with_override("node.disks[1].scheduler.kind", "fifo")
    assert one.node.disks[0].scheduler.kind == "clook"
    assert one.node.disks[1].scheduler.kind == "fifo"
    both = scenario.with_override("node.disks[*].cache.nsegments", 0)
    assert all(d.cache.nsegments == 0 for d in both.node.disks)
    with pytest.raises(ConfigError) as err:
        scenario.with_override("node.disks[2].scheduler.kind", "fifo")
    assert err.value.path == "scenario.node.disks[2]"


# -- serialization ------------------------------------------------------------
def test_multi_disk_scenario_round_trips_toml_and_json():
    scenario = Scenario.from_dict(RAID0_DICT).with_overrides({
        "network.channels": 1,
        "network.mtu": 9000,
        "pious.nservers": 2,
        "node.disks[1].capacity_mb": 540,
    })
    assert Scenario.from_toml(scenario.to_toml()) == scenario
    assert Scenario.from_json(scenario.to_json()) == scenario


def test_node_overrides_round_trip_and_apply():
    scenario = Scenario() \
        .with_override("node[3].disks[0].cache.nsegments", 0) \
        .validate()
    again = Scenario.from_toml(scenario.to_toml())
    assert again == scenario
    assert again.node_config_for(3).disks[0].cache.nsegments == 0
    assert again.node_config_for(0).disks[0].cache.nsegments == 4


def test_node_override_type_checked_eagerly():
    with pytest.raises(ConfigError) as err:
        Scenario().with_override("node[3].disks[0].rpm", 7200)
    assert err.value.path == "scenario.node[3].disks[0].rpm"


# -- builders realise the config ----------------------------------------------
def test_kernel_builds_the_configured_volume():
    scenario = Scenario.from_dict(RAID0_DICT).validate()
    kernel = NodeKernel(Simulator(), node_id=2,
                        node_config=scenario.node, housekeeping=False)
    assert [d.name for d in kernel.disks] == ["hda2", "hdb2"]
    assert isinstance(kernel.volume, Raid0Volume)
    assert kernel.volume.name == "md2"
    assert kernel.volume.stripe_sectors == 32          # 16 KB stripes
    assert kernel.driver.disk is kernel.volume
    assert kernel.disk is kernel.disks[0]


def test_default_kernel_keeps_single_volume():
    kernel = NodeKernel(Simulator(), housekeeping=False)
    assert isinstance(kernel.volume, SingleVolume)
    assert kernel.volume.disks == (kernel.disk,)


def test_cluster_builds_scenario_network():
    scenario = Scenario().with_overrides({
        "cluster.nnodes": 2, "network.channels": 1,
        "network.bandwidth_bps": 100e6, "network.mtu": 9000}).validate()
    cluster = BeowulfCluster(Simulator(), scenario=scenario)
    assert cluster.network.channels == 1
    assert cluster.network.bandwidth_bps == 100e6
    assert cluster.network.mtu == 9000


def test_make_pious_follows_scenario_placement():
    scenario = Scenario().with_overrides({
        "cluster.nnodes": 4, "pious.stripe_kb": 16,
        "pious.nservers": 2, "pious.first_server": 1}).validate()
    cluster = BeowulfCluster(Simulator(), scenario=scenario)
    pious = cluster.make_pious()
    assert cluster.pious is pious
    assert pious.server_ids == [1, 2]
    assert pious.stripe_bytes == 16 * 1024


# -- the v2 manifest carries the fabric ---------------------------------------
def test_manifest_round_trips_fabric_blocks(tmp_path):
    from repro.core import ExperimentRunner
    from repro.store import RunCatalog
    scenario = Scenario.from_dict(RAID0_DICT).with_overrides({
        "cluster.nnodes": 1, "network.channels": 1, "name": "fabric"})
    runner = ExperimentRunner(scenario=scenario, sink=str(tmp_path))
    runner.run("baseline", duration=30.0)
    catalog = RunCatalog(tmp_path)
    run_id = catalog.runs()[0]
    manifest = catalog.manifest(run_id)
    blob = manifest["scenario"]
    assert blob["network"]["channels"] == 1
    assert blob["pious"]["stripe_kb"] == 8
    assert blob["node"]["volume"]["policy"] == "raid0"
    assert len(blob["node"]["disks"]) == 2
    # and it rebuilds into the very scenario that ran
    assert catalog.scenario(run_id) == runner.scenario
    json.dumps(manifest)   # stays plain data
