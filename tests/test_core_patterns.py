"""Unit and property tests for access-pattern analyses."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import TraceDataset
from repro.core.patterns import (
    arrival_structure,
    direction_runs,
    miller_katz_classes,
    sequentiality,
)


def trace_from(entries):
    """entries: list of (time, sector, write, size_kb)."""
    return TraceDataset.from_records(
        [(t, s, w, 1, kb, 0) for t, s, w, kb in entries])


# -- sequentiality ----------------------------------------------------------

def test_perfectly_sequential_stream():
    # 1 KB requests, each starting where the last ended (2 sectors apart)
    ds = trace_from([(float(i), 100 + 2 * i, 0, 1.0) for i in range(10)])
    report = sequentiality(ds)
    assert report.sequential_fraction == 1.0
    assert report.max_run_length == 10
    assert len(report.run_lengths) == 1


def test_random_stream_is_not_sequential():
    rng = np.random.default_rng(0)
    ds = trace_from([(float(i), int(rng.integers(0, 10**6)), 0, 1.0)
                     for i in range(200)])
    report = sequentiality(ds)
    assert report.sequential_fraction < 0.05
    assert report.mean_run_length < 2.0


def test_nearly_sequential_counts_small_forward_gaps():
    ds = trace_from([(0.0, 100, 0, 1.0), (1.0, 150, 0, 1.0)])
    report = sequentiality(ds, near_window=1000)
    assert report.sequential_fraction == 0.0
    assert report.nearly_sequential_fraction == 1.0


def test_backward_jump_is_not_nearly_sequential():
    ds = trace_from([(0.0, 1000, 0, 1.0), (1.0, 100, 0, 1.0)])
    report = sequentiality(ds)
    assert report.nearly_sequential_fraction == 0.0


def test_run_lengths_partition_the_trace():
    ds = trace_from([(0.0, 0, 0, 1.0), (1.0, 2, 0, 1.0),     # run of 2
                     (2.0, 500, 0, 1.0),                     # run of 1
                     (3.0, 900, 0, 1.0), (4.0, 902, 0, 1.0),
                     (5.0, 904, 0, 1.0)])                    # run of 3
    report = sequentiality(ds)
    assert sorted(report.run_lengths.tolist()) == [1, 2, 3]
    assert report.run_lengths.sum() == len(ds)


def test_sequentiality_single_record_and_empty():
    one = trace_from([(0.0, 5, 0, 1.0)])
    assert sequentiality(one).total == 1
    with pytest.raises(ValueError):
        sequentiality(TraceDataset.empty())


# -- arrivals ----------------------------------------------------------------

def test_poisson_arrivals_have_idc_near_one():
    rng = np.random.default_rng(1)
    times = np.cumsum(rng.exponential(0.5, size=2000))
    ds = trace_from([(float(t), 0, 1, 1.0) for t in times])
    report = arrival_structure(ds, window=10.0)
    assert 0.5 < report.idc < 2.0
    assert not report.is_bursty
    assert report.mean_gap == pytest.approx(0.5, rel=0.1)


def test_bursty_arrivals_have_high_idc():
    times = []
    for burst in range(50):
        times.extend(burst * 20.0 + 0.01 * np.arange(40))
    ds = trace_from([(float(t), 0, 1, 1.0) for t in times])
    report = arrival_structure(ds, window=10.0)
    assert report.is_bursty
    assert report.cv_gap > 1.5


def test_arrival_validation():
    with pytest.raises(ValueError):
        arrival_structure(trace_from([(0.0, 0, 1, 1.0)]))
    ds = trace_from([(0.0, 0, 1, 1.0), (1.0, 0, 1, 1.0)])
    with pytest.raises(ValueError):
        arrival_structure(ds, window=0)


# -- direction runs -------------------------------------------------------

def test_direction_runs_alternating():
    ds = trace_from([(0.0, 0, 0, 1.0), (1.0, 0, 1, 1.0),
                     (2.0, 0, 0, 1.0), (3.0, 0, 1, 1.0)])
    runs = direction_runs(ds)
    assert runs.read_runs.tolist() == [1, 1]
    assert runs.write_runs.tolist() == [1, 1]


def test_direction_runs_write_train():
    ds = trace_from([(float(i), 0, 1, 1.0) for i in range(7)]
                    + [(7.0, 0, 0, 1.0)])
    runs = direction_runs(ds)
    assert runs.write_runs.tolist() == [7]
    assert runs.read_runs.tolist() == [1]
    assert runs.mean_write_run == 7.0


def test_direction_runs_empty():
    with pytest.raises(ValueError):
        direction_runs(TraceDataset.empty())


# -- Miller & Katz classes ----------------------------------------------------

def test_classes_partition_to_one():
    rng = np.random.default_rng(2)
    ds = trace_from([(float(i), 0, int(rng.random() < 0.7),
                      float(rng.choice([1.0, 4.0]))) for i in range(100)])
    classes = miller_katz_classes(ds)
    assert sum(classes.values()) == pytest.approx(1.0)


def test_required_window_captures_run_edges():
    ds = trace_from([(0.0, 0, 0, 1.0),      # startup
                     (50.0, 0, 1, 1.0),     # middle write -> checkpoint
                     (50.5, 0, 1, 4.0),     # middle paging -> staging
                     (100.0, 0, 1, 1.0)])   # shutdown
    classes = miller_katz_classes(ds)
    assert classes["required"] == pytest.approx(0.5)
    assert classes["checkpoint"] == pytest.approx(0.25)
    assert classes["staging"] == pytest.approx(0.25)


def test_classes_validation():
    ds = trace_from([(0.0, 0, 0, 1.0)])
    with pytest.raises(ValueError):
        miller_katz_classes(TraceDataset.empty())
    with pytest.raises(ValueError):
        miller_katz_classes(ds, startup_fraction=0.6, shutdown_fraction=0.6)


# -- properties ----------------------------------------------------------------

@settings(deadline=None, max_examples=30)
@given(st.lists(st.tuples(st.floats(0, 1000, allow_nan=False),
                          st.integers(0, 10**6),
                          st.booleans()),
                min_size=2, max_size=100))
def test_pattern_invariants(entries):
    ds = trace_from([(t, s, int(w), 1.0) for t, s, w in entries])
    report = sequentiality(ds)
    assert 0.0 <= report.sequential_fraction <= 1.0
    assert report.run_lengths.sum() == len(ds)
    runs = direction_runs(ds)
    assert runs.read_runs.sum() + runs.write_runs.sum() == len(ds)
    classes = miller_katz_classes(ds)
    assert sum(classes.values()) == pytest.approx(1.0)
