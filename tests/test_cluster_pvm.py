"""Unit tests for the PVM-like message layer."""

import numpy as np
import pytest

from repro.cluster import EthernetNetwork, PVM
from repro.sim import Simulator
from tests.conftest import drive


@pytest.fixture
def pvm(sim):
    net = EthernetNetwork(sim, rng=np.random.default_rng(0))
    p = PVM(sim, net)
    for node_id in range(4):
        p.register(node_id)
    return p


def test_send_recv_roundtrip(sim, pvm):
    got = []

    def sender():
        yield from pvm.send(0, 1, tag=5, nbytes=1000, body="hello")

    def receiver():
        message = yield from pvm.recv(1, tag=5)
        got.append(message)

    sim.process(sender())
    sim.process(receiver())
    sim.run()
    assert got[0].body == "hello"
    assert got[0].src == 0 and got[0].nbytes == 1000


def test_recv_blocks_until_message_arrives(sim, pvm):
    times = []

    def receiver():
        yield from pvm.recv(1, tag=1)
        times.append(sim.now)

    def sender():
        yield sim.timeout(5.0)
        yield from pvm.send(0, 1, tag=1, nbytes=100)

    sim.process(receiver())
    sim.process(sender())
    sim.run()
    assert times[0] > 5.0


def test_tag_filtering_skips_unmatched(sim, pvm):
    order = []

    def sender():
        yield from pvm.send(0, 1, tag=7, nbytes=100, body="seven")
        yield from pvm.send(0, 1, tag=8, nbytes=100, body="eight")

    def receiver():
        m8 = yield from pvm.recv(1, tag=8)
        order.append(m8.body)
        m7 = yield from pvm.recv(1, tag=7)
        order.append(m7.body)

    sim.process(sender())
    sim.process(receiver())
    sim.run()
    assert order == ["eight", "seven"]


def test_untagged_recv_takes_first(sim, pvm):
    got = []

    def scenario():
        yield from pvm.send(0, 2, tag=1, nbytes=50, body="a")
        yield from pvm.send(0, 2, tag=2, nbytes=50, body="b")
        m = yield from pvm.recv(2)
        got.append(m.body)

    sim.process(scenario())
    sim.run()
    assert got == ["a"]


def test_self_send_skips_network(sim, pvm):
    before = pvm.network.stats.messages

    def scenario():
        yield from pvm.send(3, 3, tag=1, nbytes=10_000)
        m = yield from pvm.recv(3, tag=1)
        return m

    drive(sim, scenario())
    assert pvm.network.stats.messages == before


def test_send_to_unknown_destination(sim, pvm):
    with pytest.raises(KeyError):
        drive(sim, pvm.send(0, 99, tag=1, nbytes=10))


def test_duplicate_registration_rejected(pvm):
    with pytest.raises(ValueError):
        pvm.register(0)


def test_barrier_releases_all_at_once(sim, pvm):
    release_times = {}

    def task(node_id, arrive_at):
        yield sim.timeout(arrive_at)
        yield from pvm.barrier("phase1", node_id, count=3)
        release_times[node_id] = sim.now

    for node_id, t in [(0, 1.0), (1, 2.0), (2, 5.0)]:
        sim.process(task(node_id, t))
    sim.run()
    assert all(t == pytest.approx(5.0) for t in release_times.values())


def test_barrier_reusable_by_name(sim, pvm):
    log = []

    def task(node_id):
        yield from pvm.barrier("a", node_id, count=2)
        log.append(("a", node_id))
        yield from pvm.barrier("b", node_id, count=2)
        log.append(("b", node_id))

    sim.process(task(0))
    sim.process(task(1))
    sim.run()
    assert [phase for phase, _ in log] == ["a", "a", "b", "b"]


def test_bcast_reaches_everyone(sim, pvm):
    got = []

    def receiver(node_id):
        m = yield from pvm.recv(node_id, tag=3)
        got.append(node_id)

    def root():
        yield from pvm.bcast(0, tag=3, nbytes=500)

    for node_id in (1, 2, 3):
        sim.process(receiver(node_id))
    sim.process(root())
    sim.run()
    assert sorted(got) == [1, 2, 3]


def test_gather_collects_from_all(sim, pvm):
    def worker(node_id):
        yield from pvm.send(node_id, 0, tag=4, nbytes=64, body=node_id)

    def root():
        messages = yield from pvm.gather(0, tag=4)
        return sorted(m.body for m in messages)

    for node_id in (1, 2, 3):
        sim.process(worker(node_id))
    assert drive(sim, root()) == [1, 2, 3]


def test_transfer_costs_time_proportional_to_size(sim, pvm):
    def timed_send(nbytes):
        s = Simulator()
        net = EthernetNetwork(s, rng=np.random.default_rng(0))
        p = PVM(s, net)
        p.register(0), p.register(1)

        def scenario():
            yield from p.send(0, 1, tag=1, nbytes=nbytes)
            return s.now

        return drive(s, scenario())

    assert timed_send(100_000) > 2 * timed_send(10_000)
