"""Unit tests for the mini ext2-like filesystem."""

import pytest

from repro.kernel import BufferCache, FileSystem
from repro.kernel.fs import DIRECT_BLOCKS, FsError, POINTERS_PER_INDIRECT
from tests.conftest import drive


@pytest.fixture
def fs(sim, traced_driver):
    cache = BufferCache(sim, traced_driver, capacity_blocks=512,
                        sectors_per_block=2)
    return FileSystem(cache)


def test_create_and_lookup(sim, fs):
    inode = drive(sim, fs.create("/data.bin"))
    assert fs.lookup("/data.bin") is inode
    assert inode.size_bytes == 0
    assert not inode.is_dir


def test_create_duplicate_rejected(sim, fs):
    drive(sim, fs.create("/x"))
    with pytest.raises(FsError):
        drive(sim, fs.create("/x"))


def test_lookup_missing_raises(fs):
    with pytest.raises(FsError):
        fs.lookup("/nope")
    assert not fs.exists("/nope")


def test_mkdir_and_nested_create(sim, fs):
    drive(sim, fs.mkdir("/var"))
    drive(sim, fs.mkdir("/var/log"))
    drive(sim, fs.create("/var/log/messages", zone="log"))
    assert fs.exists("/var/log/messages")
    assert fs.listdir("/var/log") == ["messages"]
    assert fs.listdir("/") == ["var"]


def test_makedirs_idempotent(sim, fs):
    drive(sim, fs.makedirs("/a/b/c"))
    drive(sim, fs.makedirs("/a/b/c"))
    assert fs.listdir("/a/b") == ["c"]


def test_extend_allocates_blocks_in_zone(sim, fs):
    inode = drive(sim, fs.create("/img", zone="data"))
    drive(sim, fs.truncate_extend(inode, 10 * 1024))
    assert inode.nblocks == 10
    data_start_block = fs.layout.data_start // 2
    data_end_block = (fs.layout.data_start + fs.layout.data_sectors) // 2
    assert all(data_start_block <= b < data_end_block for b in inode.blocks)


def test_zone_selection_places_blocks(sim, fs):
    log = drive(sim, fs.create("/msg", zone="log"))
    high = drive(sim, fs.create("/trace", zone="highlog"))
    drive(sim, fs.truncate_extend(log, 1024))
    drive(sim, fs.truncate_extend(high, 1024))
    assert log.blocks[0] < high.blocks[0]
    assert high.blocks[0] >= fs.layout.highlog_start // 2


def test_sequential_allocation_is_contiguous(sim, fs):
    inode = drive(sim, fs.create("/seq"))
    drive(sim, fs.truncate_extend(inode, 8 * 1024))
    diffs = [b - a for a, b in zip(inode.blocks, inode.blocks[1:])]
    assert all(d == 1 for d in diffs)


def test_shrink_rejected(sim, fs):
    inode = drive(sim, fs.create("/f"))
    drive(sim, fs.truncate_extend(inode, 2048))
    with pytest.raises(FsError):
        drive(sim, fs.truncate_extend(inode, 1024))


def test_indirect_blocks_allocated_past_direct_region(sim, fs):
    inode = drive(sim, fs.create("/big"))
    nblocks = DIRECT_BLOCKS + POINTERS_PER_INDIRECT + 5
    drive(sim, fs.truncate_extend(inode, nblocks * 1024))
    assert len(inode.indirect_blocks) == 2


def test_map_blocks_returns_contiguous_runs(sim, fs):
    inode = drive(sim, fs.create("/f"))
    drive(sim, fs.truncate_extend(inode, 6 * 1024))
    runs = drive(sim, fs.map_blocks(inode, 0, 6))
    assert len(runs) == 1
    assert runs[0] == (inode.blocks[0], 6)


def test_map_blocks_beyond_file_rejected(sim, fs):
    inode = drive(sim, fs.create("/f"))
    drive(sim, fs.truncate_extend(inode, 2 * 1024))
    with pytest.raises(FsError):
        drive(sim, fs.map_blocks(inode, 0, 3))


def test_unlink_frees_blocks_for_reuse(sim, fs):
    inode = drive(sim, fs.create("/tmp1"))
    drive(sim, fs.truncate_extend(inode, 4 * 1024))
    freed = set(inode.blocks)
    before = fs.zone_blocks_free("data")
    drive(sim, fs.unlink("/tmp1"))
    assert fs.zone_blocks_free("data") == before + 4
    inode2 = drive(sim, fs.create("/tmp2"))
    drive(sim, fs.truncate_extend(inode2, 1024))
    assert set(inode2.blocks) <= freed  # freed blocks reused first


def test_unlink_missing_or_dir_rejected(sim, fs):
    with pytest.raises(FsError):
        drive(sim, fs.unlink("/ghost"))
    drive(sim, fs.mkdir("/d"))
    with pytest.raises(FsError):
        drive(sim, fs.unlink("/d"))


def test_metadata_writes_reach_metadata_zone(sim, fs):
    inode = drive(sim, fs.create("/f"))
    drive(sim, fs.truncate_extend(inode, 1024))
    drive(sim, fs.cache.sync())
    fs.cache.driver.transport.drain_now()
    arr = fs.cache.driver.transport.user_buffer.to_array()
    writes = arr[arr["write"] == 1]
    meta_end = fs.layout.metadata_start + fs.layout.metadata_sectors
    assert (writes["sector"] < meta_end).any()


def test_inode_table_block_mapping():
    cacheless = None  # inode_table_block is pure arithmetic on the instance
    # build a real fs for the computation
    import numpy as np
    from repro.disk import Disk
    from repro.driver import InstrumentedIDEDriver
    from repro.sim import Simulator
    sim = Simulator()
    driver = InstrumentedIDEDriver(sim, Disk(sim, rng=np.random.default_rng(0)))
    fs = FileSystem(BufferCache(sim, driver, capacity_blocks=64))
    b1 = fs.inode_table_block(1)
    b8 = fs.inode_table_block(8)
    b9 = fs.inode_table_block(9)
    assert b1 == b8
    assert b9 == b1 + 1


def test_empty_path_rejected(fs):
    with pytest.raises(FsError):
        fs.lookup("/")
