"""Unit and property tests for the Haar wavelet kernel."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.kernels import haar2d, haar2d_inverse, haar_level
from repro.apps.kernels.haar import (
    compression_energy,
    haar_level_inverse,
)


def test_constant_image_has_all_energy_in_ll():
    img = np.full((8, 8), 5.0)
    out = haar_level(img)
    assert np.allclose(out[:4, :4], 10.0)   # LL = 2x mean per level
    assert np.allclose(out[:4, 4:], 0.0)
    assert np.allclose(out[4:, :4], 0.0)
    assert np.allclose(out[4:, 4:], 0.0)


def test_single_level_roundtrip():
    rng = np.random.default_rng(0)
    img = rng.random((16, 16))
    assert np.allclose(haar_level_inverse(haar_level(img)), img)


def test_multi_level_roundtrip():
    rng = np.random.default_rng(1)
    img = rng.random((64, 64))
    coeffs = haar2d(img, levels=4)
    assert np.allclose(haar2d_inverse(coeffs, levels=4), img, atol=1e-10)


def test_orthonormality_preserves_energy():
    rng = np.random.default_rng(2)
    img = rng.random((32, 32))
    coeffs = haar2d(img, levels=3)
    assert np.sum(coeffs ** 2) == pytest.approx(np.sum(img ** 2))


def test_horizontal_edge_excites_hl_band():
    img = np.zeros((8, 8))
    img[3:, :] = 1.0  # horizontal edge inside a 2x2 block -> HL detail
    out = haar_level(img)
    assert np.abs(out[4:, :4]).sum() > 0       # HL nonzero on the edge rows
    assert np.allclose(out[:4, 4:], 0.0)       # no LH response
    assert np.allclose(out[4:, 4:], 0.0)       # no diagonal response


def test_smooth_image_compresses_well():
    x = np.linspace(0, 1, 64)
    img = np.outer(np.sin(2 * np.pi * x), np.cos(2 * np.pi * x)) + 2.0
    coeffs = haar2d(img, levels=3)
    assert compression_energy(coeffs, levels=3) > 0.95


def test_odd_dimensions_rejected():
    with pytest.raises(ValueError):
        haar_level(np.zeros((7, 8)))
    with pytest.raises(ValueError):
        haar2d(np.zeros((12, 12)), levels=3)  # 12 not divisible by 8


def test_levels_validation():
    with pytest.raises(ValueError):
        haar2d(np.zeros((8, 8)), levels=0)
    with pytest.raises(ValueError):
        haar_level(np.zeros(8))  # 1-D


def test_512_image_decomposes_like_the_study():
    rng = np.random.default_rng(3)
    img = rng.integers(0, 256, size=(512, 512)).astype(float)
    coeffs = haar2d(img, levels=5)
    back = haar2d_inverse(coeffs, levels=5)
    assert np.allclose(back, img, atol=1e-8)


@settings(deadline=None, max_examples=20)
@given(st.integers(min_value=1, max_value=4), st.integers(min_value=0, max_value=2**31 - 1))
def test_roundtrip_and_energy_property(levels, seed):
    rng = np.random.default_rng(seed)
    n = 16 << levels
    img = rng.random((n // 2, n))  # rectangular, still divisible
    coeffs = haar2d(img, levels=levels)
    assert np.sum(coeffs ** 2) == pytest.approx(np.sum(img ** 2), rel=1e-9)
    assert np.allclose(haar2d_inverse(coeffs, levels=levels), img, atol=1e-9)
